#!/usr/bin/env python
"""Guard: no literal RCM method-name tuples outside ``repro/backends``.

The execution-backend registry (``repro.backends``) is the single source of
method names — dispatch, ``method="auto"``, degradation chains, CLI
choices, cache keys and docs all derive from it.  This script walks every
module under ``src/repro`` (except the registry package itself) and fails
if any tuple/list literal consists of two or more string constants that are
all registered method names — i.e. a hand-maintained copy of the method
list that would silently go stale when a backend is added.

Run from the repository root (CI does)::

    PYTHONPATH=src python tools/check_method_literals.py

Exit status 0 when clean, 1 with ``file:line`` diagnostics otherwise.
Single method-name strings (``method == "serial"`` comparisons, defaults)
are fine — only enumerations are the registry's job.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
EXEMPT = SRC / "backends"


def _method_names() -> frozenset:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro import backends

    return frozenset(backends.names())


def find_violations(tree: ast.AST, methods: frozenset) -> list:
    """(lineno, names) for every all-method-name tuple/list literal."""
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Tuple, ast.List)):
            continue
        if len(node.elts) < 2:
            continue
        values = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                break
            values.append(elt.value)
        else:
            if values and set(values) <= methods:
                out.append((node.lineno, tuple(values)))
    return out


def main() -> int:
    methods = _method_names()
    bad = []
    for path in sorted(SRC.rglob("*.py")):
        if EXEMPT in path.parents:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, values in find_violations(tree, methods):
            bad.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                       f"literal method-name list {values!r}")
    if bad:
        print("method-name literals outside repro/backends "
              "(derive these from the registry):")
        for line in bad:
            print(f"  {line}")
        return 1
    print(f"OK: no literal method-name lists outside repro/backends "
          f"({len(methods)} registered methods checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
