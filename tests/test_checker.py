"""Tests for the trace invariant checker, and checked randomized runs."""

import numpy as np
import pytest

from repro.machine.checker import check_trace, TraceViolation
from repro.machine.stats import RunStats, Stage
from repro.machine.engine import Engine
from repro.machine.costmodel import CPUCostModel
from repro.core.state import make_state
from repro.core.batch import worker_loop
from repro.core.batches import BatchConfig
from repro.core.serial import rcm_serial
from repro.matrices import generators as g


def traced_run(mat, workers, *, jitter=0.0, seed=0, cfg=None):
    state = make_state(mat, 0, n_workers=workers)
    model = CPUCostModel()
    engine = Engine(workers, state.stats, trace=True, jitter=jitter, seed=seed)
    engine.run([
        worker_loop(state, cfg or BatchConfig(), model, engine)
        for _ in range(workers)
    ])
    return engine, state


class TestChecker:
    def test_valid_run_passes(self):
        engine, _ = traced_run(g.grid2d(10, 10), 3)
        check_trace(engine.trace, engine.stats)

    def test_detects_overlap(self):
        stats = RunStats(n_workers=1)
        stats.makespan = 100.0
        stats.add_cycles(0, Stage.DISCOVER, 120.0)
        trace = [(0.0, 0, "Discover", 60.0), (30.0, 0, "Discover", 60.0)]
        with pytest.raises(TraceViolation, match="overlap"):
            check_trace(trace, stats)

    def test_detects_out_of_range(self):
        stats = RunStats(n_workers=1)
        stats.makespan = 10.0
        stats.add_cycles(0, Stage.SORT, 50.0)
        with pytest.raises(TraceViolation, match="makespan"):
            check_trace([(0.0, 0, "Sort", 50.0)], stats)

    def test_detects_accounting_mismatch(self):
        stats = RunStats(n_workers=1)
        stats.makespan = 100.0
        stats.add_cycles(0, Stage.SORT, 99.0)  # stats claim more than trace
        with pytest.raises(TraceViolation, match="stats say"):
            check_trace([(0.0, 0, "Sort", 10.0)], stats)

    def test_detects_negative_duration(self):
        stats = RunStats(n_workers=1)
        stats.makespan = 10.0
        with pytest.raises(TraceViolation, match="negative"):
            check_trace([(0.0, 0, "Sort", -1.0)], stats)

    def test_empty_trace_ok(self):
        check_trace([], RunStats(n_workers=1))


class TestCheckedRandomizedRuns:
    """Every fuzzed schedule must satisfy the machine invariants *and*
    produce the serial permutation — the two halves of correctness."""

    @pytest.mark.parametrize("seed", range(6))
    def test_jittered_runs_sound(self, seed):
        mat = g.delaunay_mesh(250, seed=1)
        ref = rcm_serial(mat, 0)
        engine, state = traced_run(mat, 5, jitter=0.9, seed=seed)
        check_trace(engine.trace, engine.stats)
        assert np.array_equal(state.permutation(), ref)

    @pytest.mark.parametrize("workers", [1, 2, 7])
    def test_worker_counts_sound(self, workers):
        mat = g.grid2d(12, 12)
        engine, state = traced_run(mat, workers)
        check_trace(engine.trace, engine.stats)

    def test_tight_config_sound(self):
        mat = g.hub_matrix(200, n_hubs=1, seed=2)
        cfg = BatchConfig(batch_size=4, temp_limit=16, multibatch=3)
        engine, state = traced_run(mat, 6, jitter=0.5, seed=3, cfg=cfg)
        check_trace(engine.trace, engine.stats)
        assert np.array_equal(state.permutation(), rcm_serial(mat, 0))
