"""Focused tests for the simulated-trace visualizers (machine/tracing.py).

Covers the degenerate inputs (empty, zero-length), overlapping events,
the ``?`` fallback glyph for unknown stages, and the Perfetto thread-name
metadata emitted into Chrome-tracing exports.
"""

import json

from repro.machine.tracing import ascii_gantt, stage_timeline, to_chrome_tracing


class TestAsciiGantt:
    def test_empty_trace(self):
        assert ascii_gantt([]) == "(empty trace)"

    def test_zero_length_trace(self):
        trace = [(0.0, 0, "Discover", 0.0), (0.0, 1, "Sort", 0.0)]
        assert "zero-length" in ascii_gantt(trace)

    def test_overlapping_events_majority_wins(self):
        # Sort covers 90% of the makespan on worker 0; Discover overlaps it
        trace = [(0.0, 0, "Sort", 90.0), (0.0, 0, "Discover", 10.0)]
        out = ascii_gantt(trace, width=10, n_workers=1)
        lane = out.splitlines()[1]
        assert lane.count("S") > lane.count("D")

    def test_unknown_stage_renders_fallback_glyph(self):
        trace = [(0.0, 0, "totally-new-stage", 50.0)]
        out = ascii_gantt(trace, width=10, n_workers=1)
        assert "?" in out.splitlines()[1]

    def test_legend_documents_fallback(self):
        out = ascii_gantt([(0.0, 0, "Discover", 5.0)], width=10)
        assert "?=unknown stage" in out

    def test_respects_n_workers_override(self):
        out = ascii_gantt([(0.0, 0, "Sort", 5.0)], width=10, n_workers=3)
        assert "w2" in out


class TestChromeTracing:
    TRACE = [(0.0, 0, "Discover", 100.0), (50.0, 1, "Sort", 25.0)]

    def test_thread_name_metadata_per_lane(self, tmp_path):
        p = tmp_path / "t.json"
        to_chrome_tracing(self.TRACE, p)
        events = json.loads(p.read_text())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 2
        assert all(e["name"] == "thread_name" for e in meta)
        assert {e["args"]["name"] for e in meta} == {"worker 0", "worker 1"}
        assert {e["tid"] for e in meta} == {0, 1}

    def test_custom_thread_names(self, tmp_path):
        p = tmp_path / "t.json"
        to_chrome_tracing(self.TRACE, p, thread_names={0: "block 0"})
        meta = [e for e in json.loads(p.read_text())["traceEvents"]
                if e["ph"] == "M"]
        names = {e["tid"]: e["args"]["name"] for e in meta}
        assert names[0] == "block 0"
        assert names[1] == "worker 1"

    def test_span_events_unchanged(self, tmp_path):
        p = tmp_path / "t.json"
        to_chrome_tracing(self.TRACE, p, clock_ghz=1.0)
        spans = [e for e in json.loads(p.read_text())["traceEvents"]
                 if e["ph"] == "X"]
        assert len(spans) == 2
        assert spans[0]["ts"] == 0.0
        assert spans[0]["dur"] == 100.0 / 1e3  # cycles -> µs at 1 GHz
        assert spans[0]["args"]["cycles"] == 100.0

    def test_empty_trace_still_valid_json(self, tmp_path):
        p = tmp_path / "t.json"
        to_chrome_tracing([], p)
        assert json.loads(p.read_text())["traceEvents"] == []


class TestStageTimeline:
    def test_filters_and_sorts(self):
        trace = [
            (30.0, 1, "Sort", 5.0),
            (0.0, 0, "Sort", 10.0),
            (5.0, 0, "Discover", 2.0),
        ]
        assert stage_timeline(trace, "Sort") == [(0.0, 10.0), (30.0, 35.0)]

    def test_missing_stage_is_empty(self):
        assert stage_timeline([(0.0, 0, "Sort", 1.0)], "Signal") == []
