"""Tests for critical-path analysis (``repro.telemetry.critical_path``).

The synthetic trees pin the backward-walk semantics exactly: sequential
phases all land on the path, concurrent siblings contribute only the one
that bounds the parent, self time is duration minus the chosen children,
and the what-if rows apply Amdahl's law to path self time.  The CLI
tests cover ``repro telemetry critpath`` including its clean no-data
exit (satellite: absent/empty logs are not errors).
"""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.telemetry.critical_path import critical_path, format_report
from repro.telemetry.spans import SpanRecord

MS = 1_000_000  # ns per ms


def _span(sid, parent, name, start_ms, dur_ms, *, category="api",
          trace_id=None):
    return SpanRecord(
        span_id=sid,
        parent_id=parent,
        name=name,
        category=category,
        start_ns=int(start_ms * MS),
        duration_ns=int(dur_ms * MS),
        thread_id=1,
        trace_id=trace_id,
    )


def _request_tree():
    """request[0,100] -> ordering[0,40], parallel[40,100];
    parallel -> worker w1[45,70] and w2[45,95] running concurrently."""
    return [
        _span(1, None, "request", 0, 100),
        _span(2, 1, "ordering", 0, 40),
        _span(3, 1, "parallel", 40, 60, category="parallel"),
        _span(4, 3, "worker", 45, 25, category="parallel"),
        _span(5, 3, "worker", 45, 50, category="parallel"),
    ]


class TestCriticalPath:
    def test_concurrent_sibling_resolution(self):
        report = critical_path(_request_tree())
        assert report is not None
        assert report["spans"] == 5
        assert report["wall_ms"] == 100.0
        # path: request -> ordering -> parallel -> the LATER worker only
        names = [row["name"] for row in report["path"]]
        assert names == ["request", "ordering", "parallel", "worker"]
        by_name = {row["name"]: row for row in report["path"]}
        assert by_name["worker"]["duration_ms"] == 50.0  # w2, not w1
        assert by_name["worker"]["span_id"] == 5

    def test_path_self_times(self):
        report = critical_path(_request_tree())
        # request fully explained by its children; parallel keeps the
        # 10 ms its bounding worker does not cover
        assert report["path_self_ms"] == {
            "request": 0.0,
            "ordering": 40.0,
            "parallel": 10.0,
            "worker": 50.0,
        }
        assert report["dominant_phase"] == "worker"
        assert report["dominant_self_ms"] == 50.0
        assert report["dominant_pct_of_wall"] == 50.0

    def test_tree_self_rollup_counts_off_path_spans(self):
        report = critical_path(_request_tree())
        # BOTH workers contribute to the whole-tree rollup (25 + 50)
        assert report["tree_self_ms"]["worker"] == 75.0
        # parallel's children sum past its duration: clamped to 0
        assert report["tree_self_ms"]["parallel"] == 0.0

    def test_what_if_is_amdahl_on_path_self(self):
        report = critical_path(_request_tree(), what_if_factor=2.0)
        rows = {r["name"]: r for r in report["what_if"]}
        # 2x faster worker: saves half of 50 ms path self = 25% of wall
        assert rows["worker"]["saved_ms"] == 25.0
        assert rows["worker"]["new_wall_ms"] == 75.0
        assert rows["worker"]["wall_reduction_pct"] == 25.0
        # rows sorted by path self time, descending
        assert [r["name"] for r in report["what_if"]] == [
            "worker", "ordering", "parallel", "request"
        ]

    def test_what_if_factor_scales(self):
        report = critical_path(_request_tree(), what_if_factor=4.0)
        rows = {r["name"]: r for r in report["what_if"]}
        assert rows["worker"]["saved_ms"] == 37.5  # 50 * (1 - 1/4)
        assert rows["worker"]["factor"] == 4.0

    def test_factor_at_most_one_rejected(self):
        with pytest.raises(ValueError):
            critical_path(_request_tree(), what_if_factor=1.0)
        with pytest.raises(ValueError):
            critical_path(_request_tree(), what_if_factor=0.5)

    def test_empty_and_span_free_input(self):
        assert critical_path([]) is None
        assert critical_path(_request_tree(), trace_id="absent") is None

    def test_multiple_roots_form_one_envelope(self):
        # phases recorded without a wrapping request span
        records = [
            _span(1, None, "find_start", 0, 30),
            _span(2, None, "rcm", 30, 70),
        ]
        report = critical_path(records)
        assert report["wall_ms"] == 100.0
        assert [r["name"] for r in report["path"]] == ["find_start", "rcm"]
        assert report["dominant_phase"] == "rcm"

    def test_trace_id_filter(self):
        records = [
            _span(1, None, "request", 0, 100, trace_id="A"),
            _span(2, None, "request", 0, 10, trace_id="B"),
        ]
        report = critical_path(records, trace_id="B")
        assert report["spans"] == 1
        assert report["wall_ms"] == 10.0
        assert report["trace_id"] == "B"

    def test_orphan_parent_treated_as_root(self):
        # parent id points at a span that never flushed (crash tail)
        report = critical_path([_span(7, 99, "ordering", 0, 20)])
        assert report is not None
        assert report["path"][0]["name"] == "ordering"

    def test_format_report_names_dominant_and_what_if(self):
        text = format_report(critical_path(_request_tree()))
        assert "critical path : 4 of 5 spans" in text
        assert "dominant phase: worker" in text
        assert "50.0% of wall" in text
        assert "what-if (2x faster):" in text
        assert "wall -25.0%" in text


class TestCritpathCli:
    @pytest.fixture(autouse=True)
    def clean_telemetry(self):
        telemetry.reset()
        telemetry.disable()
        yield
        telemetry.reset()
        telemetry.disable()

    def _write_events(self, path):
        events = [{"type": "meta", "schema": "repro-telemetry/v1"}]
        events += [rec.to_event() for rec in _request_tree()]
        events.append({"type": "metrics", "counters": {}})
        path.write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )

    def test_missing_file_is_clean_no_data(self, tmp_path, capsys):
        rc = main(
            ["telemetry", "critpath", str(tmp_path / "missing.jsonl")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no span data" in out

    def test_span_free_log_is_clean_no_data(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"type": "metrics", "counters": {}}\n')
        assert main(["telemetry", "critpath", str(path)]) == 0
        assert "no span data" in capsys.readouterr().out

    def test_report_over_recorded_log(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        self._write_events(path)
        assert main(["telemetry", "critpath", str(path)]) == 0
        out = capsys.readouterr().out
        assert "dominant phase: worker" in out
        assert "what-if" in out

    def test_json_output_round_trips(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        self._write_events(path)
        rc = main(
            ["telemetry", "critpath", str(path),
             "--what-if-factor", "4", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spans"] == 5
        assert doc["dominant_phase"] == "worker"
        assert doc["what_if"][0]["factor"] == 4.0

    def test_trace_filter_flag(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        events = [
            _span(1, None, "request", 0, 100, trace_id="A").to_event(),
            _span(2, None, "request", 0, 10, trace_id="B").to_event(),
        ]
        path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        rc = main(
            ["telemetry", "critpath", str(path), "--trace", "B", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spans"] == 1
        assert doc["trace_id"] == "B"
