"""Schedule-sweep stress suite for the OS-thread backend (nightly).

``rcm_threads`` must return the exact serial permutation for *every*
interleaving the OS scheduler produces.  One run per configuration cannot
probe that, so this suite sweeps worker counts x seeds x batch
configurations — including overhang-heavy shapes (tiny batches, deep
multibatch, hub-skewed degree distributions) that maximize speculative
mis-sorting and signal-chain contention.

Marked ``slow``: excluded from the default run (``-m 'not slow'`` in
``pyproject.toml``) and executed by the nightly CI job
(``.github/workflows/nightly.yml``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batches import BatchConfig
from repro.core.serial import rcm_serial
from repro.core.threads import rcm_threads
from repro.matrices import generators as g
from repro.sparse.csr import coo_to_csr

pytestmark = pytest.mark.slow


def _random_symmetric(n, density, seed):
    rng = np.random.default_rng(seed)
    m = max(int(n * n * density / 2), n)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return coo_to_csr(
        n, np.concatenate([rows, cols]), np.concatenate([cols, rows])
    )


#: batch shapes chosen to stress distinct scheduler paths: tiny batches
#: produce long signal chains; deep multibatch maximizes speculation;
#: blocking (multibatch=1) serializes waits; no-early-signaling forces
#: whole-batch completion before successors start.
CONFIGS = {
    "overhang-heavy": BatchConfig(batch_size=4, multibatch=3),
    "tiny-blocking": BatchConfig(batch_size=2, multibatch=1),
    "no-early-signal": BatchConfig(
        batch_size=8, multibatch=2, early_signaling=False
    ),
    "no-overhang": BatchConfig(batch_size=8, multibatch=2, overhang=False),
}


def _component_of_zero(mat):
    """Serial golden for the component reachable from node 0."""
    return rcm_serial(mat, 0)


class TestRandomSweep:
    @pytest.mark.parametrize("cfg_name", sorted(CONFIGS))
    @pytest.mark.parametrize("n_threads", [2, 3, 4, 8])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, cfg_name, n_threads, seed):
        mat = _random_symmetric(150 + 23 * seed, 0.04, seed)
        ref = _component_of_zero(mat)
        got = rcm_threads(
            mat, 0, n_threads=n_threads, config=CONFIGS[cfg_name]
        )
        assert np.array_equal(got, ref)


class TestStructuredSweep:
    """Wide-front and hub-skewed graphs: worst cases for overhang handling."""

    @pytest.mark.parametrize("cfg_name", sorted(CONFIGS))
    @pytest.mark.parametrize("n_threads", [2, 4, 8])
    def test_grid(self, cfg_name, n_threads):
        mat = g.grid2d(24, 24)
        ref = _component_of_zero(mat)
        got = rcm_threads(
            mat, 0, n_threads=n_threads, config=CONFIGS[cfg_name]
        )
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("cfg_name", sorted(CONFIGS))
    @pytest.mark.parametrize("n_threads", [2, 4, 8])
    def test_hub(self, cfg_name, n_threads):
        # hubs concentrate almost all children in a few parents, so batches
        # overflow constantly — the overhang path dominates
        mat = g.hub_matrix(300, n_hubs=3, hub_degree_frac=0.6, seed=11)
        ref = _component_of_zero(mat)
        got = rcm_threads(
            mat, 0, n_threads=n_threads, config=CONFIGS[cfg_name]
        )
        assert np.array_equal(got, ref)


class TestRepeatedRuns:
    """Same input, many runs: schedule nondeterminism must never leak."""

    @pytest.mark.parametrize("attempt", range(10))
    def test_mesh_is_stable_across_runs(self, attempt):
        mat = g.delaunay_mesh(250, seed=5)
        ref = _component_of_zero(mat)
        got = rcm_threads(
            mat, 0, n_threads=4, config=CONFIGS["overhang-heavy"]
        )
        assert np.array_equal(got, ref), f"diverged on attempt {attempt}"
