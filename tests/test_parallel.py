"""Process-parallel executor: correctness, fallback paths, configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.core.api import _reorder_rcm
from repro.matrices import generators as g
from repro.parallel import (
    ParallelConfig,
    fork_available,
    map_matrices,
    rcm_components,
    resolve_workers,
)
from repro.sparse.csr import CSRMatrix


@pytest.fixture
def many_components() -> CSRMatrix:
    """Five grid components of very different sizes in one matrix."""
    blocks = [g.grid2d(k, k) for k in (3, 5, 8, 12, 2)]
    n = sum(b.n for b in blocks)
    edges, base = [], 0
    for b in blocks:
        for u in range(b.n):
            for v in b.indices[b.indptr[u]:b.indptr[u + 1]]:
                if u < v:
                    edges.append((base + u, base + int(v)))
        base += b.n
    return CSRMatrix.from_edges(n, edges)


class TestComponentPool:
    def test_matches_serial_multi_component(self, many_components):
        ref = _reorder_rcm(many_components, method="serial")
        got = _reorder_rcm(many_components, method="parallel", n_workers=3)
        assert np.array_equal(got.permutation, ref.permutation)
        assert got.method == "parallel"
        assert got.n_components == 5

    def test_forced_pool_matches(self, many_components):
        starts = _reorder_rcm(many_components, method="serial").start_nodes
        sizes = _reorder_rcm(many_components, method="serial").component_sizes
        cfg = ParallelConfig(n_workers=2, force_processes=True)
        ref = [o for o in rcm_components(
            many_components, starts, sizes=sizes,
            config=ParallelConfig(n_workers=0),
        )]
        got = rcm_components(many_components, starts, sizes=sizes, config=cfg)
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)

    def test_small_input_runs_in_process(self, two_triangles):
        tel = telemetry.get()
        tel.reset()
        tel.enable()
        try:
            res = _reorder_rcm(two_triangles, method="parallel")
            counters = tel.snapshot()["counters"]
        finally:
            tel.disable()
            tel.reset()
        assert res.n_components == 2
        assert counters.get("parallel.fallbacks.small-input", 0) >= 1

    def test_fallback_blocks_cover_matrix(self, two_triangles):
        ref = _reorder_rcm(two_triangles, method="serial")
        parts = rcm_components(two_triangles, ref.start_nodes)
        assert sum(len(p) for p in parts) == two_triangles.n


class TestMapMatrices:
    def test_matches_in_process_loop(self):
        mats = [g.grid2d(6, 6), g.delaunay_mesh(80, seed=1),
                g.random_geometric(50, k=3, seed=2)]
        seq = [_reorder_rcm(m, method="vectorized") for m in mats]
        cfg = ParallelConfig(n_workers=2, force_processes=True)
        par = map_matrices(mats, method="vectorized", config=cfg)
        assert len(par) == len(seq)
        for a, b in zip(seq, par):
            assert np.array_equal(a.permutation, b.permutation)

    def test_empty_batch(self):
        assert map_matrices([]) == []

    def test_chunking_covers_all(self):
        mats = [g.grid2d(4, 4) for _ in range(7)]
        cfg = ParallelConfig(n_workers=2, chunk_size=2, force_processes=True)
        out = map_matrices(mats, config=cfg)
        assert len(out) == 7
        ref = _reorder_rcm(mats[0], method="serial").permutation
        for res in out:
            assert np.array_equal(res.permutation, ref)


class TestConfig:
    def test_resolve_workers_default_positive(self):
        assert resolve_workers(None) >= 1

    def test_resolve_workers_explicit(self):
        assert resolve_workers(3) == 3

    def test_zero_workers_means_in_process(self, many_components):
        ref = _reorder_rcm(many_components, method="serial")
        got = _reorder_rcm(
            many_components, method="parallel",
            config=ParallelConfig(n_workers=0),
        )
        assert np.array_equal(got.permutation, ref.permutation)

    def test_fork_available_is_bool(self):
        assert isinstance(fork_available(), bool)
