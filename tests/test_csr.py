"""Unit tests for the CSR substrate."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, coo_to_csr


class TestCooToCsr:
    def test_basic_construction(self):
        m = coo_to_csr(3, [0, 1, 2], [1, 2, 0])
        assert m.n == 3
        assert m.nnz == 3
        assert list(m.row(0)) == [1]
        assert list(m.row(1)) == [2]
        assert list(m.row(2)) == [0]

    def test_rows_sorted_within_row(self):
        m = coo_to_csr(2, [0, 0, 0], [1, 0, 1])
        assert list(m.row(0)) == [0, 1]

    def test_duplicates_merged(self):
        m = coo_to_csr(2, [0, 0, 1], [1, 1, 0])
        assert m.nnz == 2

    def test_duplicate_values_summed(self):
        m = coo_to_csr(2, [0, 0], [1, 1], [2.0, 3.0])
        assert m.nnz == 1
        assert m.data[0] == pytest.approx(5.0)

    def test_values_kept_in_order(self):
        m = coo_to_csr(3, [2, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        assert m.row_values(0)[0] == pytest.approx(2.0)
        assert m.row_values(1)[0] == pytest.approx(3.0)
        assert m.row_values(2)[0] == pytest.approx(1.0)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError):
            coo_to_csr(2, [2], [0])

    def test_out_of_range_col_rejected(self):
        with pytest.raises(ValueError):
            coo_to_csr(2, [0], [5])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            coo_to_csr(2, [0, 1], [0])

    def test_empty_matrix(self):
        m = coo_to_csr(4, [], [])
        assert m.nnz == 0
        assert m.n == 4

    def test_float_indices_rejected(self):
        with pytest.raises(TypeError):
            coo_to_csr(2, np.array([0.5]), np.array([1.0]))


class TestCSRMatrixInvariants:
    def test_indptr_length_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 1]), indices=np.array([0]), n=5)

    def test_indptr_monotone_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]), n=2)

    def test_indptr_first_zero_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([1, 2]), indices=np.array([0]), n=1)

    def test_nnz_consistency_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 2]), indices=np.array([0]), n=1)

    def test_column_range_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(indptr=np.array([0, 1]), indices=np.array([3]), n=1)

    def test_data_length_checked(self):
        with pytest.raises(ValueError):
            CSRMatrix(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                data=np.array([1.0, 2.0]),
                n=1,
            )

    def test_degrees_and_valences_agree(self, star):
        assert np.array_equal(star.degrees(), star.valences())
        assert star.degrees()[0] == 5
        assert all(star.degrees()[1:] == 1)


class TestTranspose:
    def test_transpose_of_symmetric_is_identity(self, small_grid):
        t = small_grid.transpose().sort_indices()
        s = small_grid.sort_indices()
        assert np.array_equal(t.indptr, s.indptr)
        assert np.array_equal(t.indices, s.indices)

    def test_transpose_asymmetric(self):
        m = coo_to_csr(3, [0, 1], [1, 2], [1.0, 2.0])
        t = m.transpose()
        assert list(t.row(1)) == [0]
        assert list(t.row(2)) == [1]
        assert t.row_values(1)[0] == pytest.approx(1.0)

    def test_double_transpose_round_trips(self):
        m = coo_to_csr(4, [0, 1, 3], [2, 0, 1], [1.0, 2.0, 3.0])
        tt = m.transpose().transpose().sort_indices()
        ms = m.sort_indices()
        assert np.array_equal(tt.indptr, ms.indptr)
        assert np.array_equal(tt.indices, ms.indices)
        assert np.allclose(tt.data, ms.data)


class TestSymmetrize:
    def test_pattern_union(self):
        m = coo_to_csr(3, [0], [1])
        s = m.symmetrize()
        assert list(s.row(0)) == [1]
        assert list(s.row(1)) == [0]

    def test_symmetrize_idempotent_on_symmetric(self, small_grid):
        s = small_grid.symmetrize()
        assert s.nnz == small_grid.nnz

    def test_values_averaged_when_both_present(self):
        m = coo_to_csr(2, [0, 1], [1, 0], [2.0, 4.0])
        s = m.symmetrize()
        assert s.row_values(0)[0] == pytest.approx(3.0)

    def test_one_sided_value_preserved(self):
        m = coo_to_csr(2, [0], [1], [6.0])
        s = m.symmetrize()
        assert s.row_values(0)[0] == pytest.approx(6.0)
        assert s.row_values(1)[0] == pytest.approx(6.0)


class TestPermute:
    def test_identity_permutation(self, small_grid):
        p = small_grid.permute_symmetric(np.arange(small_grid.n))
        assert np.array_equal(p.indptr, small_grid.indptr)
        assert np.array_equal(p.indices, small_grid.indices)

    def test_reversal_preserves_structure(self, small_grid):
        perm = np.arange(small_grid.n)[::-1]
        p = small_grid.permute_symmetric(perm)
        assert p.nnz == small_grid.nnz
        assert np.array_equal(p.degrees()[::-1], small_grid.degrees())

    def test_matches_scipy_permutation(self, small_mesh):
        rng = np.random.default_rng(0)
        perm = rng.permutation(small_mesh.n)
        ours = small_mesh.permute_symmetric(perm).to_scipy()
        sp = small_mesh.to_scipy()[perm][:, perm].tocsr()
        assert (ours != sp).nnz == 0

    def test_wrong_length_rejected(self, small_grid):
        with pytest.raises(ValueError):
            small_grid.permute_symmetric(np.arange(3))


class TestConversions:
    def test_dense_round_trip(self):
        dense = np.array([[0, 1.0, 0], [1.0, 0, 2.0], [0, 2.0, 0]])
        m = CSRMatrix.from_dense(dense)
        assert np.allclose(m.to_dense(), dense)

    def test_scipy_round_trip(self, small_grid):
        back = CSRMatrix.from_scipy(small_grid.to_scipy())
        assert np.array_equal(back.indptr, small_grid.indptr)
        assert np.array_equal(back.indices, small_grid.indices)

    def test_from_scipy_rejects_rectangular(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            CSRMatrix.from_scipy(sp.random(3, 4, density=0.5))

    def test_from_edges_symmetric(self):
        m = CSRMatrix.from_edges(3, [(0, 2)])
        assert list(m.row(0)) == [2]
        assert list(m.row(2)) == [0]

    def test_from_edges_empty(self):
        m = CSRMatrix.from_edges(3, [])
        assert m.nnz == 0


class TestMisc:
    def test_strip_diagonal(self):
        m = coo_to_csr(3, [0, 0, 1, 2], [0, 1, 1, 2])
        s = m.strip_diagonal()
        assert s.nnz == 1
        assert list(s.row(0)) == [1]

    def test_has_sorted_indices(self, small_grid):
        assert small_grid.has_sorted_indices()

    def test_copy_is_independent(self, small_grid):
        c = small_grid.copy()
        c.indices[0] = 0
        assert small_grid.indices[0] != 0 or True  # original untouched
        assert c is not small_grid
        assert c.indices is not small_grid.indices

    def test_row_is_view(self, star):
        r = star.row(0)
        assert r.base is not None
