"""Unit tests for batch planning (estimation, balancing, greedy packing)."""

import numpy as np
import pytest

from repro.core.batches import (
    BatchConfig,
    clamped_valences,
    estimate_batch_count,
    plan_ranges,
)


CPU = BatchConfig(batch_size=8, temp_limit=50)
GPU = BatchConfig(batch_size=8, temp_limit=50, gpu_planning=True)


def coverage_ok(ranges, m):
    """Ranges are contiguous, ordered, and cover [0, m)."""
    pos = 0
    for a, b in ranges:
        assert a == pos
        assert b >= a
        pos = b
    assert pos == m


class TestEstimate:
    def test_zero_nodes(self):
        assert estimate_batch_count(0, 0, CPU) == 0

    def test_node_driven(self):
        assert estimate_batch_count(17, 17, CPU) == 3  # ceil(17/8)

    def test_valence_driven(self):
        assert estimate_batch_count(4, 180, CPU) == 4  # ceil(180/50)

    def test_gpu_overestimates(self):
        cpu = estimate_batch_count(17, 100, CPU)
        gpu = estimate_batch_count(17, 100, GPU)
        assert gpu >= 2 * cpu

    def test_clamping(self):
        v = np.array([3, 500, 7])
        c = clamped_valences(v, 50)
        assert list(c) == [3, 50, 7]


class TestBalancedPlanner:
    def test_exact_count_and_coverage(self):
        vals = np.ones(17, dtype=np.int64)
        k = estimate_batch_count(17, 17, CPU)
        ranges = plan_ranges(vals, k, CPU)
        assert len(ranges) == k
        coverage_ok(ranges, 17)

    def test_node_cap_respected(self):
        vals = np.ones(64, dtype=np.int64)
        k = estimate_batch_count(64, 64, CPU)
        ranges = plan_ranges(vals, k, CPU)
        assert all(b - a <= CPU.batch_size for a, b in ranges)

    def test_valence_balancing(self):
        # one heavy node followed by light ones: heavy batch should not also
        # take all the light nodes
        vals = np.array([45] + [1] * 7, dtype=np.int64)
        k = estimate_batch_count(8, int(clamped_valences(vals, 50).sum()), CPU)
        ranges = plan_ranges(vals, k, CPU)
        coverage_ok(ranges, 8)
        assert len(ranges) == k
        first = ranges[0]
        assert first[1] - first[0] < 8

    def test_zero_batches_requires_no_nodes(self):
        assert plan_ranges(np.zeros(0, dtype=np.int64), 0, CPU) == []
        with pytest.raises(ValueError):
            plan_ranges(np.ones(3, dtype=np.int64), 0, CPU)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_coverage(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 200))
        vals = rng.integers(1, 30, size=m).astype(np.int64)
        cv = clamped_valences(vals, CPU.temp_limit)
        k = estimate_batch_count(m, int(cv.sum()), CPU)
        ranges = plan_ranges(cv, k, CPU)
        assert len(ranges) == k
        coverage_ok(ranges, m)
        assert all(b - a <= CPU.batch_size for a, b in ranges)


class TestGreedyPlanner:
    def test_respects_scratchpad(self):
        vals = np.array([20, 20, 20, 20, 20], dtype=np.int64)
        k = estimate_batch_count(5, 100, GPU)
        ranges = plan_ranges(vals, k, GPU)
        coverage_ok(ranges, 5)
        for a, b in ranges:
            if b - a > 1:
                assert vals[a:b].sum() <= GPU.temp_limit

    def test_oversized_node_isolated(self):
        vals = np.array([3, 200, 3], dtype=np.int64)
        cv = clamped_valences(vals, GPU.temp_limit)
        k = estimate_batch_count(3, int(cv.sum()), GPU)
        ranges = plan_ranges(cv, k, GPU)
        coverage_ok(ranges, 3)
        # the oversized node must sit in a batch where it is first
        holder = [r for r in ranges if r[0] <= 1 < r[1]][0]
        assert holder[0] == 1

    def test_padding_with_empties(self):
        vals = np.ones(3, dtype=np.int64)
        k = estimate_batch_count(3, 3, GPU)
        ranges = plan_ranges(vals, k, GPU)
        assert len(ranges) == k
        non_empty = [r for r in ranges if r[1] > r[0]]
        empty = [r for r in ranges if r[1] == r[0]]
        assert len(non_empty) >= 1
        assert len(empty) == k - len(non_empty)
        coverage_ok(non_empty, 3)

    @pytest.mark.parametrize("seed", range(8))
    def test_reservation_never_exceeded(self, seed):
        """The GPU estimate is a hard upper bound for greedy packing."""
        rng = np.random.default_rng(100 + seed)
        m = int(rng.integers(1, 300))
        vals = rng.integers(1, 120, size=m).astype(np.int64)
        cv = clamped_valences(vals, GPU.temp_limit)
        k = estimate_batch_count(m, int(cv.sum()), GPU)
        ranges = plan_ranges(cv, k, GPU)
        assert len(ranges) == k  # padded exactly to the reservation


class TestBatchConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BatchConfig(batch_size=0)
        with pytest.raises(ValueError):
            BatchConfig(temp_limit=0)
        with pytest.raises(ValueError):
            BatchConfig(multibatch=0)
