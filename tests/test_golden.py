"""Golden regression guard: frozen serial-RCM outputs for the test set.

The entire library's correctness story rests on one deterministic function:
serial RCM with the documented tie-breaking.  These hashes freeze its output
(and the deterministic start-node choice and component size) for every suite
matrix — any silent change to generators, BFS, valence semantics or the sort
discipline trips here with a precise pointer, instead of surfacing as an
inscrutable mismatch somewhere in the parallel stack.

If a change is *intended* (e.g. a new tie-break rule), regenerate:

    python - <<'PY'
    import hashlib
    from repro.matrices.suite import matrix_names, get_matrix
    from repro.bench.runner import pick_start
    from repro.core.serial import rcm_serial
    for name in matrix_names():
        mat = get_matrix(name); start, total = pick_start(mat)
        h = hashlib.sha256(rcm_serial(mat, start).astype('<i8').tobytes())
        print(f'    "{name}": ("{h.hexdigest()[:16]}", {start}, {total}),')
    PY
"""

import hashlib

import numpy as np
import pytest

from repro.matrices.suite import matrix_names, get_matrix
from repro.bench.runner import pick_start
from repro.core.serial import rcm_serial

GOLDEN = {
    "bcspwr10": ("5986c5c809bdf31d", 0, 5265),
    "bodyy4": ("9ade93c8b0f69d09", 138, 6000),
    "benzene": ("2d878bb39da5f7a0", 0, 2744),
    "ncvxqp3": ("50f1f1284a2ee889", 4216, 5200),
    "ecology1": ("c130310e139285cd", 0, 12100),
    "gupta3": ("53c54c0c20167186", 0, 3000),
    "SiO2": ("825990273e91327b", 12, 2197),
    "CurlCurl_3": ("3838a3ccba2061de", 0, 10648),
    "nd12k": ("98a2501d78e6c90a", 1, 784),
    "Si41Ge41H72": ("5294cc0a84ab644b", 0, 2197),
    "great-britain_osm": ("2d2f6613be7cfa5f", 0, 13725),
    "human_gene2": ("5764faf52b196d39", 223, 3525),
    "Ga41As41H72": ("2d878bb39da5f7a0", 0, 2744),
    "bundle_adj": ("e8f1399ed653faf7", 712, 9500),
    "nd24k": ("cf5e36c424d4c6be", 0, 1280),
    "coPapersDBLP": ("3b66f7753c5c00dc", 7, 9000),
    "Emilia_923": ("7d646107c9496c08", 0, 4913),
    "delaunay_n23": ("d2042031c30f5a57", 99, 16000),
    "hugebubbles-00020": ("8e541d374e291eb5", 0, 16900),
    "audikw_1": ("de086462ea7b91ad", 0, 4096),
    "nlpkkt120": ("656f97a1e041699f", 1728, 2728),
    "Flan_1565": ("f3c38cbf104d659f", 0, 5832),
    "nlpkkt160": ("6f3dbfd88e4a9159", 3375, 5572),
    "mycielskian18": ("de91cae3ae072004", 3057, 3071),
    "nlpkkt200": ("145f906bd55abbfd", 9760, 9928),
    "nlpkkt240": ("f1470b202c251443", 11564, 16120),
}


def test_golden_covers_whole_suite():
    assert set(GOLDEN) == set(matrix_names())


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_serial_rcm_frozen(name):
    expected_hash, expected_start, expected_total = GOLDEN[name]
    mat = get_matrix(name)
    start, total = pick_start(mat)
    assert start == expected_start, "start-node choice changed"
    assert total == expected_total, "component size changed (generator drift)"
    perm = rcm_serial(mat, start)
    digest = hashlib.sha256(perm.astype("<i8").tobytes()).hexdigest()[:16]
    assert digest == expected_hash, (
        f"serial RCM output changed on {name} — if intended, regenerate the "
        "GOLDEN table (see module docstring)"
    )


def test_identical_analogues_share_hash():
    """benzene and Ga41As41H72 use the same generator parameters — the
    golden table should reflect that (a sanity check of the freeze itself)."""
    assert GOLDEN["benzene"][0] == GOLDEN["Ga41As41H72"][0]
