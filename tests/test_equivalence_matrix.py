"""Cross-method golden equivalence battery.

The paper's headline invariant — every execution method returns the exact
serial RCM permutation — used to be spot-checked per method in scattered
tests.  This module is the single battery: every matrix in the suite runs
through every execution method (serial, vectorized, parallel, leveled,
unordered, algebraic, the three simulated batch backends, OS threads and
``"auto"``) plus the service layer cold and warm, and each permutation must
be **byte-identical** to the serial golden reference.

When a method diverges here, fix the method — never widen the comparison.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.core.api import METHODS
from repro.facade import reorder
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian
from repro.service import (
    AsyncReorderService,
    PermutationCache,
    ReorderService,
    ServiceConfig,
    ShardedService,
)
from repro.sparse.csr import CSRMatrix, coo_to_csr


def _random_symmetric(n, density, seed):
    rng = np.random.default_rng(seed)
    m = max(int(n * n * density / 2), n)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return coo_to_csr(
        n, np.concatenate([rows, cols]), np.concatenate([cols, rows])
    )


#: name -> builder; spans the structural regimes the paper's test set does:
#: chains, disconnected components, regular meshes, irregular meshes,
#: dense small-world cores, hub-dominated skews and random patterns —
#: plus one representative per hostile-graph scenario family
#: (``repro.matrices.scenarios``): banded, road-like, power-law (R-MAT
#: and Kronecker flavours) and small-world.
MATRIX_BUILDERS = {
    "path-5": lambda: CSRMatrix.from_edges(5, [(i, i + 1) for i in range(4)]),
    "two-triangles": lambda: CSRMatrix.from_edges(
        6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    ),
    "grid-20x20": lambda: g.grid2d(20, 20),
    "mesh-300": lambda: g.delaunay_mesh(300, seed=7),
    "mycielski-7": lambda: mycielskian(7),
    "hub-400": lambda: g.hub_matrix(400, n_hubs=2, hub_degree_frac=0.7, seed=3),
    "random-250": lambda: _random_symmetric(250, 0.02, 3),
    "banded-200": lambda: g.banded(200, 5, density=0.85, seed=11),
    "road-300": lambda: g.road_network(300, aspect=40.0, seed=13),
    "rmat-256": lambda: g.rmat(8, edge_factor=5, seed=17),
    "kron-256": lambda: g.kronecker(8, edge_factor=5, seed=19),
    "smallworld-240": lambda: g.watts_strogatz(240, 6, 0.12, seed=23),
}

MATRICES = sorted(MATRIX_BUILDERS)

#: every non-serial execution method, plus the resolver
EXECUTION_METHODS = [m for m in METHODS if m != "serial"] + ["auto"]


@lru_cache(maxsize=None)
def matrix(name: str) -> CSRMatrix:
    return MATRIX_BUILDERS[name]()


@lru_cache(maxsize=None)
def golden(name: str) -> bytes:
    """The serial RCM permutation — the reference every method must match."""
    return reorder(matrix(name), method="serial").permutation.tobytes()


@lru_cache(maxsize=None)
def is_connected(name: str) -> bool:
    return reorder(matrix(name), method="serial").n_components == 1


class TestMethodMatrix:
    @pytest.mark.parametrize("name", MATRICES)
    @pytest.mark.parametrize("method", EXECUTION_METHODS)
    def test_byte_identical_to_serial(self, name, method):
        got = reorder(matrix(name), method=method)
        assert got.permutation.tobytes() == golden(name)

    @pytest.mark.parametrize("name", MATRICES)
    @pytest.mark.parametrize(
        "method", ["vectorized", "parallel", "threads", "batch-cpu"]
    )
    @pytest.mark.parametrize("start", [0, "peripheral"])
    def test_start_variants(self, name, method, start):
        if start == 0 and not is_connected(name):
            pytest.skip("explicit start requires a connected graph")
        ref = reorder(matrix(name), method="serial", start=start)
        got = reorder(matrix(name), method=method, start=start)
        assert got.permutation.tobytes() == ref.permutation.tobytes()


class TestBatchMatrix:
    """`reorder_many` and the service's batched admission must hand back
    the same bytes as one-at-a-time serial calls — batching is a transport
    and scheduling optimization, never a semantic one."""

    @pytest.mark.parametrize("method", ["serial", "vectorized", "auto"])
    def test_reorder_many_byte_identical(self, method):
        from repro.facade import reorder_many

        mats = [matrix(name) for name in MATRICES]
        results = reorder_many(mats, method=method)
        for name, res in zip(MATRICES, results):
            assert res.permutation.tobytes() == golden(name)

    def test_reorder_many_cache_tier(self):
        from repro.facade import reorder_many

        cache = PermutationCache(capacity=32)
        mats = [matrix(name) for name in MATRICES]
        cold = reorder_many(mats, method="serial", cache=cache)
        warm = reorder_many(mats, method="serial", cache=cache)
        for name, res in zip(MATRICES, warm):
            assert res.permutation.tobytes() == golden(name)
            assert "cache" in res.phase_ns
        for name, res in zip(MATRICES, cold):
            assert res.permutation.tobytes() == golden(name)

    def test_batched_service_byte_identical(self):
        cfg = ServiceConfig(
            n_workers=2, batch_window_ms=25.0, max_batch=len(MATRICES)
        )
        with ReorderService(cfg) as svc:
            futures = [
                (name, svc.submit(matrix(name), method="serial"))
                for name in MATRICES
            ]
            for name, fut in futures:
                assert fut.result(60).permutation.tobytes() == golden(name)


class TestServiceMatrix:
    @pytest.mark.parametrize("name", MATRICES)
    def test_service_cold_and_warm(self, name):
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            cold = svc.reorder(matrix(name), method="serial")
            warm = svc.reorder(matrix(name), method="serial")
        assert cold.permutation.tobytes() == golden(name)
        assert warm.permutation.tobytes() == golden(name)
        assert svc.counters["computed"] == 1  # warm came from the cache

    @pytest.mark.parametrize("n_shards", [1, 4])
    def test_sharded_service_cold_and_warm(self, n_shards):
        """The consistent-hash router is a placement decision, never a
        semantic one: any shard count returns the serial golden bytes."""
        with ShardedService(
            ServiceConfig(n_workers=2), shards=n_shards
        ) as svc:
            for name in MATRICES:
                cold = svc.reorder(matrix(name), method="serial")
                assert cold.permutation.tobytes() == golden(name)
            for name in MATRICES:
                warm = svc.reorder(matrix(name), method="serial")
                assert warm.permutation.tobytes() == golden(name)
            assert svc.stats()["service.computed"] == len(MATRICES)

    def test_async_service_cold_and_warm(self):
        import asyncio

        async def run():
            async with AsyncReorderService(shards=2) as svc:
                cold = await svc.reorder_many(
                    [matrix(name) for name in MATRICES], method="serial"
                )
                warm = await svc.reorder_many(
                    [matrix(name) for name in MATRICES], method="serial"
                )
                return cold, warm, svc.stats()

        cold, warm, stats = asyncio.run(run())
        for name, c, w in zip(MATRICES, cold, warm):
            assert c.permutation.tobytes() == golden(name)
            assert w.permutation.tobytes() == golden(name)
        assert stats["service.computed"] == len(MATRICES)

    @pytest.mark.parametrize("name", MATRICES)
    def test_facade_cache_path(self, name):
        cache = PermutationCache(capacity=8)
        cold = reorder(matrix(name), method="serial", cache=cache)
        warm = reorder(matrix(name), method="serial", cache=cache)
        assert cold.permutation.tobytes() == golden(name)
        assert warm.permutation.tobytes() == golden(name)
        assert "cache" in warm.phase_ns  # served from the cache, not computed
