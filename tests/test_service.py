"""Behavioural tests for the reordering service layer.

Covers the tentpole guarantees of :mod:`repro.service`: cold/warm
bit-identity with ``method="serial"``, request coalescing (exactly one
underlying computation for concurrent duplicates, observable through the
``service.coalesced`` counter), bounded-queue backpressure, per-request
timeouts, the graceful-degradation chain, the disk cache tier and explicit
invalidation.  The cross-method value battery lives in
``test_equivalence_matrix.py``; cache-key properties in
``test_service_properties.py``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.service.core as service_core
from repro import telemetry
from repro.facade import reorder
from repro.service import (
    PermutationCache,
    ReorderService,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    cache_key,
    fallback_chain,
    pattern_digest,
)
from repro.sparse.csr import CSRMatrix, coo_to_csr


def random_symmetric(n, density, seed):
    """Random symmetric pattern (same recipe as conftest.random_symmetric)."""
    rng = np.random.default_rng(seed)
    m = max(int(n * n * density / 2), n)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return coo_to_csr(
        n, np.concatenate([rows, cols]), np.concatenate([cols, rows])
    )


@pytest.fixture
def tel():
    """Enabled, clean process-wide telemetry; restored afterwards."""
    t = telemetry.get()
    was_enabled = t.enabled
    t.reset()
    t.enable()
    yield t
    t.reset()
    if not was_enabled:
        t.disable()


@pytest.fixture
def gated(monkeypatch):
    """Replace the facade seam with a gate the test opens explicitly.

    Workers block inside the computation until ``release()`` — that is the
    window in which duplicate submissions must coalesce.  ``calls`` records
    every underlying computation that actually ran.
    """
    gate = threading.Event()
    entered = threading.Event()
    calls = []
    real = service_core._call_reorder

    def gated_call(mat, kwargs):
        calls.append(dict(kwargs))
        entered.set()
        if not gate.wait(timeout=10):
            raise RuntimeError("test gate was never opened")
        return real(mat, kwargs)

    monkeypatch.setattr(service_core, "_call_reorder", gated_call)

    class Gate:
        def release(self):
            gate.set()

        def wait_entered(self):
            assert entered.wait(timeout=10), "computation never started"

    g = Gate()
    g.calls = calls
    yield g
    gate.set()  # never leave workers stuck if the test failed early


class TestColdWarm:
    def test_cold_matches_serial_bit_identical(self, medium_grid):
        ref = reorder(medium_grid, method="serial")
        with ReorderService() as svc:
            got = svc.reorder(medium_grid, method="serial")
        assert got.permutation.tobytes() == ref.permutation.tobytes()

    def test_warm_hit_matches_cold(self, medium_grid):
        with ReorderService() as svc:
            cold = svc.reorder(medium_grid)
            warm = svc.reorder(medium_grid)
            assert warm.permutation.tobytes() == cold.permutation.tobytes()
            assert svc.counters["computed"] == 1
            assert svc.cache.stats.hits == 1

    def test_pattern_identical_data_shares_entry(self, medium_grid):
        # same pattern, different values -> one computation serves both
        twin = CSRMatrix(
            medium_grid.indptr.copy(),
            medium_grid.indices.copy(),
            data=np.full(medium_grid.nnz, 7.5),
        )
        assert pattern_digest(twin) == pattern_digest(medium_grid)
        with ReorderService() as svc:
            svc.reorder(medium_grid)
            svc.reorder(twin)
            assert svc.counters["computed"] == 1

    def test_stats_snapshot_shape(self, small_grid):
        with ReorderService() as svc:
            svc.reorder(small_grid)
            stats = svc.stats()
        assert stats["service.requests"] == 1
        assert stats["service.computed"] == 1
        assert stats["pending"] == 0
        assert stats["cache"]["size"] == 1


class TestCoalescing:
    def test_concurrent_duplicates_compute_once(self, tel, gated, medium_grid):
        """ISSUE acceptance: N concurrent same-key submissions, exactly one
        underlying computation, observable via ``service.coalesced``."""
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            futs = [svc.submit(medium_grid) for _ in range(5)]
            gated.wait_entered()
            gated.release()
            results = [f.result(timeout=10) for f in futs]

        assert len(gated.calls) == 1  # exactly one computation ran
        assert svc.counters["computed"] == 1
        assert svc.counters["coalesced"] == 4
        assert tel.counter("service.coalesced").value == 4
        ref = results[0].permutation.tobytes()
        assert all(r.permutation.tobytes() == ref for r in results)

    def test_distinct_keys_do_not_coalesce(self, gated):
        a = random_symmetric(60, 0.1, 0)
        b = random_symmetric(60, 0.1, 1)
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            fa, fb = svc.submit(a), svc.submit(b)
            gated.release()
            fa.result(timeout=10)
            fb.result(timeout=10)
            assert svc.counters["coalesced"] == 0
            assert len(gated.calls) == 2

    def test_same_matrix_different_start_not_coalesced(self, gated, small_grid):
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            f0 = svc.submit(small_grid, start=0)
            f1 = svc.submit(small_grid, start=1)
            gated.release()
            f0.result(timeout=10)
            f1.result(timeout=10)
            assert svc.counters["coalesced"] == 0
            assert len(gated.calls) == 2


class TestBackpressure:
    def test_full_queue_rejects(self, gated, small_grid):
        cfg = ServiceConfig(n_workers=1, max_pending=1, submit_timeout=0.0)
        other = random_symmetric(40, 0.1, 5)
        with ReorderService(cfg) as svc:
            first = svc.submit(small_grid)  # occupies the only slot
            gated.wait_entered()
            with pytest.raises(ServiceOverloadedError, match="queue full"):
                svc.submit(other)
            assert svc.counters["rejected"] == 1
            gated.release()
            first.result(timeout=10)
        # slot was released on completion
        assert svc.pending == 0

    def test_duplicates_admitted_past_full_queue(self, gated, small_grid):
        # coalesced requests must not consume queue slots
        cfg = ServiceConfig(n_workers=1, max_pending=1)
        with ReorderService(cfg) as svc:
            first = svc.submit(small_grid)
            dup = svc.submit(small_grid)  # same key: coalesces, no slot
            assert dup is first
            gated.release()
            first.result(timeout=10)

    def test_queue_depth_gauge(self, tel, gated, small_grid):
        with ReorderService(ServiceConfig(n_workers=1)) as svc:
            svc.submit(small_grid)
            gated.wait_entered()
            assert tel.gauge("service.queue.depth").value == 1
            gated.release()
        assert tel.gauge("service.queue.depth").value == 0


class TestTimeouts:
    def test_request_timeout_raises(self, gated, small_grid):
        with ReorderService(ServiceConfig(n_workers=1)) as svc:
            with pytest.raises(ServiceTimeoutError, match="0.05"):
                svc.reorder(small_grid, timeout=0.05)
            assert svc.counters["timeouts"] == 1
            # computation was not cancelled: it finishes and lands in cache
            gated.release()
            res = svc.reorder(small_grid, timeout=10)
        ref = reorder(small_grid, method="serial")
        assert res.permutation.tobytes() == ref.permutation.tobytes()

    def test_config_default_timeout(self, gated, small_grid):
        cfg = ServiceConfig(n_workers=1, request_timeout=0.05)
        with ReorderService(cfg) as svc:
            with pytest.raises(ServiceTimeoutError):
                svc.reorder(small_grid)
            gated.release()


class TestFallback:
    def test_environment_error_degrades_to_next_method(
        self, tel, monkeypatch, medium_grid
    ):
        real = service_core._call_reorder
        failed = []

        def flaky(mat, kwargs):
            if kwargs["method"] == "parallel":
                failed.append(kwargs["method"])
                raise RuntimeError("worker pool died")
            return real(mat, kwargs)

        monkeypatch.setattr(service_core, "_call_reorder", flaky)
        ref = reorder(medium_grid, method="serial")
        with ReorderService() as svc:
            res = svc.reorder(medium_grid, method="parallel")
        assert failed == ["parallel"]
        assert res.permutation.tobytes() == ref.permutation.tobytes()
        assert res.method == "vectorized"  # first surviving chain entry
        assert svc.counters["fallbacks"] == 1
        assert tel.counter("service.fallbacks.parallel").value == 1

    def test_chain_shape(self):
        assert fallback_chain("rcm", "parallel") == (
            "parallel", "vectorized", "serial",
        )
        assert fallback_chain("rcm", "serial") == ("serial", "vectorized")
        assert fallback_chain("rcm", "vectorized") == ("vectorized", "serial")
        assert fallback_chain("sloan", "direct") == ("direct",)

    def test_chain_derives_from_the_registry(self):
        from repro import backends

        for method in backends.names():
            assert fallback_chain("rcm", method) == backends.degradation_order(
                method
            )

    def test_unregistered_method_degrades_at_admission(self, tel, small_grid):
        # a client asking for an optional backend this install lacks is
        # served by the first registered degradation target, not bounced
        ref = reorder(small_grid, method="vectorized")
        with ReorderService() as svc:
            res = svc.reorder(small_grid, method="gpu-distributed")
        assert res.method == "vectorized"
        assert res.permutation.tobytes() == ref.permutation.tobytes()
        assert svc.counters["fallbacks"] == 1
        assert tel.counter("service.fallbacks.gpu-distributed").value == 1

    def test_unregistered_method_rejected_when_fallback_disabled(
        self, small_grid
    ):
        cfg = ServiceConfig(fallback=False)
        with ReorderService(cfg) as svc:
            with pytest.raises(ValueError, match="method must be one of"):
                svc.submit(small_grid, method="gpu-distributed")
        assert svc.counters["fallbacks"] == 0

    def test_validation_error_propagates_without_fallback(self, monkeypatch):
        calls = []
        real = service_core._call_reorder

        def counting(mat, kwargs):
            calls.append(kwargs["method"])
            return real(mat, kwargs)

        monkeypatch.setattr(service_core, "_call_reorder", counting)
        asym = coo_to_csr(3, [0], [1])  # not symmetric -> ValueError
        with ReorderService() as svc:
            with pytest.raises(ValueError, match="symmetric"):
                svc.reorder(asym)
        assert calls == [calls[0]]  # one attempt, no chain walk

    def test_fallback_disabled_propagates_first_error(
        self, monkeypatch, small_grid
    ):
        def broken(mat, kwargs):
            raise RuntimeError("no fallback expected")

        monkeypatch.setattr(service_core, "_call_reorder", broken)
        cfg = ServiceConfig(fallback=False)
        with ReorderService(cfg) as svc:
            with pytest.raises(RuntimeError, match="no fallback expected"):
                svc.reorder(small_grid)
        assert svc.counters["fallbacks"] == 0

    def test_exhausted_chain_raises_last_error(self, monkeypatch, small_grid):
        def always_broken(mat, kwargs):
            raise RuntimeError(f"{kwargs['method']} down")

        monkeypatch.setattr(service_core, "_call_reorder", always_broken)
        with ReorderService() as svc:
            with pytest.raises(RuntimeError, match="serial down"):
                svc.reorder(small_grid, method="parallel")
        assert svc.counters["fallbacks"] == 2  # parallel and vectorized


class TestDiskTier:
    def test_restart_serves_from_disk(self, tmp_path, medium_grid):
        ref = reorder(medium_grid, method="serial")
        cfg = ServiceConfig(disk_dir=tmp_path)
        with ReorderService(cfg) as svc:
            svc.reorder(medium_grid)
        assert list(tmp_path.glob("*.npz"))

        # fresh service, empty memory tier, same disk dir
        with ReorderService(ServiceConfig(disk_dir=tmp_path)) as svc2:
            res = svc2.reorder(medium_grid)
            assert svc2.counters["computed"] == 0
            assert svc2.cache.stats.disk_hits == 1
        assert res.permutation.tobytes() == ref.permutation.tobytes()

    def test_torn_disk_entry_is_a_miss(self, tmp_path, small_grid):
        with ReorderService(ServiceConfig(disk_dir=tmp_path)) as svc:
            svc.reorder(small_grid)
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"not an npz")
        with ReorderService(ServiceConfig(disk_dir=tmp_path)) as svc2:
            res = svc2.reorder(small_grid)
            assert svc2.counters["computed"] == 1  # recomputed, no crash
        ref = reorder(small_grid, method="serial")
        assert res.permutation.tobytes() == ref.permutation.tobytes()


class TestInvalidation:
    def test_invalidate_forces_recompute(self, small_grid):
        with ReorderService() as svc:
            svc.reorder(small_grid)
            key = cache_key(small_grid)
            assert svc.cache.invalidate(key) == 1
            svc.reorder(small_grid)
            assert svc.counters["computed"] == 2
            assert svc.cache.stats.invalidations == 1

    def test_invalidate_by_digest_prefix_object(self, small_grid, tmp_path):
        cache = PermutationCache(8, disk_dir=tmp_path)
        with ReorderService(cache=cache) as svc:
            svc.reorder(small_grid)
            digest = cache_key(small_grid).digest
            # both tiers held the entry: memory + disk -> 2
            assert cache.invalidate(digest) == 2
            assert len(cache) == 0
            assert not list(tmp_path.glob("*.npz"))

    def test_clear(self, small_grid, medium_grid):
        with ReorderService() as svc:
            svc.reorder(small_grid)
            svc.reorder(medium_grid)
            assert len(svc.cache) == 2
            svc.cache.clear()
            assert len(svc.cache) == 0


class TestEviction:
    def test_lru_capacity_bound(self):
        mats = [random_symmetric(30 + i, 0.2, i) for i in range(5)]
        cache = PermutationCache(capacity=2)
        with ReorderService(cache=cache) as svc:
            for m in mats:
                svc.reorder(m)
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_evicted_key_recomputes_correctly(self):
        a = random_symmetric(40, 0.1, 0)
        b = random_symmetric(40, 0.1, 1)
        c = random_symmetric(40, 0.1, 2)
        cache = PermutationCache(capacity=1)
        with ReorderService(cache=cache) as svc:
            pa = svc.reorder(a).permutation.tobytes()
            svc.reorder(b)
            svc.reorder(c)
            # "a" was evicted; a fresh request must recompute, not serve b/c
            again = svc.reorder(a).permutation.tobytes()
        assert again == pa


class TestLifecycle:
    def test_closed_service_rejects(self, small_grid):
        svc = ReorderService()
        svc.close()
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(small_grid)

    def test_map_preserves_order(self):
        mats = [random_symmetric(30 + 7 * i, 0.15, i) for i in range(4)]
        refs = [reorder(m, method="serial").permutation.tobytes() for m in mats]
        with ReorderService(ServiceConfig(n_workers=3)) as svc:
            out = svc.map(mats)
        assert [r.permutation.tobytes() for r in out] == refs

    def test_request_span_recorded(self, tel, small_grid):
        with ReorderService() as svc:
            svc.reorder(small_grid)
        names = [s.name for s in tel.tracer.records()]
        assert "service.request" in names
