"""Extended property-based tests: GPU variant, multi-device, orderings,
solver and cache-model invariants on arbitrary symmetric graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.core.serial import rcm_serial
from repro.core.batch import run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu, chunk_plan
from repro.core.batches import BatchConfig
from repro.machine.costmodel import CPUCostModel, GPUCostModel
from repro.machine.multidevice import DeviceTopology
from repro.sparse.csr import coo_to_csr
from repro.sparse.validate import assert_permutation
from repro.sparse.graph import bfs_order
from repro.core.peripheral_parallel import batch_bfs

from tests.test_property import symmetric_graphs, SETTINGS

CPU = CPUCostModel()


class TestGpuProperties:
    @given(mat=symmetric_graphs(), workers=st.integers(min_value=1, max_value=32))
    @settings(**SETTINGS)
    def test_gpu_equals_serial(self, mat, workers):
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm_gpu(mat, 0, n_workers=workers)
        assert np.array_equal(res.permutation, ref)

    @given(
        mat=symmetric_graphs(),
        temp=st.integers(min_value=2, max_value=40),
        batch=st.integers(min_value=1, max_value=12),
    )
    @settings(**SETTINGS)
    def test_gpu_tiny_scratchpad(self, mat, temp, batch):
        """Scratchpads far smaller than adjacency lists force the chunking
        and empty-batch machinery constantly; the result never changes."""
        model = GPUCostModel(temp_limit=temp)
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm_gpu(mat, 0, model=model, n_workers=8, batch_size=batch)
        assert np.array_equal(res.permutation, ref)

    @given(
        vals=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=300),
        temp=st.integers(min_value=4, max_value=128),
    )
    @settings(**SETTINGS)
    def test_chunk_plan_conservation(self, vals, temp):
        arr = np.asarray(vals, dtype=np.int64)
        plan = chunk_plan(arr, temp_limit=temp, bins=16)
        assert sum(plan.chunk_sizes) == arr.size
        oversized = [c for c in plan.chunk_sizes if c > temp]
        assert len(oversized) <= plan.direct_copies


class TestMultiDeviceProperties:
    @given(
        mat=symmetric_graphs(max_n=30),
        devices=st.integers(min_value=1, max_value=4),
        per=st.integers(min_value=1, max_value=4),
        latency=st.floats(min_value=0.0, max_value=1e6),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_any_topology_equals_serial(self, mat, devices, per, latency, seed):
        topo = DeviceTopology(
            n_devices=devices, workers_per_device=per,
            cross_signal_cycles=latency,
        )
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm(
            mat, 0, model=CPU, n_workers=topo.total_workers,
            topology=topo, jitter=0.7, seed=seed,
        )
        assert np.array_equal(res.permutation, ref)


class TestBfsModeProperties:
    @given(mat=symmetric_graphs(), workers=st.integers(min_value=1, max_value=5))
    @settings(**SETTINGS)
    def test_batch_bfs_equals_fifo(self, mat, workers):
        res = batch_bfs(mat, 0, model=CPU, n_workers=workers)
        assert np.array_equal(res.permutation, bfs_order(mat, 0)[::-1])


class TestOrderingProperties:
    @given(mat=symmetric_graphs(max_n=25))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_all_heuristics_return_bijections(self, mat):
        from repro.orderings import sloan, gibbs_poole_stockmeyer, minimum_degree

        for fn in (sloan, gibbs_poole_stockmeyer, minimum_degree):
            assert_permutation(fn(mat), mat.n)

    @given(mat=symmetric_graphs(max_n=20))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_supervariable_rcm_is_bijection(self, mat):
        from repro.orderings import rcm_with_supervariables
        from repro.sparse.graph import bfs_levels

        members = np.flatnonzero(bfs_levels(mat, 0) >= 0)
        perm = rcm_with_supervariables(mat, 0)
        assert sorted(perm.tolist()) == members.tolist()


class TestCacheProperties:
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=10_000),
                        min_size=0, max_size=500),
        sets=st.integers(min_value=1, max_value=64),
        ways=st.integers(min_value=1, max_value=8),
    )
    @settings(**SETTINGS)
    def test_misses_bounded(self, stream, sets, ways):
        from repro.apps.cachemodel import CacheModel

        m = CacheModel(sets=sets, ways=ways, line_bytes=64, element_bytes=8)
        arr = np.asarray(stream, dtype=np.int64)
        stats = m.simulate(arr)
        assert m.compulsory_misses(arr) <= stats.misses <= stats.accesses

    @given(
        stream=st.lists(st.integers(min_value=0, max_value=1_000),
                        min_size=1, max_size=300),
    )
    @settings(**SETTINGS)
    def test_more_ways_never_hurt_with_same_sets(self, stream):
        """LRU with more ways (same set count) never misses more."""
        from repro.apps.cachemodel import CacheModel

        arr = np.asarray(stream, dtype=np.int64)
        small = CacheModel(sets=8, ways=1, line_bytes=8, element_bytes=8)
        big = CacheModel(sets=8, ways=4, line_bytes=8, element_bytes=8)
        assert big.simulate(arr).misses <= small.simulate(arr).misses


class TestSolverProperties:
    @given(
        n=st.integers(min_value=1, max_value=15),
        seed=st.integers(min_value=0, max_value=999),
    )
    @settings(**SETTINGS)
    def test_envelope_cholesky_solves_random_spd(self, n, seed):
        from repro.solver.envelope import (
            SkylineMatrix, envelope_cholesky, solve_cholesky,
        )

        rng = np.random.default_rng(seed)
        # random sparse SPD: A = B B^T + n I on a random pattern
        b_mat = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
        dense = b_mat @ b_mat.T + n * np.eye(n)
        rows, cols = np.nonzero(dense)
        mat = coo_to_csr(n, rows, cols, dense[rows, cols])
        sky = SkylineMatrix.from_csr(mat)
        L = envelope_cholesky(sky)
        rhs = rng.random(n)
        x = solve_cholesky(L, rhs)
        assert np.allclose(dense @ x, rhs, atol=1e-7 * n)
