"""Property-based tests (hypothesis) for content-hash cache keying.

The cache is only sound if the key captures *exactly* what determines the
permutation.  Three families of properties pin that down:

* **data-blindness** — matrices with identical patterns but different
  stored values share a key (a cached permutation serves both);
* **sensitivity** — any single-edge perturbation of the pattern, or a
  change of ``start`` / ``algorithm`` / ``method`` / ``symmetrize``,
  produces a different key (no false sharing);
* **staleness-freedom** — under arbitrary request sequences against a
  tiny-capacity LRU, a (possibly evicted and recomputed) cached answer is
  always byte-identical to a fresh serial computation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.facade import reorder
from repro.service import PermutationCache, cache_key, pattern_digest
from repro.sparse.csr import CSRMatrix, coo_to_csr

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(n, edges, data_value=None):
    """Symmetric CSR from an undirected edge set (optionally with values)."""
    rows, cols = [], []
    for a, b in sorted(edges):
        rows += [a, b]
        cols += [b, a]
    mat = coo_to_csr(
        n, np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)
    )
    if data_value is not None:
        return CSRMatrix(
            mat.indptr, mat.indices, data=np.full(mat.nnz, data_value), n=n
        )
    return mat


@st.composite
def edge_graphs(draw, max_n=20):
    """(n, frozenset of undirected edges) with at least one edge."""
    n = draw(st.integers(min_value=3, max_value=max_n))
    pair = (
        st.tuples(
            st.integers(min_value=0, max_value=n - 1),
            st.integers(min_value=0, max_value=n - 1),
        )
        .filter(lambda t: t[0] != t[1])
        .map(lambda t: (min(t), max(t)))
    )
    edges = draw(st.sets(pair, min_size=1, max_size=3 * n))
    return n, frozenset(edges)


class TestDataBlindness:
    @given(
        g=edge_graphs(),
        v1=st.floats(allow_nan=False, allow_infinity=False, width=32),
        v2=st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(**SETTINGS)
    def test_same_pattern_different_data_same_key(self, g, v1, v2):
        n, edges = g
        a = _build(n, edges, data_value=v1)
        b = _build(n, edges, data_value=v2)
        assert pattern_digest(a) == pattern_digest(b)
        assert cache_key(a).digest == cache_key(b).digest

    @given(g=edge_graphs(max_n=14))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pattern_twin_is_served_from_cache(self, g):
        n, edges = g
        pattern_only = _build(n, edges)
        with_values = _build(n, edges, data_value=3.25)
        cache = PermutationCache(capacity=4)
        cold = reorder(pattern_only, method="serial", cache=cache)
        warm = reorder(with_values, method="serial", cache=cache)
        assert warm.permutation.tobytes() == cold.permutation.tobytes()
        assert cache.stats.hits == 1  # the twin hit, not recomputed


class TestSensitivity:
    @given(g=edge_graphs(), data=st.data())
    @settings(**SETTINGS)
    def test_single_edge_toggle_changes_key(self, g, data):
        n, edges = g
        i = data.draw(st.integers(min_value=0, max_value=n - 2), label="i")
        j = data.draw(st.integers(min_value=i + 1, max_value=n - 1), label="j")
        toggled = set(edges) ^ {(i, j)}
        assume(toggled)  # removing the only edge leaves nothing to compare
        a = _build(n, edges)
        b = _build(n, toggled)
        assert pattern_digest(a) != pattern_digest(b)
        assert cache_key(a).digest != cache_key(b).digest

    @given(g=edge_graphs(), data=st.data())
    @settings(**SETTINGS)
    def test_start_change_changes_key(self, g, data):
        n, edges = g
        mat = _build(n, edges)
        s1 = data.draw(st.integers(min_value=0, max_value=n - 1), label="s1")
        s2 = data.draw(st.integers(min_value=0, max_value=n - 1), label="s2")
        assume(s1 != s2)
        assert cache_key(mat, start=s1).digest != cache_key(mat, start=s2).digest
        assert (
            cache_key(mat, start=s1).digest
            != cache_key(mat, start="min-valence").digest
        )

    @given(g=edge_graphs())
    @settings(**SETTINGS)
    def test_option_changes_change_key(self, g):
        n, edges = g
        mat = _build(n, edges)
        base = cache_key(mat, method="serial")
        assert cache_key(mat, method="vectorized").digest != base.digest
        assert cache_key(mat, algorithm="sloan").digest != base.digest
        assert (
            cache_key(mat, method="serial", symmetrize=True).digest
            != base.digest
        )

    @given(g=edge_graphs())
    @settings(**SETTINGS)
    def test_auto_shares_key_with_its_resolution(self, g):
        n, edges = g
        mat = _build(n, edges)
        # below AUTO_VECTORIZED_MIN "auto" resolves to "serial"
        assert (
            cache_key(mat, method="auto").digest
            == cache_key(mat, method="serial").digest
        )


# fixed pool for the staleness property: distinct patterns, precomputed golden
_POOL = [
    _build(
        n,
        {
            (a % n, b % n)
            for a, b in zip(range(0, 3 * n, 2), range(1, 3 * n, 3))
            if a % n != b % n
        }
        | {(i, (i + 1) % n) for i in range(n - 1)},
    )
    for n in (7, 9, 11, 13, 16, 19)
]
_GOLDEN = [
    reorder(m, method="serial").permutation.tobytes() for m in _POOL
]


class TestStalenessFreedom:
    @given(
        seq=st.lists(
            st.integers(min_value=0, max_value=len(_POOL) - 1),
            min_size=1,
            max_size=15,
        )
    )
    @settings(**SETTINGS)
    def test_eviction_never_returns_stale(self, seq):
        cache = PermutationCache(capacity=2)
        for idx in seq:
            res = reorder(_POOL[idx], method="serial", cache=cache)
            assert res.permutation.tobytes() == _GOLDEN[idx]
        assert len(cache) <= 2

    @given(
        seq=st.lists(
            st.integers(min_value=0, max_value=len(_POOL) - 1),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_eviction_never_stale_with_disk_tier(self, seq, tmp_path_factory):
        disk = tmp_path_factory.mktemp("tier")
        cache = PermutationCache(capacity=1, disk_dir=disk)
        for idx in seq:
            res = reorder(_POOL[idx], method="serial", cache=cache)
            assert res.permutation.tobytes() == _GOLDEN[idx]
