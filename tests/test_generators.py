"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse.validate import is_structurally_symmetric, has_duplicates
from repro.sparse.graph import connected_components, front_statistics
from repro.matrices import generators as g
from repro.matrices.kkt import kkt_system, nlpkkt_like
from repro.matrices.suite import TESTSET, get_matrix, matrix_names


def check_clean(mat):
    """All generators promise: symmetric pattern, sorted rows, no self loops,
    no duplicates."""
    assert is_structurally_symmetric(mat)
    assert mat.has_sorted_indices()
    assert not has_duplicates(mat)
    row_of = np.repeat(np.arange(mat.n), np.diff(mat.indptr))
    assert not np.any(row_of == mat.indices), "self loop found"


class TestGrid2d:
    def test_clean(self):
        check_clean(g.grid2d(7, 5))

    def test_node_count(self):
        assert g.grid2d(7, 5).n == 35

    def test_5pt_edge_count(self):
        m = g.grid2d(4, 3)
        # horizontal: 3*3, vertical: 4*2 -> 17 edges, 34 stored entries
        assert m.nnz == 2 * (3 * 3 + 4 * 2)

    def test_9pt_has_diagonals(self):
        m5 = g.grid2d(6, 6, stencil=5)
        m9 = g.grid2d(6, 6, stencil=9)
        assert m9.nnz > m5.nnz
        assert int(m9.degrees().max()) == 8

    def test_interior_degree_is_four(self):
        m = g.grid2d(5, 5)
        assert int(m.degrees().max()) == 4

    def test_invalid_stencil(self):
        with pytest.raises(ValueError):
            g.grid2d(3, 3, stencil=7)


class TestGrid3d:
    def test_clean(self):
        check_clean(g.grid3d(4, 4, 4))

    def test_7pt_interior_degree(self):
        m = g.grid3d(5, 5, 5, stencil=7)
        assert int(m.degrees().max()) == 6

    def test_27pt_interior_degree(self):
        m = g.grid3d(5, 5, 5, stencil=27)
        assert int(m.degrees().max()) == 26

    def test_connected(self):
        count, _ = connected_components(g.grid3d(4, 4, 4))
        assert count == 1


class TestBanded:
    def test_clean(self):
        check_clean(g.banded(30, 3))

    def test_bandwidth_matches(self):
        from repro.sparse.bandwidth import bandwidth

        assert bandwidth(g.banded(30, 4)) == 4

    def test_density_thins(self):
        full = g.banded(100, 5, density=1.0)
        thin = g.banded(100, 5, density=0.4, seed=1)
        assert thin.nnz < full.nnz

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            g.banded(10, 0)


class TestGeometric:
    def test_clean(self):
        check_clean(g.random_geometric(200, k=4, seed=1))

    def test_deterministic(self):
        a = g.random_geometric(150, k=4, seed=9)
        b = g.random_geometric(150, k=4, seed=9)
        assert np.array_equal(a.indices, b.indices)

    def test_min_degree_k(self):
        m = g.random_geometric(200, k=4, seed=2)
        assert int(m.degrees().min()) >= 4  # symmetrized kNN

    def test_aspect_narrows_front(self):
        wide = g.random_geometric(600, k=5, aspect=1.0, seed=3)
        skinny = g.random_geometric(600, k=5, aspect=30.0, seed=3)
        fw = front_statistics(wide, 0)
        fs = front_statistics(skinny, 0)
        assert fs.depth > fw.depth


class TestDelaunay:
    def test_clean(self):
        check_clean(g.delaunay_mesh(250, seed=4))

    def test_connected_and_planar_degree(self):
        m = g.delaunay_mesh(250, seed=4)
        count, _ = connected_components(m)
        assert count == 1
        # planar triangulation: average degree < 6
        assert m.nnz / m.n < 6.0


class TestRmat:
    def test_clean(self):
        check_clean(g.rmat(8, edge_factor=6, seed=5))

    def test_skewed_valences(self):
        m = g.rmat(10, edge_factor=8, seed=6)
        degs = m.degrees()
        assert degs.max() > 8 * np.median(degs[degs > 0])


class TestPowerlaw:
    def test_clean(self):
        check_clean(g.powerlaw_cluster(300, m=4, seed=7))

    def test_hub_emerges(self):
        m = g.powerlaw_cluster(500, m=5, seed=8)
        assert int(m.degrees().max()) > 30

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            g.powerlaw_cluster(5, m=5)


class TestHubMatrix:
    def test_clean(self):
        check_clean(g.hub_matrix(300, n_hubs=2, seed=9))

    def test_hub_degree_dominates(self):
        m = g.hub_matrix(400, n_hubs=2, hub_degree_frac=0.8, seed=10)
        assert int(m.degrees().max()) >= 0.7 * 400


class TestBlockDense:
    def test_clean(self):
        check_clean(g.block_dense(4, 10, seed=11))

    def test_blocks_are_dense(self):
        m = g.block_dense(3, 8, seed=12)
        # first block fully connected: degree >= block_size - 1
        assert int(m.degrees()[:8].min()) >= 7

    def test_chain_connected(self):
        count, _ = connected_components(g.block_dense(5, 6, seed=13))
        assert count == 1


class TestRoadAndBundle:
    def test_road_clean_and_deep(self):
        m = g.road_network(800, seed=14)
        check_clean(m)
        fs = front_statistics(m, 0)
        assert fs.depth > 20  # long skinny domain

    def test_bundle_clean(self):
        check_clean(g.bundle_adjustment(50, 400, seed=15))

    def test_bundle_bipartite_plus_band(self):
        m = g.bundle_adjustment(50, 400, seed=16)
        # points (ids >= 50) connect only to cameras
        for p in range(50, 60):
            assert all(m.row(p) < 50)


class TestCaterpillar:
    def test_structure(self):
        m = g.caterpillar(10, 3)
        assert m.n == 40
        # legs have degree 1
        assert int(m.degrees()[10:].max()) == 1

    def test_clean(self):
        check_clean(g.caterpillar(6, 2))


class TestKKT:
    def test_clean(self):
        check_clean(nlpkkt_like(5, seed=17))

    def test_block_structure(self):
        h = g.grid2d(6, 6)
        m = kkt_system(h, 10, seed=18)
        assert m.n == 36 + 10
        # zero block: constraint rows never couple to each other
        for r in range(36, 46):
            assert all(m.row(r) < 36)

    def test_h_block_preserved(self):
        h = g.grid2d(6, 6)
        m = kkt_system(h, 10, seed=19)
        # every H edge survives in the KKT pattern
        for i in range(36):
            hi = set(int(x) for x in h.row(i))
            ki = set(int(x) for x in m.row(i) if x < 36)
            assert hi <= ki


class TestSuite:
    def test_all_names_unique(self):
        names = matrix_names()
        assert len(names) == len(set(names)) == 26

    def test_get_matrix_caches(self):
        a = get_matrix("ecology1")
        b = get_matrix("ecology1")
        assert a is b

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_matrix("not-a-matrix")

    @pytest.mark.parametrize("entry", TESTSET, ids=lambda e: e.name)
    def test_every_entry_clean(self, entry):
        check_clean(get_matrix(entry.name))

    def test_ordering_is_nnz_ascending_in_paper(self):
        paper_nnz = [e.paper.nnz for e in TESTSET]
        assert paper_nnz == sorted(paper_nnz)


class TestSuiteSparseBridge:
    def test_every_table1_matrix_has_a_group(self):
        from repro.matrices.suite import matrix_names
        from repro.matrices.suitesparse import SUITESPARSE_GROUPS

        assert set(SUITESPARSE_GROUPS) == set(matrix_names())

    def test_url_shape(self):
        from repro.matrices.suitesparse import suitesparse_url

        url = suitesparse_url("gupta3")
        assert url.endswith("/Gupta/gupta3.tar.gz")
        assert url.startswith("https://")

    def test_unknown_name(self):
        from repro.matrices.suitesparse import suitesparse_url

        with pytest.raises(KeyError):
            suitesparse_url("not-a-matrix")

    def test_load_mtx(self, tmp_path):
        from repro.matrices.suitesparse import load_suitesparse
        from repro.sparse.io import write_matrix_market

        mat = g.grid2d(5, 5)
        p = tmp_path / "m.mtx"
        write_matrix_market(mat, p)
        loaded = load_suitesparse(p)
        assert loaded.nnz == mat.nnz

    def test_load_symmetrizes(self, tmp_path):
        from repro.matrices.suitesparse import load_suitesparse
        from repro.sparse.io import write_matrix_market
        from repro.sparse.csr import coo_to_csr
        from repro.sparse.validate import is_structurally_symmetric

        asym = coo_to_csr(3, [0, 1], [1, 2])
        p = tmp_path / "a.mtx"
        write_matrix_market(asym, p)
        loaded = load_suitesparse(p)
        assert is_structurally_symmetric(loaded)
