"""Tests for the envelope Cholesky and CG solver substrates."""

import numpy as np
import pytest

from repro.solver.envelope import (
    SkylineMatrix,
    envelope_cholesky,
    solve_cholesky,
    cholesky_flops,
)
from repro.solver.cg import conjugate_gradient
from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.bandwidth import profile
from repro.matrices import generators as g
from repro.facade import reorder


def spd_laplacian(pattern: CSRMatrix, shift: float = 1.0) -> CSRMatrix:
    """SPD system: (D + shift·I) - A on a pattern (diagonally dominant)."""
    n = pattern.n
    deg = pattern.degrees().astype(np.float64)
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(pattern.indptr))
    rows = np.concatenate([row_of, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([pattern.indices, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([-np.ones(pattern.nnz), deg + shift])
    return coo_to_csr(n, rows, cols, vals)


@pytest.fixture
def spd_system():
    pattern = g.grid2d(8, 8)
    mat = spd_laplacian(pattern)
    rng = np.random.default_rng(0)
    b = rng.random(mat.n)
    return mat, b


class TestSkylineStorage:
    def test_storage_equals_profile(self, spd_system):
        mat, _ = spd_system
        sky = SkylineMatrix.from_csr(mat)
        assert sky.storage == profile(mat)

    def test_values_preserved(self, spd_system):
        mat, _ = spd_system
        sky = SkylineMatrix.from_csr(mat)
        dense = mat.to_dense()
        for i in range(mat.n):
            for j in range(int(sky.first[i]), i + 1):
                assert sky.get(i, j) == pytest.approx(dense[i, j])

    def test_zeros_inside_envelope_stored(self):
        # entries (0,0),(2,0),(2,2): envelope of row 2 includes column 1
        mat = coo_to_csr(3, [0, 2, 0, 2], [0, 0, 2, 2], [4.0, 1.0, 1.0, 4.0])
        sky = SkylineMatrix.from_csr(mat)
        assert sky.get(2, 1) == 0.0
        assert sky.storage == 1 + 1 + 3

    def test_requires_values(self, small_grid):
        with pytest.raises(ValueError):
            SkylineMatrix.from_csr(small_grid)

    def test_upper_access_rejected(self, spd_system):
        sky = SkylineMatrix.from_csr(spd_system[0])
        with pytest.raises(IndexError):
            sky.get(0, 1)


class TestEnvelopeCholesky:
    def test_factor_reconstructs_matrix(self, spd_system):
        mat, _ = spd_system
        sky = SkylineMatrix.from_csr(mat)
        L = envelope_cholesky(sky)
        ld = L.to_dense_lower()
        assert np.allclose(ld @ ld.T, mat.to_dense(), atol=1e-9)

    def test_matches_numpy_cholesky(self, spd_system):
        mat, _ = spd_system
        L = envelope_cholesky(SkylineMatrix.from_csr(mat))
        ref = np.linalg.cholesky(mat.to_dense())
        assert np.allclose(L.to_dense_lower(), ref, atol=1e-9)

    def test_solve_correct(self, spd_system):
        mat, b = spd_system
        L = envelope_cholesky(SkylineMatrix.from_csr(mat))
        x = solve_cholesky(L, b)
        assert np.allclose(mat.to_dense() @ x, b, atol=1e-8)

    def test_non_spd_rejected(self):
        mat = coo_to_csr(2, [0, 1, 0, 1], [0, 0, 1, 1], [1.0, 2.0, 2.0, 1.0])
        with pytest.raises(np.linalg.LinAlgError):
            envelope_cholesky(SkylineMatrix.from_csr(mat))

    def test_inplace(self, spd_system):
        mat, _ = spd_system
        sky = SkylineMatrix.from_csr(mat)
        out = envelope_cholesky(sky, inplace=True)
        assert out is sky

    def test_diagonal_matrix(self):
        mat = coo_to_csr(3, [0, 1, 2], [0, 1, 2], [4.0, 9.0, 16.0])
        L = envelope_cholesky(SkylineMatrix.from_csr(mat))
        assert np.allclose(np.diag(L.to_dense_lower()), [2.0, 3.0, 4.0])

    def test_bad_rhs_shape(self, spd_system):
        mat, _ = spd_system
        L = envelope_cholesky(SkylineMatrix.from_csr(mat))
        with pytest.raises(ValueError):
            solve_cholesky(L, np.ones(3))


class TestOrderingEffect:
    def test_rcm_shrinks_factor_cost(self):
        """The paper's fill-in motivation as an equation: RCM reduces the
        envelope, hence storage and flops of the factorization."""
        pattern = g.delaunay_mesh(400, seed=3)
        rng = np.random.default_rng(1)
        scrambled = pattern.permute_symmetric(rng.permutation(pattern.n))
        res = reorder(scrambled, method="serial", start="peripheral")
        reordered = scrambled.permute_symmetric(res.permutation)

        sky_bad = SkylineMatrix.from_csr(spd_laplacian(scrambled))
        sky_good = SkylineMatrix.from_csr(spd_laplacian(reordered))
        assert sky_good.storage < sky_bad.storage / 2
        assert cholesky_flops(sky_good) < cholesky_flops(sky_bad) / 4

    def test_solution_invariant_under_reordering(self):
        pattern = g.grid2d(7, 7)
        mat = spd_laplacian(pattern)
        rng = np.random.default_rng(2)
        b = rng.random(mat.n)
        x_direct = solve_cholesky(
            envelope_cholesky(SkylineMatrix.from_csr(mat)), b
        )
        res = reorder(pattern, method="serial")
        perm = res.permutation
        permuted = mat.permute_symmetric(perm)
        x_perm = solve_cholesky(
            envelope_cholesky(SkylineMatrix.from_csr(permuted)), b[perm]
        )
        assert np.allclose(x_perm, x_direct[perm], atol=1e-8)


class TestCG:
    def test_solves_spd_system(self, spd_system):
        mat, b = spd_system
        res = conjugate_gradient(mat, b, tol=1e-10)
        assert res.converged
        assert np.allclose(mat.to_dense() @ res.x, b, atol=1e-6)

    def test_residuals_decrease_overall(self, spd_system):
        mat, b = spd_system
        res = conjugate_gradient(mat, b)
        assert res.residuals[-1] < res.residuals[0]

    def test_iteration_count_permutation_invariant(self):
        """Orderings change locality, never convergence."""
        pattern = g.grid2d(10, 10)
        mat = spd_laplacian(pattern)
        rng = np.random.default_rng(3)
        b = rng.random(mat.n)
        base = conjugate_gradient(mat, b, tol=1e-9)
        perm = rng.permutation(mat.n)
        permuted = mat.permute_symmetric(perm)
        other = conjugate_gradient(permuted, b[perm], tol=1e-9)
        assert abs(base.iterations - other.iterations) <= 2

    def test_max_iter_respected(self, spd_system):
        mat, b = spd_system
        res = conjugate_gradient(mat, b, tol=1e-30, max_iter=5)
        assert res.iterations == 5
        assert not res.converged

    def test_spmv_accounting(self, spd_system):
        mat, b = spd_system
        res = conjugate_gradient(mat, b)
        assert res.spmv_count == res.iterations + 1

    def test_zero_rhs(self, spd_system):
        mat, _ = spd_system
        res = conjugate_gradient(mat, np.zeros(mat.n))
        assert res.converged
        assert np.allclose(res.x, 0.0)

    def test_pattern_matrix_rejected(self, small_grid):
        with pytest.raises(ValueError):
            conjugate_gradient(small_grid, np.ones(small_grid.n))

    def test_warm_start(self, spd_system):
        mat, b = spd_system
        cold = conjugate_gradient(mat, b, tol=1e-10)
        warm = conjugate_gradient(mat, b, x0=cold.x, tol=1e-10)
        assert warm.iterations <= 1


class TestSpmvKernel:
    def test_matches_scipy_on_random_systems(self):
        from repro.solver.cg import _spmv

        rng = np.random.default_rng(7)
        for _ in range(5):
            n = int(rng.integers(2, 60))
            pattern = g.grid2d(max(2, n // 4 + 1), 4)
            mat = spd_laplacian(pattern)
            x = rng.random(mat.n)
            ours = _spmv(mat, x)
            ref = mat.to_scipy() @ x
            assert np.allclose(ours, ref)

    def test_empty_rows(self):
        from repro.solver.cg import _spmv

        mat = coo_to_csr(3, [0], [0], [2.0])
        y = _spmv(mat, np.array([1.0, 5.0, 7.0]))
        assert np.allclose(y, [2.0, 0.0, 0.0])
