"""Tests for pseudo-peripheral start-node finding."""

import numpy as np
import pytest

from repro.core.peripheral import (
    find_pseudo_peripheral,
    peripheral_cycles_serial,
)
from repro.sparse.graph import eccentricity_lower_bound
from repro.machine.costmodel import SERIAL_CPU
from repro.matrices import generators as g


class TestFinding:
    def test_path_finds_an_end(self, path5):
        res = find_pseudo_peripheral(path5, 2)
        assert res.node in (0, 4)
        assert max(res.depths) == 4

    def test_depth_never_decreases_across_rounds(self, small_mesh):
        res = find_pseudo_peripheral(small_mesh, 0)
        assert all(b >= a for a, b in zip(res.depths, res.depths[1:]))

    def test_result_at_least_as_eccentric_as_seed(self, medium_grid):
        seed = medium_grid.n // 2  # centre of the grid
        res = find_pseudo_peripheral(medium_grid, seed)
        assert eccentricity_lower_bound(medium_grid, res.node) >= (
            eccentricity_lower_bound(medium_grid, seed)
        )

    def test_grid_reaches_near_diameter(self):
        mat = g.grid2d(12, 12)
        res = find_pseudo_peripheral(mat, 77)
        # grid diameter is 22; the naive search should land close
        assert max(res.depths) >= 18

    def test_deterministic(self, small_mesh):
        a = find_pseudo_peripheral(small_mesh, 5)
        b = find_pseudo_peripheral(small_mesh, 5)
        assert a.node == b.node
        assert a.rounds == b.rounds

    def test_rounds_bounded(self, small_mesh):
        res = find_pseudo_peripheral(small_mesh, 0, max_rounds=3)
        assert res.rounds <= 3

    def test_seed_out_of_range(self, small_mesh):
        with pytest.raises(ValueError):
            find_pseudo_peripheral(small_mesh, -2)

    def test_component_scoped(self, two_triangles):
        res = find_pseudo_peripheral(two_triangles, 0)
        assert res.node in (0, 1, 2)
        assert res.reached == 3


class TestCost:
    def test_scales_with_rounds(self, medium_grid):
        res = find_pseudo_peripheral(medium_grid, 0)
        per_round = peripheral_cycles_serial(res, SERIAL_CPU) / res.rounds
        assert per_round > medium_grid.n * SERIAL_CPU.cycles_per_node

    def test_quality_improves_rcm(self):
        """Peripheral starts should not be worse than a central start."""
        from repro.core.serial import rcm_serial
        from repro.sparse.bandwidth import bandwidth_after

        mat = g.grid2d(14, 14)
        centre = mat.n // 2 + 7
        peri = find_pseudo_peripheral(mat, centre).node
        bw_center = bandwidth_after(mat, rcm_serial(mat, centre))
        bw_peri = bandwidth_after(mat, rcm_serial(mat, peri))
        assert bw_peri <= bw_center
