"""Tests for the linear-algebra (semiring SpMV) RCM formulation."""

import numpy as np
import pytest

from repro.core.algebraic import (
    rcm_algebraic,
    algebraic_cycles,
    DistributedModel,
)
from repro.core.serial import rcm_serial
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian
from tests.conftest import random_symmetric


class TestEquivalence:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: g.grid2d(14, 14),
            lambda: g.delaunay_mesh(400, seed=1),
            lambda: g.hub_matrix(300, n_hubs=2, seed=2),
            lambda: mycielskian(7),
            lambda: g.caterpillar(40, 2),
        ],
        ids=["grid", "mesh", "hub", "mycielski", "caterpillar"],
    )
    def test_matches_serial(self, maker):
        mat = maker()
        assert np.array_equal(
            rcm_algebraic(mat, 0).permutation, rcm_serial(mat, 0)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        mat = random_symmetric(90, 0.06, seed)
        assert np.array_equal(
            rcm_algebraic(mat, 0).permutation, rcm_serial(mat, 0)
        )

    @pytest.mark.parametrize("start", [0, 17, 80])
    def test_start_nodes(self, start, medium_grid):
        assert np.array_equal(
            rcm_algebraic(medium_grid, start).permutation,
            rcm_serial(medium_grid, start),
        )

    def test_component_only(self, two_triangles):
        assert np.array_equal(
            rcm_algebraic(two_triangles, 4).permutation,
            rcm_serial(two_triangles, 4),
        )

    def test_start_out_of_range(self, small_grid):
        with pytest.raises(ValueError):
            rcm_algebraic(small_grid, -3)


class TestLevelOps:
    def test_spmv_accounting(self, medium_grid):
        res = rcm_algebraic(medium_grid, 0)
        assert sum(o.frontier for o in res.levels) == medium_grid.n
        assert sum(o.children for o in res.levels) == medium_grid.n - 1
        assert sum(o.edges for o in res.levels) == medium_grid.nnz

    def test_depth_matches_bfs(self, path5):
        res = rcm_algebraic(path5, 0)
        # four producing iterations plus the final empty-output sweep
        assert res.depth == 5
        assert res.levels[-1].children == 0


class TestDistributedCost:
    def test_positive(self, medium_grid):
        res = rcm_algebraic(medium_grid, 0)
        assert algebraic_cycles(res, 16) > 0

    def test_latency_floor(self, medium_grid):
        """Adding processes beyond the flop crossover cannot help: the
        per-level collective latency becomes the floor — the reason [14]
        needs thousands of cores on the paper's huge matrices."""
        res = rcm_algebraic(medium_grid, 0)
        model = DistributedModel()
        floor = res.depth * model.collectives_per_level * model.latency_cycles
        assert algebraic_cycles(res, 100_000) >= floor

    def test_deep_graph_penalized(self):
        """Per-level collectives price BFS depth: a deep graph costs more
        than a shallow one of equal size at high process counts."""
        deep = rcm_algebraic(g.caterpillar(300, 1), 0)
        shallow = rcm_algebraic(g.rmat(9, edge_factor=4, seed=3), 0)
        assert deep.depth > 5 * shallow.depth
        assert algebraic_cycles(deep, 1024) > algebraic_cycles(shallow, 1024)

    def test_invalid_process_count(self, small_grid):
        res = rcm_algebraic(small_grid, 0)
        with pytest.raises(ValueError):
            algebraic_cycles(res, 0)

    def test_paper_comparison_shape(self):
        """Sec. VI-B: on nlpkkt240, [14] at 54 cores is ~3.6x slower than
        CPU-BATCH at 24 threads (3.2 s vs 0.9 s)."""
        from repro.matrices import get_matrix
        from repro.bench.runner import pick_start
        from repro.core.batch import run_batch_rcm
        from repro.machine.costmodel import CPUCostModel

        mat = get_matrix("nlpkkt240")
        start, total = pick_start(mat)
        res = rcm_algebraic(mat, start)
        batch = run_batch_rcm(
            mat, start, model=CPUCostModel(), n_workers=24, total=total
        )
        alg_ms = algebraic_cycles(res, 54) / (DistributedModel().clock_ghz * 1e6)
        ratio = alg_ms / batch.milliseconds
        assert 1.5 < ratio < 10.0, f"expected a few-fold gap, got {ratio:.1f}"
