"""The unified error surface: hierarchy, stdlib compatibility and the
historical import paths that must keep resolving."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError), name
            assert issubclass(exc, Exception), name

    def test_validation_error_is_value_error(self):
        assert issubclass(errors.ValidationError, ValueError)

    def test_backend_unavailable_is_value_error(self):
        assert issubclass(errors.BackendUnavailableError, ValueError)

    def test_service_errors_are_runtime_errors(self):
        assert issubclass(errors.ServiceError, RuntimeError)
        assert issubclass(errors.ServiceOverloadedError, errors.ServiceError)
        assert issubclass(errors.ServiceTimeoutError, errors.ServiceError)

    def test_removed_api_error_is_runtime_error(self):
        assert issubclass(errors.RemovedAPIError, RuntimeError)


class TestRaisedAtBoundaries:
    def test_facade_rejects_bad_algorithm_with_validation_error(
        self, small_grid
    ):
        with pytest.raises(errors.ValidationError):
            repro.reorder(small_grid, algorithm="voodoo")
        # pre-1.2 call sites catch ValueError — still true
        with pytest.raises(ValueError):
            repro.reorder(small_grid, algorithm="voodoo")

    def test_unknown_method_is_backend_unavailable(self, small_grid):
        from repro import backends

        with pytest.raises(errors.BackendUnavailableError, match="quantum"):
            backends.get("quantum")

    def test_one_except_catches_the_whole_surface(self, small_grid):
        caught = []
        for bad_call in (
            lambda: repro.reorder(small_grid, algorithm="nope"),
            lambda: repro.reorder(small_grid, method="nope"),
        ):
            try:
                bad_call()
            except errors.ReproError as exc:
                caught.append(type(exc).__name__)
        assert len(caught) == 2

    def test_removed_entry_points_raise(self, small_grid):
        from repro.core.api import reverse_cuthill_mckee
        from repro.orderings.api import order

        with pytest.raises(errors.RemovedAPIError):
            reverse_cuthill_mckee(small_grid)
        with pytest.raises(errors.RemovedAPIError):
            order(small_grid, "rcm")


class TestHistoricalImportPaths:
    def test_service_package_reexports(self):
        from repro.service import (
            ServiceError,
            ServiceOverloadedError,
            ServiceTimeoutError,
        )

        assert ServiceError is errors.ServiceError
        assert ServiceOverloadedError is errors.ServiceOverloadedError
        assert ServiceTimeoutError is errors.ServiceTimeoutError

    def test_service_core_reexports(self):
        from repro.service import core

        assert core.ServiceError is errors.ServiceError
        assert core.ServiceOverloadedError is errors.ServiceOverloadedError
        assert core.ServiceTimeoutError is errors.ServiceTimeoutError

    def test_errors_module_on_package_root(self):
        assert repro.errors is errors
