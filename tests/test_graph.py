"""Unit tests for the graph-view helpers (BFS, components, fronts)."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import (
    bfs_levels,
    bfs_order,
    level_structure,
    connected_components,
    component_of,
    front_statistics,
    eccentricity_lower_bound,
)
from repro.matrices import generators as g


class TestBfsLevels:
    def test_path_levels(self, path5):
        assert list(bfs_levels(path5, 0)) == [0, 1, 2, 3, 4]
        assert list(bfs_levels(path5, 2)) == [2, 1, 0, 1, 2]

    def test_star_levels(self, star):
        levels = bfs_levels(star, 0)
        assert levels[0] == 0
        assert all(levels[1:] == 1)

    def test_unreachable_marked(self, two_triangles):
        levels = bfs_levels(two_triangles, 0)
        assert all(levels[3:] == -1)
        assert all(levels[:3] >= 0)

    def test_matches_networkx(self, small_mesh):
        nx = pytest.importorskip("networkx")
        gx = nx.Graph()
        gx.add_nodes_from(range(small_mesh.n))
        for i in range(small_mesh.n):
            for j in small_mesh.row(i):
                gx.add_edge(i, int(j))
        dist = nx.single_source_shortest_path_length(gx, 0)
        ours = bfs_levels(small_mesh, 0)
        for node, d in dist.items():
            assert ours[node] == d

    def test_start_out_of_range(self, path5):
        with pytest.raises(ValueError):
            bfs_levels(path5, 99)


class TestBfsOrder:
    def test_starts_at_start(self, small_grid):
        order = bfs_order(small_grid, 5)
        assert order[0] == 5

    def test_visits_component_exactly_once(self, two_triangles):
        order = bfs_order(two_triangles, 0)
        assert sorted(order) == [0, 1, 2]

    def test_levels_nondecreasing_along_order(self, small_mesh):
        levels = bfs_levels(small_mesh, 0)
        order = bfs_order(small_mesh, 0)
        seq = levels[order]
        assert np.all(np.diff(seq) >= 0)


class TestLevelStructure:
    def test_partition(self, small_grid):
        ls = level_structure(small_grid, 0)
        allnodes = np.concatenate(ls)
        assert sorted(allnodes) == list(range(small_grid.n))

    def test_level_sets_match_levels(self, path5):
        ls = level_structure(path5, 0)
        assert [list(l) for l in ls] == [[0], [1], [2], [3], [4]]


class TestComponents:
    def test_connected(self, small_grid):
        count, labels = connected_components(small_grid)
        assert count == 1
        assert all(labels == 0)

    def test_two_components(self, two_triangles):
        count, labels = connected_components(two_triangles)
        assert count == 2
        assert list(labels) == [0, 0, 0, 1, 1, 1]

    def test_isolated_nodes(self):
        m = CSRMatrix.from_edges(4, [(0, 1)])
        count, labels = connected_components(m)
        assert count == 3

    def test_component_of(self, two_triangles):
        assert list(component_of(two_triangles, 4)) == [3, 4, 5]


class TestFrontStatistics:
    def test_path_front(self, path5):
        fs = front_statistics(path5, 0)
        assert fs.depth == 4
        assert fs.max_front == 1
        assert fs.avg_front == pytest.approx(1.0)
        assert fs.reached == 5

    def test_star_front(self, star):
        fs = front_statistics(star, 0)
        assert fs.depth == 1
        assert fs.max_front == 5
        assert fs.reached == 6

    def test_reached_counts_component_only(self, two_triangles):
        fs = front_statistics(two_triangles, 0)
        assert fs.reached == 3

    def test_grid_front_scales_with_side(self):
        fs = front_statistics(g.grid2d(16, 16), 0)
        # corner BFS front is the anti-diagonal, max width = side length
        assert fs.max_front == 16


class TestEccentricity:
    def test_path_end_is_eccentric(self, path5):
        assert eccentricity_lower_bound(path5, 0) == 4
        assert eccentricity_lower_bound(path5, 2) == 2
