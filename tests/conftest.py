"""Shared fixtures: small deterministic graphs and test-set samples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian


@pytest.fixture
def path5() -> CSRMatrix:
    """Path graph 0-1-2-3-4."""
    return CSRMatrix.from_edges(5, [(i, i + 1) for i in range(4)])


@pytest.fixture
def star() -> CSRMatrix:
    """Star with centre 0 and leaves 1..5."""
    return CSRMatrix.from_edges(6, [(0, i) for i in range(1, 6)])


@pytest.fixture
def two_triangles() -> CSRMatrix:
    """Two disconnected triangles {0,1,2} and {3,4,5}."""
    return CSRMatrix.from_edges(
        6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    )


@pytest.fixture
def small_grid() -> CSRMatrix:
    return g.grid2d(8, 8)


@pytest.fixture
def medium_grid() -> CSRMatrix:
    return g.grid2d(20, 20)


@pytest.fixture
def small_mesh() -> CSRMatrix:
    return g.delaunay_mesh(300, seed=7)


@pytest.fixture
def small_mycielski() -> CSRMatrix:
    return mycielskian(7)


@pytest.fixture
def hub() -> CSRMatrix:
    return g.hub_matrix(400, n_hubs=2, hub_degree_frac=0.7, seed=3)


def random_symmetric(n: int, density: float, seed: int) -> CSRMatrix:
    """Random symmetric pattern used by fuzz tests."""
    rng = np.random.default_rng(seed)
    m = max(int(n * n * density / 2), n)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return coo_to_csr(
        n, np.concatenate([rows, cols]), np.concatenate([cols, rows])
    )


@pytest.fixture
def random_graphs():
    """A family of random symmetric graphs across sizes and densities."""
    return [
        random_symmetric(12, 0.3, 0),
        random_symmetric(40, 0.1, 1),
        random_symmetric(100, 0.05, 2),
        random_symmetric(250, 0.02, 3),
    ]
