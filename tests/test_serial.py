"""Unit tests for the serial (ground-truth) RCM implementation."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.graph import bfs_levels
from repro.sparse.bandwidth import bandwidth_after
from repro.core.serial import cuthill_mckee, rcm_serial, serial_cycles
from repro.matrices import generators as g


class TestSmallKnownCases:
    def test_path_from_end(self, path5):
        # BFS from 0 along a path visits in order
        assert list(cuthill_mckee(path5, 0)) == [0, 1, 2, 3, 4]
        assert list(rcm_serial(path5, 0)) == [4, 3, 2, 1, 0]

    def test_star_children_sorted_by_valence(self, star):
        # all leaves have valence 1: stable sort keeps adjacency order
        assert list(cuthill_mckee(star, 0)) == [0, 1, 2, 3, 4, 5]

    def test_valence_tiebreak(self):
        # 0 -- {1,2,3}; 3 also connects to 4 (valence: 1:1, 2:1, 3:2)
        m = CSRMatrix.from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
        cm = cuthill_mckee(m, 0)
        assert list(cm) == [0, 1, 2, 3, 4]

    def test_higher_valence_child_visited_last(self):
        # 0 -- {1,2}; 1 has extra neighbours -> valence(1) > valence(2)
        m = CSRMatrix.from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (1, 5)])
        cm = cuthill_mckee(m, 0)
        assert list(cm[:3]) == [0, 2, 1]

    def test_claim_goes_to_first_parent(self):
        # node 3 adjacent to both 1 and 2; 1 precedes 2 in the order,
        # so 3 is a child of 1
        m = CSRMatrix.from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)])
        cm = cuthill_mckee(m, 0)
        # children of 0: valence(1)=2 < valence(2)=3 -> [1, 2]; 1 claims 3
        assert list(cm) == [0, 1, 2, 3, 4]

    def test_single_node(self):
        m = coo_to_csr(1, [], [])
        assert list(cuthill_mckee(m, 0)) == [0]

    def test_isolated_start(self):
        m = CSRMatrix.from_edges(3, [(1, 2)])
        assert list(cuthill_mckee(m, 0)) == [0]


class TestStructuralProperties:
    def test_is_permutation_of_component(self, small_mesh):
        cm = cuthill_mckee(small_mesh, 0)
        assert sorted(cm) == list(range(small_mesh.n))

    def test_respects_bfs_levels(self, small_mesh):
        """CM order never decreases in BFS level (it is a BFS)."""
        cm = cuthill_mckee(small_mesh, 0)
        levels = bfs_levels(small_mesh, 0)[cm]
        assert np.all(np.diff(levels) >= 0)

    def test_only_component_visited(self, two_triangles):
        cm = cuthill_mckee(two_triangles, 4)
        assert sorted(cm) == [3, 4, 5]
        assert cm[0] == 4

    def test_rcm_is_reverse_of_cm(self, small_grid):
        cm = cuthill_mckee(small_grid, 0)
        assert np.array_equal(rcm_serial(small_grid, 0), cm[::-1])

    def test_start_out_of_range(self, small_grid):
        with pytest.raises(ValueError):
            cuthill_mckee(small_grid, -1)

    def test_deterministic(self, small_mesh):
        a = cuthill_mckee(small_mesh, 3)
        b = cuthill_mckee(small_mesh, 3)
        assert np.array_equal(a, b)


class TestQuality:
    def test_bandwidth_close_to_scipy(self):
        """Different tie-breaks, comparable quality (within 1.6x)."""
        from repro.baselines.scipy_ref import scipy_rcm

        for mat, start in [
            (g.grid2d(15, 15), 0),
            (g.delaunay_mesh(400, seed=2), 0),
            (g.banded(200, 6, density=0.5, seed=3), 0),
        ]:
            ours = rcm_serial(mat, start)
            if ours.size != mat.n:
                continue  # disconnected; scipy orders all components
            bw_ours = bandwidth_after(mat, ours)
            bw_scipy = bandwidth_after(mat, scipy_rcm(mat))
            assert bw_ours <= 1.6 * bw_scipy + 5

    def test_reduces_bandwidth_of_shuffled_band(self):
        band = g.banded(150, 3)
        rng = np.random.default_rng(8)
        shuffled = band.permute_symmetric(rng.permutation(band.n))
        perm = rcm_serial(shuffled, int(np.argmin(np.diff(shuffled.indptr))))
        from repro.sparse.bandwidth import bandwidth

        assert bandwidth_after(shuffled, perm) < bandwidth(shuffled) / 2


class TestSerialCycles:
    def test_positive_and_monotone_in_size(self):
        small = g.grid2d(5, 5)
        large = g.grid2d(20, 20)
        assert serial_cycles(small, start=0) > 0
        assert serial_cycles(large, start=0) > serial_cycles(small, start=0)

    def test_requires_order_or_start(self, small_grid):
        with pytest.raises(ValueError):
            serial_cycles(small_grid)

    def test_accepts_precomputed_order(self, small_grid):
        cm = cuthill_mckee(small_grid, 0)
        assert serial_cycles(small_grid, cm) == serial_cycles(small_grid, start=0)
