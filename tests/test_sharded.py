"""Tests for the sharded service layer (``repro.service.router`` / ``aio``).

Covers the consistent-hash ring (remap bounds under shard add/remove,
insertion-order independence), disk-tier survival across resharding
(remapped keys warm-hit through the fallback probe and promote into the
new owner's directory only), the concurrent router guarantees (hammered
from >=16 threads: exactly-one-computation per key, no cross-shard
disk-tier writes, byte-identity with the unsharded service), the asyncio
front door, per-shard telemetry (mirrored counters, shard-labeled
Prometheus families, ``TraceContext.shard_id``), the shard-aware
``repro cache`` CLI, the ``shards=`` facade knob, and the
``transform_ms`` flight-recorder field.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading

import numpy as np
import pytest

import repro.service.core as service_core
from repro import telemetry
from repro.cli import main as cli_main
from repro.facade import reorder
from repro.service import (
    AsyncReorderService,
    HashRing,
    ReorderService,
    ServiceConfig,
    ServiceTimeoutError,
    Shard,
    ShardedCache,
    ShardedService,
    cache_key,
    pattern_digest,
)
from repro.service.router import discover_shard_dirs, shard_dir
from repro.sparse.csr import coo_to_csr
from repro.telemetry import flight
from repro.telemetry.context import new_trace_context
from repro.telemetry.prometheus import render_prometheus


def random_symmetric(n, density, seed):
    """Random symmetric pattern (same recipe as conftest.random_symmetric)."""
    rng = np.random.default_rng(seed)
    m = max(int(n * n * density / 2), n)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return coo_to_csr(
        n, np.concatenate([rows, cols]), np.concatenate([cols, rows])
    )


def _digests(count):
    """A fixed, reproducible population of cache-key-shaped digests."""
    return [
        hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(count)
    ]


def _spanning_mats(svc, n_mats=24):
    """Matrices whose keys cover every shard of ``svc`` (asserted)."""
    mats = [random_symmetric(60, 0.05, seed=100 + i) for i in range(n_mats)]
    owners = {svc.route(cache_key(m)) for m in mats}
    assert owners == set(range(svc.n_shards)), "key set must span all shards"
    return mats


@pytest.fixture
def tel():
    """Enabled, clean process-wide telemetry; restored afterwards."""
    t = telemetry.get()
    was_enabled = t.enabled
    t.reset()
    t.enable()
    yield t
    t.reset()
    if not was_enabled:
        t.disable()


class TestHashRing:
    def test_add_remaps_bounded_fraction_to_new_shard(self):
        ring = HashRing(range(4))
        digests = _digests(2000)
        before = {d: ring.route(d) for d in digests}

        ring.add(4)
        after = {d: ring.route(d) for d in digests}
        moved = [d for d in digests if before[d] != after[d]]

        # ~1/5 of the keys should move; 128 virtual nodes per shard keeps
        # the spread tight, but leave slack for hash variance.
        frac = len(moved) / len(digests)
        assert 0.08 <= frac <= 0.35, f"moved {frac:.1%}, expected ~20%"
        # consistent hashing: every moved key moves TO the new shard
        assert all(after[d] == 4 for d in moved)

    def test_remove_moves_only_the_dead_shards_keys(self):
        ring = HashRing(range(5))
        digests = _digests(2000)
        before = {d: ring.route(d) for d in digests}

        ring.remove(4)
        after = {d: ring.route(d) for d in digests}
        for d in digests:
            if before[d] == 4:
                assert after[d] != 4
            else:
                # keys not owned by the removed shard never move
                assert after[d] == before[d]

    def test_add_then_remove_restores_routing_exactly(self):
        ring = HashRing(range(4))
        digests = _digests(500)
        before = [ring.route(d) for d in digests]
        ring.add(4)
        ring.remove(4)
        assert [ring.route(d) for d in digests] == before

    def test_routing_is_insertion_order_independent(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        for d in _digests(300):
            assert a.route(d) == b.route(d)

    def test_duplicate_add_and_missing_remove_raise(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add(1)
        with pytest.raises(ValueError):
            ring.remove(7)
        assert ring.shard_ids == (0, 1)
        assert len(ring) == 2

    def test_empty_ring_rejects_routing(self):
        with pytest.raises(ValueError):
            HashRing().route(_digests(1)[0])


class TestReshardingDiskSurvival:
    def test_remapped_keys_warm_hit_from_disk_after_resharding(
        self, tmp_path
    ):
        root = tmp_path / "cache"
        mats = [random_symmetric(60, 0.05, seed=500 + i) for i in range(12)]
        cfg = ServiceConfig(disk_dir=root)

        with ShardedService(cfg, shards=2) as svc:
            cold = [svc.reorder(m) for m in mats]
        golden = [r.permutation.tobytes() for r in cold]
        files_before = {
            i: set(p.name for p in d.glob("*.npz"))
            for i, d in discover_shard_dirs(root)
        }
        assert sum(len(v) for v in files_before.values()) == len(mats)

        # reopen over the same root with a different shard count: remapped
        # keys must warm-hit through the sibling-directory fallback probe
        with ShardedService(cfg, shards=3) as svc:
            keys = [cache_key(m) for m in mats]
            moved = [
                k for k in keys
                if k.digest + ".npz" not in files_before.get(
                    svc.route(k), set()
                )
            ]
            assert moved, "resharding 2 -> 3 must remap some keys"
            warm = [svc.reorder(m) for m in mats]
            agg = svc.stats()
            assert agg["service.computed"] == 0, "every key must warm-hit"
            new_owner = {k.digest: svc.route(k) for k in keys}

        assert [r.permutation.tobytes() for r in warm] == golden

        # fallback promotion writes into the key's OWN new shard directory
        # only: any file that appeared after resharding belongs there.
        for i, d in discover_shard_dirs(root):
            grown = set(p.name for p in d.glob("*.npz")) - files_before.get(
                i, set()
            )
            for name in grown:
                assert new_owner[name[: -len(".npz")]] == i, (
                    f"shard {i} gained {name} it does not own"
                )


class TestConcurrentRouter:
    N_THREADS = 16

    def test_hammer_exactly_one_computation_per_key(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "cache"
        cfg = ServiceConfig(n_workers=2, max_pending=256, disk_dir=root)

        computed = {}  # digest -> count of underlying computations
        lock = threading.Lock()
        real = service_core._call_reorder

        def counting_call(mat, kwargs):
            d = pattern_digest(mat)
            with lock:
                computed[d] = computed.get(d, 0) + 1
            return real(mat, kwargs)

        monkeypatch.setattr(service_core, "_call_reorder", counting_call)

        with ShardedService(cfg, shards=4) as svc:
            mats = _spanning_mats(svc)
            # disk files are named by the full cache-key digest
            owner = {cache_key(m).digest: svc.route(cache_key(m)) for m in mats}

            barrier = threading.Barrier(self.N_THREADS)
            results = [None] * self.N_THREADS
            errors = []

            def worker(slot):
                try:
                    barrier.wait(timeout=10)
                    futs = [svc.submit(m) for m in mats]
                    results[slot] = [
                        f.result(timeout=60).permutation.tobytes()
                        for f in futs
                    ]
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(s,))
                for s in range(self.N_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors

        # exactly one underlying computation per key, despite 16 threads
        # racing the same key set across every shard
        assert computed == {pattern_digest(m): 1 for m in mats}

        # all threads agree, and the sharded answer is byte-identical to
        # the unsharded service's
        assert all(r == results[0] for r in results[1:])
        with ReorderService() as flat:
            expect = [flat.reorder(m).permutation.tobytes() for m in mats]
        assert results[0] == expect

        # no cross-shard disk-tier writes: each key's .npz lives only in
        # its owning shard's directory
        placed = {
            i: set(p.stem for p in d.glob("*.npz"))
            for i, d in discover_shard_dirs(root)
        }
        assert set().union(*placed.values()) == set(owner)
        for i, stems in placed.items():
            for digest in stems:
                assert owner[digest] == i, (
                    f"{digest} written under shard {i}, owner {owner[digest]}"
                )

    def test_coalescing_holds_per_shard_while_in_flight(self, gated):
        with ShardedService(
            ServiceConfig(n_workers=1), shards=2
        ) as svc:
            mat = random_symmetric(40, 0.1, seed=3)
            futs = [svc.submit(mat) for _ in range(6)]
            gated.wait_entered()
            gated.release()
            perms = {f.result(timeout=30).permutation.tobytes() for f in futs}
            assert len(perms) == 1
        assert len(gated.calls) == 1


# the ``gated`` fixture mirrors tests/test_service.py: workers block in the
# computation until released, which is the coalescing window
@pytest.fixture
def gated(monkeypatch):
    gate = threading.Event()
    entered = threading.Event()
    calls = []
    real = service_core._call_reorder

    def gated_call(mat, kwargs):
        calls.append(dict(kwargs))
        entered.set()
        if not gate.wait(timeout=10):
            raise RuntimeError("test gate was never opened")
        return real(mat, kwargs)

    monkeypatch.setattr(service_core, "_call_reorder", gated_call)

    class Gate:
        def release(self):
            gate.set()

        def wait_entered(self):
            assert entered.wait(timeout=10), "computation never started"

    g = Gate()
    g.calls = calls
    yield g
    gate.set()


class TestShardedServiceSurface:
    def test_stats_shape_and_health(self):
        with ShardedService(shards=3) as svc:
            mat = random_symmetric(50, 0.08, seed=11)
            svc.reorder(mat)
            st = svc.stats()
            assert st["n_shards"] == 3
            assert st["healthy_shards"] == 3
            assert svc.healthy
            assert len(st["shards"]) == 3
            assert [s["shard_id"] for s in st["shards"]] == [0, 1, 2]
            assert st["service.requests"] == sum(
                s["service.requests"] for s in st["shards"]
            )
            assert len(svc.queue_depths()) == 3
        assert not svc.healthy  # closed

    def test_invalidate_sweeps_all_shards_and_reports_tiers(self, tmp_path):
        cfg = ServiceConfig(disk_dir=tmp_path / "cache")
        with ShardedService(cfg, shards=2) as svc:
            mat = random_symmetric(50, 0.08, seed=12)
            svc.reorder(mat)
            key = cache_key(mat)
            assert svc.invalidate(key) == 2  # memory + disk
            assert svc.invalidate(key) == 0
            svc.reorder(mat)
            assert svc.stats()["service.computed"] == 2

    def test_mismatched_external_cache_rejected(self, tmp_path):
        cache = ShardedCache(tmp_path / "c", 2)
        with pytest.raises(ValueError):
            ShardedService(shards=4, cache=cache)

    def test_unsharded_service_api_unchanged(self):
        # the historical entry point still exists, still defaults to one
        # anonymous shard, and Shard is its reusable core
        svc = ReorderService()
        try:
            assert isinstance(svc, Shard)
            assert svc.shard_id is None
            assert "shard_id" not in svc.stats()
        finally:
            svc.close()


class TestAsyncReorderService:
    def test_reorder_matches_sync_cold_and_warm(self, medium_grid):
        ref = reorder(medium_grid, method="serial")

        async def run():
            async with AsyncReorderService(shards=2) as svc:
                cold = await svc.reorder(medium_grid, method="serial")
                warm = await svc.reorder(medium_grid, method="serial")
                assert len(svc.queue_depths()) == 2
                return cold, warm

        cold, warm = asyncio.run(run())
        assert cold.permutation.tobytes() == ref.permutation.tobytes()
        assert warm.permutation.tobytes() == ref.permutation.tobytes()

    def test_reorder_many_gathers_in_order(self):
        mats = [random_symmetric(40, 0.1, seed=20 + i) for i in range(6)]
        expect = [reorder(m).permutation.tobytes() for m in mats]

        async def run():
            async with AsyncReorderService(shards=3) as svc:
                got = await svc.reorder_many(mats)
                return [r.permutation.tobytes() for r in got]

        assert asyncio.run(run()) == expect

    def test_timeout_raises_service_timeout(self, gated, small_grid):
        svc = ReorderService(ServiceConfig(n_workers=1))

        async def run():
            front = AsyncReorderService(service=svc)
            with pytest.raises(ServiceTimeoutError):
                await front.reorder(small_grid, timeout=0.2)
            await front.aclose()  # not owned: must leave svc open
            assert not svc._closed

        try:
            asyncio.run(run())
        finally:
            gated.release()
            svc.close()

    def test_config_and_service_are_exclusive(self):
        svc = ReorderService()
        try:
            with pytest.raises(ValueError):
                AsyncReorderService(ServiceConfig(), service=svc)
        finally:
            svc.close()


class TestShardTelemetry:
    def test_counters_mirrored_per_shard_and_in_aggregate(self, tel):
        with ShardedService(shards=2) as svc:
            mats = _spanning_mats(svc, n_mats=8)
            for m in mats:
                svc.reorder(m)
        snap = tel.snapshot()["counters"]
        per_shard = [
            snap.get(f"service.shard.{i}.requests", 0) for i in range(2)
        ]
        assert all(v > 0 for v in per_shard)
        assert snap["service.requests"] == sum(per_shard) == len(mats)

    def test_prometheus_folds_shard_series_into_labels(self, tel):
        with ShardedService(shards=2) as svc:
            for m in _spanning_mats(svc, n_mats=8):
                svc.reorder(m)
        text = render_prometheus(tel.metrics)
        assert 'service_shard_requests_total{shard="0"}' in text
        assert 'service_shard_requests_total{shard="1"}' in text
        assert 'service_shard_queue_depth{shard="0"}' in text
        # the raw dotted-with-index name never leaks into the exposition
        assert "service.shard.0" not in text

    def test_trace_context_carries_shard_id(self):
        ctx = new_trace_context(shard_id=3)
        assert ctx.shard_id == 3
        assert ctx.child(42).shard_id == 3
        assert new_trace_context().shard_id is None


class TestShardAwareCacheCLI:
    @pytest.fixture
    def populated(self, tmp_path):
        """A sharded disk root with entries spanning >=2 shards."""
        root = tmp_path / "cache"
        cfg = ServiceConfig(disk_dir=root)
        with ShardedService(cfg, shards=4) as svc:
            mats = _spanning_mats(svc, n_mats=12)
            for m in mats:
                svc.reorder(m)
            digests = {
                cache_key(m).digest: svc.route(cache_key(m)) for m in mats
            }
        return root, digests

    def test_listing_sweeps_all_shards(self, populated, capsys):
        root, digests = populated
        assert cli_main(["cache", str(root)]) == 0
        out = capsys.readouterr().out
        assert "shard" in out
        assert f"{len(digests)} entries in {root}" in out
        assert "shard tier(s)" in out

    def test_json_listing_stamps_shard_index(self, populated, capsys):
        import json

        root, digests = populated
        assert cli_main(["cache", str(root), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == len(digests)
        for e in entries:
            assert digests[e["digest"]] == e["shard"]

    def test_shard_flag_narrows_listing(self, populated, capsys):
        root, digests = populated
        target = next(iter(digests.values()))
        assert cli_main(["cache", str(root), "--shard", str(target)]) == 0
        out = capsys.readouterr().out
        expect = sum(1 for s in digests.values() if s == target)
        assert f"{expect} entries in {root}" in out

    def test_shard_flag_rejected_on_unsharded_layout(self, tmp_path, capsys):
        flat = tmp_path / "flat"
        flat.mkdir()
        assert cli_main(["cache", str(flat), "--shard", "0"]) == 1
        assert "unsharded layout" in capsys.readouterr().err

    def test_invalidate_reports_tier_and_shard(self, populated, capsys):
        root, digests = populated
        digest, shard = next(iter(digests.items()))
        rc = cli_main(["cache", str(root), "--invalidate", digest[:12]])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"removed {digest} from 1 tier(s): shard {shard} disk" in out
        # already gone now
        assert cli_main(["cache", str(root), "--invalidate", digest]) == 1

    def test_invalidate_ambiguous_prefix_fails(self, populated, capsys):
        root, _digests = populated
        d = shard_dir(root, 0)
        d.mkdir(parents=True, exist_ok=True)
        (d / "ffff00.npz").touch()
        (d / "ffff11.npz").touch()
        assert cli_main(["cache", str(root), "--invalidate", "ffff"]) == 1
        assert "ambiguous" in capsys.readouterr().err

    def test_clear_reports_per_shard_breakdown(self, populated, capsys):
        root, digests = populated
        assert cli_main(["cache", str(root), "--clear"]) == 0
        out = capsys.readouterr().out
        assert f"cleared {len(digests)} entries" in out
        assert "shard 0:" in out
        for _i, d in discover_shard_dirs(root):
            assert not list(d.glob("*.npz"))


class TestFacadeSharding:
    def test_facade_shards_knob_builds_sharded_disk_tier(self, tmp_path):
        root = tmp_path / "cache"
        mats = [random_symmetric(60, 0.05, seed=700 + i) for i in range(8)]
        cold = [
            reorder(m, cache=str(root), shards=4).permutation.tobytes()
            for m in mats
        ]
        layout = discover_shard_dirs(root)
        assert layout, "shards=4 must persist the shard-<i> layout"
        assert {i for i, _d in layout} <= set(range(4))
        warm = [
            reorder(m, cache=str(root), shards=4).permutation.tobytes()
            for m in mats
        ]
        assert warm == cold

    def test_facade_rejects_bad_shard_count(self, small_grid):
        with pytest.raises(ValueError):
            reorder(small_grid, shards=0)


class TestTransformFlightRecord:
    def test_record_auto_accepts_transform_ms(self, tmp_path, monkeypatch):
        monkeypatch.delenv(flight.FLIGHT_ENV_VAR, raising=False)
        flight.configure(tmp_path / "f.jsonl")
        try:
            flight.record_auto(
                n=10, nnz=40, n_components=1,
                estimates={"serial": 1.0}, chosen="serial",
                actual_wall_ms=0.5, transform_ms=3.25,
            )
            flight.record_auto(
                n=10, nnz=40, n_components=1,
                estimates={"serial": 1.0}, chosen="serial",
                actual_wall_ms=0.5,
            )
            with_t, without_t = flight.read_records(tmp_path / "f.jsonl")
            assert with_t["transform_ms"] == pytest.approx(3.25)
            assert "transform_ms" not in without_t
        finally:
            flight.disable_recording()

    def test_auto_pipeline_records_transform_phase(
        self, tmp_path, monkeypatch, medium_grid
    ):
        from repro.core.api import _reorder_rcm

        monkeypatch.delenv(flight.FLIGHT_ENV_VAR, raising=False)
        flight.configure(tmp_path / "auto.jsonl")
        try:
            _reorder_rcm(medium_grid, method="auto")
            (rec,) = flight.read_records(tmp_path / "auto.jsonl")
            assert "transform_ms" in rec
            assert rec["transform_ms"] >= 0.0
        finally:
            flight.disable_recording()
