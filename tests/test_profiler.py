"""Tests for the continuous sampling profiler (``repro.telemetry.profiler``).

Covers the sampler itself (folded-stack aggregation, span/phase/shard
attribution via the mirror dicts, self-measured overhead, gauge export),
the collapsed/speedscope exporters, the worker-capture round trip, the
``/debug/flame`` + ``/debug/critpath`` endpoints and the ``profiler:``
/statusz section, per-shard aggregation in service stats, and the PR's
acceptance invariant: a ``method="parallel"`` request produces ONE merged
flamegraph holding both parent-process and fork-worker stacks with
correct phase and shard attribution — deterministic under
``REPRO_NO_SHM=1``.
"""

import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.matrices import generators as g
from repro.sparse.csr import CSRMatrix
from repro.telemetry import context as tctx
from repro.telemetry import profiler
from repro.telemetry import spans as spans_mod
from repro.telemetry.export import profile_to_collapsed, profile_to_speedscope


@pytest.fixture(autouse=True)
def clean_profiler_and_telemetry():
    profiler.reset_profiler()
    telemetry.reset()
    telemetry.disable()
    yield
    profiler.reset_profiler()
    telemetry.reset()
    telemetry.disable()


def _block_diag(blocks):
    """Disconnected union of square patterns (multi-component inputs)."""
    n = sum(b.n for b in blocks)
    edges = []
    base = 0
    for b in blocks:
        for u in range(b.n):
            for v in b.indices[b.indptr[u]:b.indptr[u + 1]]:
                if u < v:
                    edges.append((base + u, base + int(v)))
        base += b.n
    return CSRMatrix.from_edges(n, edges)


class TestSamplingProfiler:
    def test_collects_at_least_one_sample(self):
        # the loop samples before its first wait, so even an immediate
        # stop holds >= 1 sample of the parent process
        prof = profiler.SamplingProfiler(hz=50)
        prof.start()
        prof.stop()
        folded = prof.folded()
        assert prof.sample_count >= 1
        assert any("process:main" in key for key in folded)

    def test_continuous_sampling_accumulates(self):
        with profiler.SamplingProfiler(hz=500) as prof:
            t_end = time.perf_counter() + 0.1
            while time.perf_counter() < t_end:
                sum(range(500))
        assert prof.sample_count >= 10
        # this test file appears somewhere in the sampled stacks
        assert any("test_profiler.py:" in k for k in prof.folded())

    def test_sample_now_attributes_phase_and_shard(self):
        telemetry.enable()
        prof = profiler.start_profiler(hz=10)
        ctx = tctx.new_trace_context("req", shard_id=3)
        with tctx.activate(ctx):
            with telemetry.span("ordering", category="api"):
                profiler.sample_now()
        profiler.stop_profiler()
        keys = [
            k for k in prof.folded()
            if k.startswith("shard:3;phase:ordering;process:main;")
        ]
        assert keys, sorted(prof.folded())
        # profiler-internal frames are filtered from the folded stack
        assert not any(";profiler.py:" in k for k in keys)
        assert prof.samples_by_shard().get(3, 0) >= 1

    def test_phase_is_innermost_api_span(self):
        telemetry.enable()
        prof = profiler.start_profiler(hz=10)
        with telemetry.span("ordering", category="api"):
            with telemetry.span("inner-detail", category="phase"):
                profiler.sample_now()
        profiler.stop_profiler()
        # non-api inner span does not displace the pipeline phase
        assert any(
            k.startswith("phase:ordering;process:main;")
            for k in prof.folded()
        )

    def test_non_api_span_is_phase_fallback(self):
        telemetry.enable()
        prof = profiler.start_profiler(hz=10)
        with telemetry.span("parallel.worker", category="parallel"):
            profiler.sample_now()
        profiler.stop_profiler()
        assert any(
            k.startswith("phase:parallel.worker;") for k in prof.folded()
        )

    def test_merge_folded_accumulates(self):
        prof = profiler.SamplingProfiler(hz=10)
        n = prof.merge_folded({"process:worker;a.py:f": 4,
                               "process:worker;b.py:g": 2})
        assert n == 6
        assert prof.sample_count == 6
        prof.merge_folded({"process:worker;a.py:f": 1})
        assert prof.folded()["process:worker;a.py:f"] == 5

    def test_stats_and_overhead(self):
        with profiler.SamplingProfiler(hz=100) as prof:
            time.sleep(0.05)
        stats = prof.stats()
        assert set(stats) == {
            "enabled", "role", "hz", "samples", "overhead_pct"
        }
        assert stats["enabled"] is False  # stopped
        assert stats["hz"] == 100.0
        assert stats["samples"] >= 1
        # sampling a handful of threads is far below the 3% budget
        assert 0.0 <= stats["overhead_pct"] < 3.0

    def test_gauges_exported_to_global_registry(self):
        prof = profiler.start_profiler(hz=100)
        time.sleep(0.03)
        profiler.stop_profiler()
        assert prof.sample_count >= 1
        gauges = telemetry.get().metrics.to_dict()["gauges"]
        assert gauges["telemetry.profiler.samples"] >= 1
        assert gauges["telemetry.profiler.overhead_pct"] >= 0.0

    def test_mirrors_only_maintained_while_running(self):
        telemetry.enable()
        assert spans_mod._MIRROR_ON is False
        with telemetry.span("ordering", category="api"):
            pass
        assert spans_mod._SPAN_MIRROR == {}
        prof = profiler.start_profiler(hz=10)
        assert spans_mod._MIRROR_ON is True
        with telemetry.span("ordering", category="api"):
            assert spans_mod._SPAN_MIRROR  # this thread's entry exists
        profiler.stop_profiler()
        assert spans_mod._MIRROR_ON is False
        assert spans_mod._SPAN_MIRROR == {}
        assert spans_mod._CTX_MIRROR == {}
        assert prof.sample_count >= 1

    def test_module_singleton_lifecycle(self):
        assert profiler.get_profiler() is None
        assert profiler.active_hz() is None
        profiler.sample_now()  # no-op when off
        prof = profiler.start_profiler(hz=42)
        assert profiler.get_profiler() is prof
        assert profiler.active_hz() == 42.0
        assert profiler.start_profiler(hz=99) is prof  # idempotent
        stopped = profiler.stop_profiler()
        assert stopped is prof
        assert profiler.get_profiler() is None

    def test_profiler_stats_stub_when_off(self):
        stats = profiler.profiler_stats()
        assert stats["enabled"] is False
        assert stats["samples"] == 0


class TestExporters:
    FOLDED = {
        "phase:ordering;process:main;a.py:f;b.py:g": 3,
        "process:worker;a.py:f": 2,
    }

    def test_collapsed_format(self):
        text = profile_to_collapsed(self.FOLDED)
        lines = text.strip().splitlines()
        assert lines == [
            "phase:ordering;process:main;a.py:f;b.py:g 3",
            "process:worker;a.py:f 2",
        ]
        assert profile_to_collapsed({}) == ""

    def test_speedscope_document(self):
        doc = profile_to_speedscope(self.FOLDED, name="t")
        assert doc["$schema"].startswith("https://www.speedscope.app")
        (prof,) = doc["profiles"]
        assert prof["type"] == "sampled"
        assert prof["endValue"] == 5
        assert len(prof["samples"]) == len(prof["weights"]) == 2
        frames = [f["name"] for f in doc["shared"]["frames"]]
        # every sample's frame indices resolve into the shared table
        for sample in prof["samples"]:
            for idx in sample:
                assert 0 <= idx < len(frames)
        assert "a.py:f" in frames
        # the document is valid JSON end to end
        json.loads(json.dumps(doc))


class TestWorkerCaptureRoundTrip:
    """The in-process half of the cross-process profile path."""

    def test_begin_collect_merge(self):
        tel = telemetry.get()
        epoch = tel.tracer.epoch_ns
        # worker side: capture with a profiler, sample inside the span
        tctx.begin_worker_capture(epoch, profile_hz=10.0)
        active = profiler.get_profiler()
        assert active is not None and active.role == "worker"
        ctx = tctx.new_trace_context("req", shard_id=1)
        with tctx.activate(ctx):
            with telemetry.span("parallel.worker", category="parallel"):
                profiler.sample_now()
        report = tctx.collect_worker_report()
        assert report.profile, "worker profile should hold samples"
        assert any(
            k.startswith("shard:1;phase:parallel.worker;process:worker")
            for k in report.profile
        ), sorted(report.profile)
        # collecting stops and unregisters the worker profiler
        assert profiler.get_profiler() is None

        # parent side: merge absorbs the folded counts
        telemetry.reset()
        parent = profiler.start_profiler(hz=10)
        tctx.merge_worker_report(
            telemetry.get(), report, parent_span_id=None, lane=0
        )
        profiler.stop_profiler()
        merged = parent.folded()
        assert any("process:worker" in k for k in merged)
        assert parent.samples_by_shard().get(1, 0) >= 1

    def test_no_hz_means_no_worker_profiler(self):
        tctx.begin_worker_capture(telemetry.get().tracer.epoch_ns)
        assert profiler.get_profiler() is None
        report = tctx.collect_worker_report()
        assert report.profile == {}

    def test_old_report_shape_still_merges(self):
        # WorkerReport without an explicit profile (old call sites)
        report = tctx.WorkerReport(pid=123)
        n = tctx.merge_worker_report(
            telemetry.get(), report, parent_span_id=None
        )
        assert n == 0


class TestDebugEndpoints:
    def _get(self, url):
        with urllib.request.urlopen(url) as resp:
            return resp.read().decode()

    def test_flame_404_without_profiler(self):
        from repro.telemetry.prometheus import MetricsServer

        with MetricsServer(telemetry.get().metrics, port=0) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._get(srv.url + "/debug/flame")
            assert exc.value.code == 404

    def test_flame_serves_collapsed_stacks(self):
        from repro.telemetry.prometheus import MetricsServer

        prof = profiler.start_profiler(hz=50)
        time.sleep(0.05)
        try:
            with MetricsServer(telemetry.get().metrics, port=0) as srv:
                text = self._get(srv.url + "/debug/flame")
        finally:
            profiler.stop_profiler()
        assert text.strip(), "flame endpoint should be non-empty"
        line = text.strip().splitlines()[0]
        stack, count = line.rsplit(" ", 1)
        assert int(count) >= 1
        assert "process:main" in stack
        assert prof.sample_count >= 1

    def test_critpath_endpoint_with_and_without_spans(self):
        from repro.telemetry.prometheus import MetricsServer

        with MetricsServer(telemetry.get().metrics, port=0) as srv:
            doc = json.loads(self._get(srv.url + "/debug/critpath"))
            assert doc["spans"] == 0  # graceful no-data document
            telemetry.enable()
            with telemetry.span("ordering", category="api"):
                time.sleep(0.002)
            doc = json.loads(self._get(srv.url + "/debug/critpath"))
        assert doc["spans"] == 1
        assert doc["dominant_phase"] == "ordering"
        assert doc["what_if"][0]["wall_reduction_pct"] > 0

    def test_statusz_profiler_section(self):
        from repro.telemetry.prometheus import MetricsServer

        with MetricsServer(telemetry.get().metrics, port=0) as srv:
            doc = json.loads(self._get(srv.url + "/statusz"))
            assert doc["profiler"]["enabled"] is False
            profiler.start_profiler(hz=67)
            try:
                doc = json.loads(self._get(srv.url + "/statusz"))
            finally:
                profiler.stop_profiler()
        prof_doc = doc["profiler"]
        assert prof_doc["enabled"] is True
        assert prof_doc["hz"] == 67.0
        assert prof_doc["samples"] >= 0
        assert "overhead_pct" in prof_doc


class TestServiceAggregation:
    def test_sharded_stats_report_profiler_by_shard(self):
        from repro.service import ServiceConfig, ShardedService

        telemetry.enable()
        mat = g.grid2d(12, 12)
        prof = profiler.start_profiler(hz=50)
        try:
            with ShardedService(
                ServiceConfig(n_workers=1), shards=2
            ) as svc:
                svc.reorder(mat, method="serial")
                stats = svc.stats()
        finally:
            profiler.stop_profiler()
        assert "profiler" in stats
        # snapshot taken while the sampler was still running
        assert 0 <= stats["profiler"]["samples"] <= prof.sample_count
        assert sorted(stats["profiler"]["by_shard"]) == [0, 1]
        for shard_stats in stats["shards"]:
            assert "profile_samples" in shard_stats

    def test_shard_stats_omit_profile_when_off(self):
        from repro.service import ServiceConfig, ShardedService

        with ShardedService(ServiceConfig(n_workers=1), shards=2) as svc:
            stats = svc.stats()
        assert "profiler" not in stats
        for shard_stats in stats["shards"]:
            assert "profile_samples" not in shard_stats


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="cross-process profiling needs fork",
)
class TestCrossProcessProfile:
    """Acceptance: one parallel request -> one merged flamegraph."""

    def _multi_component_matrix(self):
        # two components, n = 2 * 36*36 = 2592 > min_parallel_nodes, so
        # the pool genuinely forks
        return _block_diag([g.grid2d(36, 36), g.grid2d(36, 36)])

    def test_parallel_request_merges_worker_stacks(self, monkeypatch):
        # pickle transport: deterministic fresh fork per dispatch
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        from repro.core.api import _reorder_rcm

        telemetry.enable()
        mat = self._multi_component_matrix()
        prof = profiler.start_profiler(hz=100)
        ctx = tctx.new_trace_context("req", shard_id=2)
        try:
            with tctx.activate(ctx):
                res = _reorder_rcm(mat, method="parallel")
        finally:
            profiler.stop_profiler()
        assert res.method == "parallel"

        folded = prof.folded()
        keys = sorted(folded)
        # one profile, both processes: the start/stop bookend samples
        # guarantee parent stacks, the worker-span poke guarantees
        # worker stacks — no timing luck involved
        assert any("process:main" in k for k in keys), keys
        worker_keys = [k for k in keys if "process:worker" in k]
        assert worker_keys, keys
        # fork-worker frames come from the executor's task function...
        assert any("executor.py:" in k for k in worker_keys), worker_keys
        # ...attributed to the request's shard and the worker-span phase
        assert any(
            k.startswith("shard:2;phase:parallel.worker;process:worker;")
            for k in worker_keys
        ), worker_keys
        assert prof.samples_by_shard().get(2, 0) >= 2  # both components

        # the merged profile exports as one flamegraph...
        collapsed = profile_to_collapsed(folded)
        assert "process:main" in collapsed
        assert "process:worker" in collapsed

        # ...and the same request's span tree yields a critical-path
        # report naming a dominant phase with a what-if estimate
        report = telemetry.critical_path(telemetry.get().tracer.records())
        assert report is not None
        assert report["dominant_phase"]
        assert report["what_if"][0]["wall_reduction_pct"] >= 0

    def test_worker_report_profile_ships_via_pickle_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        from repro.core.api import _reorder_rcm

        telemetry.enable()
        mat = self._multi_component_matrix()
        parent_pid = os.getpid()
        prof = profiler.start_profiler(hz=100)
        try:
            _reorder_rcm(mat, method="parallel")
        finally:
            profiler.stop_profiler()
        # worker spans recorded in other processes while worker profile
        # samples merged into the parent's profiler
        worker_spans = [
            r for r in telemetry.get().tracer.records()
            if r.name == "parallel.worker"
        ]
        assert worker_spans
        assert all(w.pid != parent_pid for w in worker_spans)
        assert any("process:worker" in k for k in prof.folded())
