"""Hostile-graph scenario battery: families x backends x floors x transform.

The paper's evaluation story lives or dies on graph shape: RCM recovers
banded structure beautifully on meshes and road networks and barely at
all on power-law graphs, and the speculative backends must stay
byte-identical to serial *everywhere*, not just on the friendly shapes.
This module is the cross product:

* the degree-distribution classifier maps every registered scenario to
  its declared family (both sizes — large rides the nightly ``-m slow``
  lane);
* every registered backend runs every scenario and returns a valid
  permutation byte-identical to the serial golden reference;
* the seeded-shuffle recovery on each scenario clears its family's
  committed floor (:data:`repro.matrices.scenarios.FAMILY_FLOORS`);
* the power-law transformation strictly shallows the giant component's
  BFS level structure on heavy-tailed families, is a perfect no-op on
  the rest, and keys the cache accordingly.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro import backends
from repro.errors import ValidationError
from repro.facade import reorder, reorder_many
from repro.matrices.scenarios import (
    FAMILIES,
    FAMILY_FLOORS,
    SCENARIOS,
    classify,
    heavy_tailed,
    scenario_names,
    scenario_suite,
    shuffled,
)
from repro.core.transform import plan_powerlaw
from repro.service.keys import cache_key
from repro.sparse.bandwidth import bandwidth

#: the families whose giant-component level count the transform must cut
HEAVY_TAILED_FAMILIES = ("power-law", "hub-dominated")

SPEC_BY_NAME = {spec.name: spec for spec in SCENARIOS}
NAMES = sorted(SPEC_BY_NAME)

#: every registered backend, plus the resolver on top
ALL_METHODS = list(backends.names()) + ["auto"]


@lru_cache(maxsize=None)
def scenario(name: str, size: str = "small"):
    return SPEC_BY_NAME[name].build(size)


@lru_cache(maxsize=None)
def golden(name: str) -> bytes:
    """Serial RCM permutation on the untransformed scenario."""
    return reorder(scenario(name), method="serial").permutation.tobytes()


def assert_valid_permutation(perm: np.ndarray, n: int) -> None:
    assert perm.shape == (n,)
    assert np.array_equal(np.sort(perm), np.arange(n))


class TestRegistry:
    def test_every_family_is_covered(self):
        covered = {spec.family for spec in SCENARIOS}
        assert covered == set(FAMILIES)

    def test_every_family_has_a_floor(self):
        assert set(FAMILY_FLOORS) == set(FAMILIES)

    def test_names_are_unique_and_sorted_api(self):
        names = scenario_names()
        assert len(names) == len(set(names))
        assert set(names) == set(NAMES)

    def test_suite_builds_every_scenario(self):
        suite = scenario_suite("small")
        assert set(suite) == set(NAMES)
        for name, mat in suite.items():
            assert mat.n > 0
            assert mat.nnz > 0


class TestClassifier:
    @pytest.mark.parametrize("name", NAMES)
    def test_small_maps_to_declared_family(self, name):
        assert classify(scenario(name)) == SPEC_BY_NAME[name].family

    @pytest.mark.parametrize("name", NAMES)
    def test_heavy_tail_probe_agrees_with_family(self, name):
        family = SPEC_BY_NAME[name].family
        assert heavy_tailed(scenario(name)) == (
            family in HEAVY_TAILED_FAMILIES
        )

    @pytest.mark.parametrize(
        "name",
        [n for n in NAMES
         if SPEC_BY_NAME[n].family not in ("banded", "road-like")],
    )
    def test_degree_families_are_relabeling_invariant(self, name):
        # degree- and depth-rule families read structure, not numbering;
        # bandedness is *inherently* a labeling property (a shuffled band
        # is no longer banded) and the road/mesh split sits on a
        # start-sensitive depth probe, so those two are exempt
        mat = scenario(name)
        assert classify(shuffled(mat, seed=5)) == SPEC_BY_NAME[name].family

    def test_shuffled_band_loses_its_bandedness(self):
        # the flip side of the exemption above, pinned as intended
        assert classify(scenario("banded-thin")) == "banded"
        assert classify(shuffled(scenario("banded-thin"), seed=5)) != "banded"

    @pytest.mark.slow
    @pytest.mark.parametrize("name", NAMES)
    def test_large_maps_to_declared_family(self, name):
        assert classify(scenario(name, "large")) == SPEC_BY_NAME[name].family


class TestBackendBattery:
    """Every backend x every scenario: valid permutation, byte-identical
    to serial on the untransformed path.  When a backend diverges here,
    fix the backend — never widen the comparison."""

    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_byte_identical_to_serial(self, name, method):
        mat = scenario(name)
        res = reorder(mat, method=method)
        assert_valid_permutation(res.permutation, mat.n)
        assert res.permutation.tobytes() == golden(name)
        assert res.transform is None  # no transform requested -> none applied

    @pytest.mark.parametrize("name", NAMES)
    def test_reorder_many_matches_singles(self, name):
        (res,) = reorder_many([scenario(name)], method="serial")
        assert res.permutation.tobytes() == golden(name)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", NAMES)
    @pytest.mark.parametrize("method", ["vectorized", "parallel", "auto"])
    def test_large_byte_identical_to_serial(self, name, method):
        mat = scenario(name, "large")
        ref = reorder(mat, method="serial")
        got = reorder(mat, method=method)
        assert got.permutation.tobytes() == ref.permutation.tobytes()


class TestFamilyFloors:
    """Shuffle-then-recover: floors are phrased against a seeded random
    relabeling because several families (banded, road-like, grids) ship
    in near-optimal natural order where "reduction from natural" is
    meaningless or negative."""

    @pytest.mark.parametrize("name", NAMES)
    def test_recovery_clears_family_floor(self, name):
        spec = SPEC_BY_NAME[name]
        scrambled = shuffled(scenario(name))
        bw0 = bandwidth(scrambled)
        res = reorder(scrambled, method="serial")
        bw1 = bandwidth(scrambled.permute_symmetric(res.permutation))
        reduction = 1.0 - bw1 / bw0
        assert reduction >= FAMILY_FLOORS[spec.family], (
            f"{name} ({spec.family}) recovered only {reduction:.1%}, "
            f"floor is {FAMILY_FLOORS[spec.family]:.1%}"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("name", NAMES)
    def test_large_recovery_clears_family_floor(self, name):
        spec = SPEC_BY_NAME[name]
        scrambled = shuffled(scenario(name, "large"))
        bw0 = bandwidth(scrambled)
        res = reorder(scrambled, method="serial")
        bw1 = bandwidth(scrambled.permute_symmetric(res.permutation))
        assert 1.0 - bw1 / bw0 >= FAMILY_FLOORS[spec.family]


class TestTransformSemantics:
    @pytest.mark.parametrize("name", NAMES)
    def test_auto_transform_noop_off_heavy_tail(self, name):
        """``transform="auto"`` must not perturb classical-path results."""
        family = SPEC_BY_NAME[name].family
        if family in HEAVY_TAILED_FAMILIES:
            pytest.skip("auto applies the pass on heavy-tailed families")
        res = reorder(scenario(name), method="serial", transform="auto")
        assert res.transform is None
        assert res.permutation.tobytes() == golden(name)

    @pytest.mark.parametrize(
        "name",
        [n for n in NAMES
         if SPEC_BY_NAME[n].family in HEAVY_TAILED_FAMILIES],
    )
    def test_transform_applies_on_heavy_tail(self, name):
        mat = scenario(name)
        res = reorder(mat, method="serial", transform="auto")
        assert res.transform == "powerlaw"
        assert_valid_permutation(res.permutation, mat.n)

    @pytest.mark.parametrize(
        "name",
        [n for n in NAMES
         if SPEC_BY_NAME[n].family in HEAVY_TAILED_FAMILIES],
    )
    def test_transform_shallows_giant_component(self, name):
        """The acceptance criterion: hub-first relabeling + hub start must
        strictly reduce the giant component's BFS level count."""
        from repro.core.api import _components_by_min_node
        from repro.sparse.graph import bfs_levels

        def giant_levels(mat, pick):
            comps = _components_by_min_node(mat)
            giant = max(comps, key=len)
            valence = np.diff(mat.indptr)
            start = int(giant[pick(valence[giant])])
            return int(bfs_levels(mat, start)[giant].max()) + 1

        mat = scenario(name)
        plan = plan_powerlaw(mat)
        assert plan is not None
        plain = giant_levels(mat, np.argmin)
        transformed = giant_levels(
            mat.permute_symmetric(plan.relabel), np.argmax
        )
        assert transformed < plain

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_transformed_path_consistent_across_backends(self, method):
        """With the transform active, every backend must still agree with
        serial byte-for-byte — the pass happens *before* dispatch."""
        mat = scenario("powerlaw-rmat")
        ref = reorder(mat, method="serial", transform="powerlaw")
        got = reorder(mat, method=method, transform="powerlaw")
        assert got.transform == ref.transform == "powerlaw"
        assert got.permutation.tobytes() == ref.permutation.tobytes()

    def test_explicit_powerlaw_degrades_to_noop_on_mesh(self, medium_grid):
        res = reorder(medium_grid, method="serial", transform="powerlaw")
        plain = reorder(medium_grid, method="serial")
        assert res.transform is None  # no hubs pass the valence threshold
        assert res.permutation.tobytes() == plain.permutation.tobytes()

    def test_transform_rejects_explicit_int_start(self):
        with pytest.raises(ValidationError):
            reorder(
                scenario("powerlaw-rmat"), method="serial",
                transform="powerlaw", start=0,
            )

    def test_transform_rejects_non_rcm_algorithm(self, medium_grid):
        with pytest.raises(ValidationError):
            reorder(medium_grid, algorithm="sloan", transform="auto")

    def test_unknown_transform_rejected(self, medium_grid):
        with pytest.raises(ValidationError):
            reorder(medium_grid, transform="quantum")


class TestTransformCacheKeys:
    def test_applied_transform_changes_the_key(self):
        mat = scenario("powerlaw-rmat")
        plain = cache_key(mat)
        tf = cache_key(mat, transform="powerlaw")
        assert plain.digest != tf.digest
        assert plain.transform is None
        assert tf.transform == "powerlaw"

    def test_noop_transform_keeps_the_classical_key(self, medium_grid):
        plain = cache_key(medium_grid)
        tf = cache_key(medium_grid, transform="auto")
        assert plain.digest == tf.digest
        assert tf.transform is None

    def test_auto_resolves_like_explicit_on_heavy_tail(self):
        mat = scenario("hub-banded")
        auto = cache_key(mat, transform="auto")
        explicit = cache_key(mat, transform="powerlaw")
        assert auto.digest == explicit.digest
        assert auto.transform == "powerlaw"
