"""Tests for the Harwell-Boeing reader (cross-checked against scipy's
hb_write, which produces real-world-conformant files)."""

import numpy as np
import pytest

from repro.sparse.hb import read_harwell_boeing, _parse_format
from repro.sparse.csr import coo_to_csr
from repro.matrices import generators as g


def write_hb(mat, path):
    """Write via scipy (CSC, real unsymmetric assembled)."""
    from scipy.io import hb_write

    hb_write(str(path), mat.to_scipy().tocsc())


class TestFormatParsing:
    @pytest.mark.parametrize(
        "fmt,expected",
        [
            ("(16I5)", (16, 5, "I")),
            ("(10F7.1)", (10, 7, "F")),
            ("(3E25.16)", (3, 25, "E")),
            ("(1P,3E25.16)", (3, 25, "E")),
            ("(4D20.12)", (4, 20, "D")),
            ("  (8I10)  ", (8, 10, "I")),
        ],
    )
    def test_descriptors(self, fmt, expected):
        assert _parse_format(fmt) == expected

    def test_unsupported_rejected(self):
        with pytest.raises(ValueError):
            _parse_format("(A72)")


class TestRoundTripViaScipy:
    def test_valued_grid(self, tmp_path):
        mat = g.grid2d(6, 6).copy()
        mat.data = np.arange(1.0, mat.nnz + 1)
        p = tmp_path / "grid.rb"
        write_hb(mat, p)
        back = read_harwell_boeing(p)
        assert back.n == mat.n
        assert np.array_equal(back.indptr, mat.indptr)
        assert np.array_equal(back.indices, mat.indices)
        assert np.allclose(back.data, mat.data)

    def test_random_pattern_values(self, tmp_path):
        rng = np.random.default_rng(0)
        n = 20
        rows = rng.integers(0, n, 60)
        cols = rng.integers(0, n, 60)
        mat = coo_to_csr(n, rows, cols, rng.random(60))
        p = tmp_path / "rand.rb"
        write_hb(mat, p)
        back = read_harwell_boeing(p)
        assert np.allclose(back.to_dense(), mat.to_dense())


HB_SYM = """symmetric test matrix                                                   key
             4             1             1             1
RSA            3             3             4             0
(4I14)          (4I14)          (4E20.12)
             1             3             4             5
             1             3             2             3
  2.000000000000E+00  1.500000000000E+00  3.000000000000E+00  4.000000000000E+00
"""

HB_PATTERN = """pattern test                                                            key
             3             1             1             0
PSA            3             3             3             0
(4I14)          (4I14)          (4E20.12)
             1             3             4             4
             1             3             2
"""


class TestHandWrittenFiles:
    def test_symmetric_expansion(self, tmp_path):
        p = tmp_path / "sym.hb"
        p.write_text(HB_SYM)
        m = read_harwell_boeing(p)
        assert m.n == 3
        dense = m.to_dense()
        assert dense[0, 0] == pytest.approx(2.0)
        assert dense[2, 0] == pytest.approx(1.5)
        assert dense[0, 2] == pytest.approx(1.5)  # mirrored
        assert dense[1, 1] == pytest.approx(3.0)
        assert dense[2, 2] == pytest.approx(4.0)

    def test_pattern_matrix(self, tmp_path):
        p = tmp_path / "pat.hb"
        p.write_text(HB_PATTERN)
        m = read_harwell_boeing(p)
        assert m.data is None
        # entries (0,0),(2,0),(1,1) plus the mirrored (0,2)
        assert m.nnz == 4
        assert sorted(m.row(0).tolist()) == [0, 2]

    def test_truncated_rejected(self, tmp_path):
        p = tmp_path / "bad.hb"
        p.write_text("just a title\n")
        with pytest.raises(ValueError):
            read_harwell_boeing(p)

    def test_rectangular_rejected(self, tmp_path):
        text = HB_SYM.replace(
            "RSA            3             3",
            "RSA            3             4",
        )
        p = tmp_path / "rect.hb"
        p.write_text(text)
        with pytest.raises(ValueError):
            read_harwell_boeing(p)


class TestRcmOnHbInput:
    def test_end_to_end(self, tmp_path):
        """Load an HB file and reorder it — the downstream user's path."""
        from repro.facade import reorder

        mat = g.delaunay_mesh(200, seed=6).copy()
        mat.data = np.ones(mat.nnz)
        p = tmp_path / "mesh.rb"
        write_hb(mat, p)
        loaded = read_harwell_boeing(p)
        res = reorder(loaded, method="serial")
        assert res.reordered_bandwidth <= res.initial_bandwidth
