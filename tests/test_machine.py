"""Unit tests for signals, work queue, stats and cost models."""

import math

import pytest

from repro.machine.signals import SignalChain, SignalPayload, SignalState
from repro.machine.workqueue import WorkQueue
from repro.machine.stats import RunStats, Stage, StageTimes, STAGE_ORDER
from repro.machine.costmodel import CPUCostModel, GPUCostModel, SerialCostModel
from repro.machine.scratchpad import Scratchpad, ScratchpadOverflow


def chain():
    return SignalChain(bootstrap=SignalPayload(out_next=1, queue_next=1))


class TestSignalChain:
    def test_slot0_incoming_is_completed(self):
        c = chain()
        assert c.incoming_state(0) == SignalState.COMPLETED
        assert c.incoming_payload(0).out_next == 1

    def test_states_propagate(self):
        c = chain()
        c.send(0, SignalState.DISCOVERED)
        assert c.incoming_state(1) == SignalState.DISCOVERED
        assert c.incoming_state(2) == SignalState.NONE

    def test_monotone_upgrade_ok(self):
        c = chain()
        c.send(0, SignalState.DISCOVERED)
        c.send(0, SignalState.COUNTED, SignalPayload(out_next=5, queue_next=2))
        c.send(0, SignalState.COMPLETED)
        assert c.incoming_state(1) == SignalState.COMPLETED
        assert c.incoming_payload(1).out_next == 5

    def test_downgrade_rejected(self):
        c = chain()
        c.send(0, SignalState.COUNTED, SignalPayload(out_next=2, queue_next=2))
        with pytest.raises(ValueError):
            c.send(0, SignalState.DISCOVERED)

    def test_counted_requires_payload(self):
        c = chain()
        with pytest.raises(ValueError):
            c.send(0, SignalState.COUNTED)

    def test_payload_before_counted_rejected(self):
        c = chain()
        with pytest.raises(RuntimeError):
            c.incoming_payload(1)

    def test_completed_keeps_earlier_payload(self):
        c = chain()
        p = SignalPayload(out_next=9, queue_next=3, overhang_start=5, overhang_end=9,
                          overhang_valence=12)
        c.send(0, SignalState.COUNTED, p)
        c.send(0, SignalState.COMPLETED)
        got = c.incoming_payload(1)
        assert got.overhang_nodes == 4
        assert got.has_overhang()


class TestSignalPayload:
    def test_no_overhang_by_default(self):
        p = SignalPayload(out_next=1, queue_next=1)
        assert not p.has_overhang()
        assert p.overhang_nodes == 0


class TestWorkQueue:
    def test_take_in_order(self):
        q = WorkQueue()
        q.fill(0, 0, 4)
        q.fill(1, 4, 8)
        assert q.take_next().index == 0
        assert q.take_next().index == 1
        assert q.take_next() is None

    def test_head_blocks_until_filled(self):
        q = WorkQueue()
        q.fill(1, 4, 8)  # reserves slot 0 unfilled
        assert not q.head_ready()
        assert q.take_next() is None
        q.fill(0, 0, 4)
        assert q.head_ready()
        assert q.take_next().index == 0
        assert q.take_next().index == 1

    def test_double_fill_rejected(self):
        q = WorkQueue()
        q.fill(0, 0, 1)
        with pytest.raises(RuntimeError):
            q.fill(0, 1, 2)

    def test_termination_stops_takes(self):
        q = WorkQueue()
        q.fill(0, 0, 4)
        q.terminate()
        assert q.take_next() is None
        assert q.slots_remaining == 1

    def test_empty_slot_counted(self):
        q = WorkQueue()
        q.fill(0, 3, 3)
        slot = q.take_next()
        assert slot.empty
        assert q.n_empty_discarded == 1

    def test_counters(self):
        q = WorkQueue()
        q.fill(0, 0, 2)
        q.fill(1, 2, 2, empty=True)
        q.take_next()
        q.mark_executed()
        q.take_next()
        assert q.n_generated == 2
        assert q.n_dequeued == 2
        assert q.n_executed == 1
        assert q.n_empty_discarded == 1

    def test_len(self):
        q = WorkQueue()
        q.fill(2, 0, 1)
        assert len(q) == 3


class TestStats:
    def test_shares_sum_to_one(self):
        s = RunStats(n_workers=2)
        s.add_cycles(0, Stage.DISCOVER, 50)
        s.add_cycles(1, Stage.STALL, 50)
        shares = s.stage_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_shares_zero(self):
        s = RunStats(n_workers=1)
        assert all(v == 0.0 for v in s.stage_shares().values())

    def test_milliseconds(self):
        s = RunStats(n_workers=1)
        s.makespan = 4.0e6
        assert s.milliseconds(4.0) == pytest.approx(1.0)

    def test_merged_stagetimes(self):
        a = StageTimes({Stage.SORT: 10.0})
        b = StageTimes({Stage.SORT: 5.0, Stage.STALL: 1.0})
        m = a.merged(b)
        assert m.cycles[Stage.SORT] == pytest.approx(15.0)
        assert m.total() == pytest.approx(16.0)

    def test_stage_order_covers_paper_categories(self):
        names = [s.value for s in STAGE_ORDER]
        assert names == [
            "Discover", "Sort", "Rediscover", "Signal", "addNewBatches", "Stall",
        ]


class TestCostModels:
    def test_cpu_contention_grows(self):
        m = CPUCostModel()
        assert m.contention(1) == pytest.approx(1.0)
        assert m.contention(24) > m.contention(2)

    def test_cpu_discover_scales_with_edges(self):
        m = CPUCostModel()
        assert m.discover(4, 100, 50, 1) < m.discover(4, 1000, 500, 1)

    def test_cpu_sort_nlogn(self):
        m = CPUCostModel()
        assert m.sort(1000) > 10 * m.sort(64)

    def test_gpu_divides_by_threads(self):
        g = GPUCostModel()
        # same work is much cheaper per element than serial scanning
        big = g.sort(1024)
        assert big < CPUCostModel().sort(1024)

    def test_gpu_max_workers(self):
        g = GPUCostModel()
        assert g.max_workers == g.n_sms * g.blocks_per_sm

    def test_gpu_threads_per_parent_power_of_two(self):
        g = GPUCostModel()
        assert g._threads_per_parent(1) == 1
        assert g._threads_per_parent(5) == 4
        assert g._threads_per_parent(300) == 256

    def test_serial_model_node_cost_positive(self):
        s = SerialCostModel()
        assert s.node(0) > 0
        assert s.node(10) > s.node(1)


class TestScratchpad:
    def test_gpu_overflow_raises(self):
        sp = Scratchpad(capacity=10, extendable=False)
        sp.acquire(10)
        with pytest.raises(ScratchpadOverflow):
            sp.acquire(1)

    def test_cpu_overflow_recorded(self):
        sp = Scratchpad(capacity=10, extendable=True)
        sp.acquire(15)
        assert sp.extensions == 1
        assert sp.peak == 15

    def test_release_and_reset(self):
        sp = Scratchpad(capacity=10, extendable=True)
        sp.acquire(5)
        sp.release(3)
        assert sp.used == 2
        sp.reset()
        assert sp.used == 0
