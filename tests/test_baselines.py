"""Tests for the baseline timing models and the SciPy cross-check."""

import numpy as np
import pytest

from repro.core.serial import serial_cycles, cuthill_mckee, rcm_serial
from repro.core.peripheral import find_pseudo_peripheral
from repro.baselines.hsl import hsl_cycles, HSL_SLOWDOWN
from repro.baselines.matlab import matlab_cycles
from repro.baselines.cusolver import cusolver_cycles
from repro.baselines.transfer import TransferModel, transfer_ms
from repro.baselines.scipy_ref import scipy_rcm
from repro.sparse.bandwidth import bandwidth_after, bandwidth
from repro.sparse.validate import assert_permutation
from repro.matrices import generators as g


class TestTimingModels:
    def test_hsl_is_serial_times_factor(self, medium_grid):
        s = serial_cycles(medium_grid, start=0)
        assert hsl_cycles(medium_grid, start=0) == pytest.approx(HSL_SLOWDOWN * s)

    def test_matlab_slower_than_serial_faster_than_cusolver(self, medium_grid):
        peri = find_pseudo_peripheral(medium_grid, 0)
        cm = cuthill_mckee(medium_grid, 0)
        s = serial_cycles(medium_grid, cm)
        m = matlab_cycles(medium_grid, peri, cm)
        c = cusolver_cycles(medium_grid, peri, cm)
        assert s < m < c

    def test_cusolver_orders_of_magnitude(self, medium_grid):
        peri = find_pseudo_peripheral(medium_grid, 0)
        cm = cuthill_mckee(medium_grid, 0)
        assert cusolver_cycles(medium_grid, peri, cm) > 10 * serial_cycles(
            medium_grid, cm
        )


class TestTransfer:
    def test_bytes_accounting_pattern(self, small_grid):
        tm = TransferModel()
        expected = (small_grid.n + 1) * 4 + small_grid.nnz * 4
        assert tm.csr_bytes(small_grid) == expected

    def test_bytes_accounting_valued(self):
        from repro.sparse.csr import coo_to_csr

        m = coo_to_csr(3, [0, 1], [1, 0], [1.0, 1.0])
        tm = TransferModel()
        assert tm.csr_bytes(m) == 4 * 4 + 2 * 4 + 2 * 8

    def test_round_trip_is_double(self, small_grid):
        tm = TransferModel()
        one = tm.one_way_ms(tm.csr_bytes(small_grid))
        assert tm.round_trip_ms(small_grid) == pytest.approx(2 * one)

    def test_latency_floor(self):
        tm = TransferModel()
        assert tm.one_way_ms(0) == pytest.approx(tm.latency_us / 1e3)

    def test_bigger_matrix_costs_more(self):
        small = g.grid2d(10, 10)
        large = g.grid2d(50, 50)
        assert transfer_ms(large) > transfer_ms(small)


class TestScipyCrossCheck:
    def test_scipy_returns_permutation(self, medium_grid):
        perm = scipy_rcm(medium_grid)
        assert_permutation(perm, medium_grid.n)

    @pytest.mark.parametrize(
        "maker",
        [lambda: g.grid2d(16, 16), lambda: g.delaunay_mesh(500, seed=9)],
        ids=["grid", "mesh"],
    )
    def test_comparable_bandwidth_quality(self, maker):
        """Our RCM and SciPy's differ in tie-breaks and start choice but
        must produce bandwidths in the same ballpark."""
        from repro.facade import reorder

        mat = maker()
        ours = reorder(mat, method="serial").reordered_bandwidth
        theirs = bandwidth_after(mat, scipy_rcm(mat))
        assert ours <= 1.7 * theirs + 5
        assert theirs <= 1.7 * ours + 5

    def test_both_reduce_shuffled_band(self):
        band = g.banded(200, 4)
        rng = np.random.default_rng(1)
        shuffled = band.permute_symmetric(rng.permutation(band.n))
        init = bandwidth(shuffled)
        sp = bandwidth_after(shuffled, scipy_rcm(shuffled))
        start = int(np.argmin(np.diff(shuffled.indptr)))
        ours = bandwidth_after(shuffled, rcm_serial(shuffled, start))
        assert sp < init and ours < init
