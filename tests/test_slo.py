"""Tests for declarative SLOs and their live/offline evaluation surfaces.

Covers the :class:`~repro.telemetry.slo.SLO` primitive (check/burn in both
directions), signal derivation from metrics snapshots, histogram-summary
quantiles, health scoring, gauge export, the offline history replay, the
``/statusz`` + ``/metrics`` SLO surfaces of :class:`MetricsServer`
(including uptime and graceful-shutdown state), the per-request quality
histograms, and the ``repro inspect`` report.
"""

import json
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import slo
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import MetricsServer


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def _snapshot(counters=None, histograms=None):
    return {"counters": counters or {}, "histograms": histograms or {}}


class TestSLOPrimitive:
    def test_max_direction_check(self):
        s = slo.SLO("s", "d", "sig", objective=5.0, direction="max")
        assert s.check(4.0) is True
        assert s.check(5.0) is True
        assert s.check(6.0) is False
        assert s.check(None) is None

    def test_min_direction_check(self):
        s = slo.SLO("s", "d", "sig", objective=0.5, direction="min")
        assert s.check(0.9) is True
        assert s.check(0.4) is False

    def test_burn_normalizes_both_directions(self):
        mx = slo.SLO("s", "d", "sig", objective=4.0, direction="max")
        assert mx.burn(2.0) == pytest.approx(0.5)
        assert mx.burn(8.0) == pytest.approx(2.0)
        mn = slo.SLO("s", "d", "sig", objective=0.5, direction="min")
        assert mn.burn(1.0) == pytest.approx(0.5)
        assert mn.burn(0.25) == pytest.approx(2.0)
        assert mn.burn(0.0) == float("inf")

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            slo.SLO("s", "d", "sig", objective=1.0, direction="sideways")


class TestQuantileFromSummary:
    def test_empty_summary_is_none(self):
        assert slo.quantile_from_summary(None, 0.99) is None
        assert slo.quantile_from_summary({"count": 0, "sum": 0.0}, 0.5) is None

    def test_single_observation(self):
        summary = {"count": 1, "min": 3.0, "max": 3.0, "buckets": {}}
        assert slo.quantile_from_summary(summary, 0.99) == 3.0

    def test_matches_live_histogram_bounds(self):
        from repro.telemetry.metrics import Histogram

        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.6, 4.0, 4.5, 4.9):
            h.observe(v)
        q = slo.quantile_from_summary(h.to_dict(), 0.99)
        assert 2.0 <= q <= 4.9

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            slo.quantile_from_summary({"count": 1}, 1.5)


class TestCollectSignals:
    def test_cache_hit_ratio(self):
        sig = slo.collect_signals(_snapshot(
            {"service.cache.hits": 3, "service.cache.misses": 1}
        ))
        assert sig["cache_hit_ratio"] == pytest.approx(0.75)

    def test_idle_service_yields_none_signals(self):
        sig = slo.collect_signals(_snapshot())
        assert all(v is None for v in sig.values())

    def test_fallback_and_drop_rates(self):
        sig = slo.collect_signals(_snapshot({
            "service.requests": 20,
            "service.fallbacks.serial": 1,
            "service.fallbacks.vectorized": 1,
            "threads.speculation.discovered": 100,
            "threads.speculation.dropped": 25,
        }))
        assert sig["service_fallback_rate"] == pytest.approx(0.1)
        assert sig["speculation_drop_rate"] == pytest.approx(0.25)

    def test_calibration_supplies_mispick_rate(self):
        sig = slo.collect_signals(
            _snapshot(), calibration={"mispick_rate": 0.125}
        )
        assert sig["auto_mispick_rate"] == pytest.approx(0.125)


class TestEvaluate:
    def test_idle_is_healthy(self):
        ev = slo.evaluate(_snapshot())
        assert ev["health_score"] == 1.0
        assert ev["evaluated"] == 0
        assert set(ev["slos"]) == {s.name for s in slo.DEFAULT_SLOS}

    def test_health_score_is_met_fraction(self):
        ev = slo.evaluate(_snapshot({
            "service.cache.hits": 9, "service.cache.misses": 1,   # ok
            "threads.speculation.discovered": 10,
            "threads.speculation.dropped": 9,                      # violated
        }))
        assert ev["evaluated"] == 2
        assert ev["met"] == 1
        assert ev["health_score"] == pytest.approx(0.5)
        assert ev["slos"]["cache_hit_ratio"]["ok"] is True
        assert ev["slos"]["speculation_drop_rate"]["ok"] is False
        assert ev["slos"]["speculation_drop_rate"]["burn"] > 1.0

    def test_evaluate_history_replays_runs(self):
        runs = [
            {"git_sha": "a", "timestamp": "t0",
             "counters": {"service.cache.hits": 1,
                          "service.cache.misses": 9}},
            {"git_sha": "b", "timestamp": "t1",
             "counters": {"service.cache.hits": 9,
                          "service.cache.misses": 1},
             "calibration": {"mispick_rate": 0.0}},
        ]
        traj = slo.evaluate_history(runs)
        assert [t["git_sha"] for t in traj] == ["a", "b"]
        assert traj[0]["evaluation"]["slos"]["cache_hit_ratio"]["ok"] is False
        assert traj[1]["evaluation"]["slos"]["cache_hit_ratio"]["ok"] is True
        assert traj[1]["evaluation"]["slos"]["auto_mispick_rate"]["ok"] is True

    def test_format_report_renders(self):
        text = slo.format_report(slo.evaluate(_snapshot(
            {"service.cache.hits": 1, "service.cache.misses": 9}
        )))
        assert "SLO health" in text
        assert "cache_hit_ratio" in text
        assert "VIOLATED" in text


class TestExportGauges:
    def test_health_always_exported(self):
        reg = MetricsRegistry()
        slo.export_gauges(reg, slo.evaluate(_snapshot()))
        assert reg.to_dict()["gauges"]["slo.health_score"] == 1.0

    def test_unevaluable_slos_export_no_gauges(self):
        reg = MetricsRegistry()
        slo.export_gauges(reg, slo.evaluate(_snapshot()))
        gauges = reg.to_dict()["gauges"]
        assert [g for g in gauges if g.startswith("slo.")] == [
            "slo.health_score"
        ]

    def test_evaluable_slo_exports_burn_and_ok(self):
        reg = MetricsRegistry()
        slo.export_gauges(reg, slo.evaluate(_snapshot(
            {"service.cache.hits": 3, "service.cache.misses": 1}
        )))
        gauges = reg.to_dict()["gauges"]
        assert gauges["slo.cache_hit_ratio.ok"] == 1
        assert gauges["slo.cache_hit_ratio.burn"] == pytest.approx(0.5 / 0.75)


class TestMetricsServerSLO:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.read().decode()

    def test_statusz_reports_slo_uptime_and_state(self):
        reg = MetricsRegistry()
        reg.counter("service.cache.hits").add(3)
        reg.counter("service.cache.misses").add(1)
        with MetricsServer(reg, port=0) as srv:
            doc = json.loads(self._get(srv.url + "/statusz"))
            assert doc["state"] == "serving"
            assert doc["uptime_s"] >= 0
            assert doc["slo"]["health_score"] == 1.0
            assert doc["slo"]["slos"]["cache_hit_ratio"]["ok"] is True

    def test_mark_shutdown_flips_state(self):
        with MetricsServer(MetricsRegistry(), port=0) as srv:
            srv.mark_shutdown()
            doc = json.loads(self._get(srv.url + "/statusz"))
            assert doc["state"] == "shutting-down"

    def test_metrics_scrape_exports_slo_gauges(self):
        reg = MetricsRegistry()
        reg.counter("service.cache.hits").add(9)
        reg.counter("service.cache.misses").add(1)
        with MetricsServer(reg, port=0) as srv:
            text = self._get(srv.url + "/metrics")
        assert "slo_health_score 1" in text
        assert "slo_cache_hit_ratio_ok 1" in text

    def test_calibration_fn_feeds_the_mispick_slo(self):
        srv = MetricsServer(
            MetricsRegistry(), port=0,
            calibration_fn=lambda: {"mispick_rate": 0.9},
        )
        ev = srv.evaluate_slo()
        srv._httpd.server_close()
        assert ev["slos"]["auto_mispick_rate"]["ok"] is False


class TestRequestQualityHistograms:
    def test_reorder_records_reduction_histograms(self, medium_grid):
        import repro

        telemetry.enable()
        repro.reorder(medium_grid, method="serial")
        hists = telemetry.get().snapshot()["histograms"]
        bw = hists["request.bandwidth_reduction"]
        env = hists["request.envelope_reduction"]
        assert bw["count"] == 1
        assert env["count"] == 1
        # RCM on a grid must not make quality worse
        assert bw["min"] >= 0.0
        assert env["min"] >= 0.0

    def test_speculation_efficiency_gauge_set_by_threads_run(self, medium_grid):
        import repro

        telemetry.enable()
        repro.reorder(medium_grid, method="threads", n_workers=2)
        snap = telemetry.get().snapshot()
        eff = snap["gauges"]["threads.speculation.efficiency"]
        assert 0.0 <= eff <= 1.0
        assert snap["histograms"]["threads.batch.discovered"]["count"] > 0

    def test_warm_hit_latency_histogram(self, medium_grid):
        from repro.service import ReorderService, ServiceConfig

        telemetry.enable()
        with ReorderService(ServiceConfig(n_workers=1)) as svc:
            svc.submit(medium_grid, method="serial").result(30)
            svc.submit(medium_grid, method="serial").result(30)
        hists = telemetry.get().snapshot()["histograms"]
        assert hists["service.hit_latency_ms"]["count"] >= 1


class TestInspectCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_inspect_reports_speculation_and_quality(self, tmp_path,
                                                     medium_grid, capsys):
        from repro.sparse.io import save_npz

        path = tmp_path / "grid.npz"
        save_npz(medium_grid, path)
        assert self._run("inspect", str(path), "--method", "threads",
                         "--workers", "2") == 0
        out = capsys.readouterr().out
        assert "level structure:" in out
        assert "speculation:" in out
        assert "bandwidth:" in out

    def test_inspect_json_document(self, tmp_path, medium_grid, capsys):
        from repro.sparse.io import save_npz

        path = tmp_path / "grid.npz"
        save_npz(medium_grid, path)
        assert self._run("inspect", str(path), "--method", "threads",
                         "--workers", "2", "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["speculation"]["discovered"] > 0
        assert 0.0 <= doc["speculation"]["efficiency"] <= 1.0
        assert doc["quality"]["bandwidth_reduction"] is not None
        assert doc["levels"]["depth"] > 0

    def test_inspect_nonspeculative_method(self, tmp_path, medium_grid,
                                           capsys):
        from repro.sparse.io import save_npz

        path = tmp_path / "grid.npz"
        save_npz(medium_grid, path)
        assert self._run("inspect", str(path), "--method", "serial") == 0
        assert "none recorded" in capsys.readouterr().out
