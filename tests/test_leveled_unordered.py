"""Tests for the leveled (Alg. 2) and unordered (Alg. 3) baselines."""

import numpy as np
import pytest

from repro.core.serial import rcm_serial
from repro.core.leveled import rcm_leveled, leveled_cycles, LevelWork
from repro.core.unordered import rcm_unordered, unordered_cycles
from repro.machine.costmodel import CPUCostModel, GPUCostModel
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian
from tests.conftest import random_symmetric


FAMILIES = [
    ("grid", lambda: g.grid2d(15, 15)),
    ("mesh", lambda: g.delaunay_mesh(500, seed=1)),
    ("hub", lambda: g.hub_matrix(300, n_hubs=2, seed=2)),
    ("rmat", lambda: g.rmat(8, edge_factor=6, seed=3)),
    ("mycielski", lambda: mycielskian(7)),
    ("caterpillar", lambda: g.caterpillar(30, 2)),
]


class TestLeveledEquivalence:
    @pytest.mark.parametrize("name,maker", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_matches_serial(self, name, maker):
        mat = maker()
        assert np.array_equal(rcm_leveled(mat, 0).permutation, rcm_serial(mat, 0))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        mat = random_symmetric(80, 0.08, seed)
        assert np.array_equal(rcm_leveled(mat, 0).permutation, rcm_serial(mat, 0))

    @pytest.mark.parametrize("start", [0, 11, 50])
    def test_start_nodes(self, start, medium_grid):
        assert np.array_equal(
            rcm_leveled(medium_grid, start).permutation,
            rcm_serial(medium_grid, start),
        )

    def test_component_only(self, two_triangles):
        assert np.array_equal(
            rcm_leveled(two_triangles, 4).permutation, rcm_serial(two_triangles, 4)
        )

    def test_start_out_of_range(self, small_grid):
        with pytest.raises(ValueError):
            rcm_leveled(small_grid, 999)


class TestLevelWork:
    def test_work_counts_consistent(self, small_grid):
        res = rcm_leveled(small_grid, 0)
        # parents across levels = all visited nodes (each node expanded once)
        assert sum(lw.parents for lw in res.levels) == small_grid.n
        # children across levels = everything except the start node
        assert sum(lw.children for lw in res.levels) == small_grid.n - 1
        # edges = full adjacency scanned once per endpoint
        assert sum(lw.edges for lw in res.levels) == small_grid.nnz

    def test_max_degree_recorded(self, star):
        res = rcm_leveled(star, 0)
        assert res.levels[0].max_degree == 5


class TestLeveledCost:
    def test_gpu_cost_grows_with_depth(self):
        deep = rcm_leveled(g.caterpillar(200, 1), 0)
        shallow = rcm_leveled(g.rmat(8, edge_factor=8, seed=4), 0)
        gpu = GPUCostModel()
        per_level_deep = leveled_cycles(deep, gpu, gpu.max_workers) / deep.depth
        assert deep.depth > shallow.depth
        # launch overhead makes each deep-graph level expensive
        assert per_level_deep > 10_000

    def test_more_workers_never_slower(self, medium_grid):
        res = rcm_leveled(medium_grid, 0)
        cpu = CPUCostModel()
        c4 = leveled_cycles(res, cpu, 4)
        c8 = leveled_cycles(res, cpu, 8)
        assert c8 <= c4 * 3  # sync overhead grows, compute shrinks


class TestUnorderedEquivalence:
    @pytest.mark.parametrize("name,maker", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_matches_serial(self, name, maker):
        mat = maker()
        assert np.array_equal(rcm_unordered(mat, 0).permutation, rcm_serial(mat, 0))

    def test_level_accounting(self, medium_grid):
        res = rcm_unordered(medium_grid, 0)
        assert res.level_parents.sum() == medium_grid.n
        assert res.level_children.sum() == medium_grid.n - 1
        assert res.level_edges.sum() == medium_grid.nnz


class TestUnorderedCost:
    def test_positive(self, medium_grid):
        res = rcm_unordered(medium_grid, 0)
        assert unordered_cycles(res, CPUCostModel(), 8) > 0

    def test_bfs_rounds_increase_cost(self, medium_grid):
        slow = rcm_unordered(medium_grid, 0, bfs_rounds=6)
        fast = rcm_unordered(medium_grid, 0, bfs_rounds=2)
        cpu = CPUCostModel()
        assert unordered_cycles(slow, cpu, 8) > unordered_cycles(fast, cpu, 8)

    def test_falls_short_of_serial(self):
        """The paper's observation: Reorderlib never beats CPU-RCM."""
        from repro.core.serial import serial_cycles
        from repro.baselines.reorderlib import reorderlib_result, reorderlib_cycles

        for maker in (lambda: g.grid2d(20, 20), lambda: g.delaunay_mesh(800, seed=5)):
            mat = maker()
            serial = serial_cycles(mat, start=0)
            res = reorderlib_result(mat, 0)
            best = min(reorderlib_cycles(res, tc) for tc in (1, 4, 8, 16, 24))
            assert best > serial
