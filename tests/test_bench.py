"""Tests for the experiment harness (runner, reports, figure drivers)."""

import math

import numpy as np
import pytest

from repro.bench.runner import bench_matrix, pick_start, APPROACHES, clear_cache
from repro.bench.report import render_table, render_heatmap, write_csv, log_bar
from repro.matrices import get_matrix

SMALL = "bcspwr10"
TCS = (1, 4)


@pytest.fixture(scope="module")
def bench():
    return bench_matrix(SMALL, thread_counts=TCS)


class TestRunner:
    def test_all_approaches_timed(self, bench):
        assert set(bench.timings) == set(APPROACHES)
        for t in bench.timings.values():
            assert t.milliseconds > 0

    def test_matrix_stats_recorded(self, bench):
        mat = get_matrix(SMALL)
        assert bench.n == mat.n
        assert bench.nnz == mat.nnz
        assert bench.init_bw >= bench.reord_bw

    def test_hsl_is_serial_scaled(self, bench):
        assert bench.ms("HSL") == pytest.approx(5.8 * bench.ms("CPU-RCM"))

    def test_speedup_vs(self, bench):
        assert bench.speedup_vs("CPU-RCM") == pytest.approx(
            bench.ms("HSL") / bench.ms("CPU-RCM")
        )

    def test_memoized(self):
        a = bench_matrix(SMALL, thread_counts=TCS)
        b = bench_matrix(SMALL, thread_counts=TCS)
        assert a is b

    def test_pick_start_is_min_valence_of_largest_component(self):
        mat = get_matrix(SMALL)
        start, total = pick_start(mat)
        from repro.sparse.graph import bfs_levels

        levels = bfs_levels(mat, start)
        assert total == int((levels >= 0).sum())
        valence = np.diff(mat.indptr)
        members = np.flatnonzero(levels >= 0)
        assert valence[start] == valence[members].min()

    def test_unknown_approach_rejected(self):
        with pytest.raises(ValueError):
            bench_matrix(SMALL, thread_counts=TCS, approaches=["Quantum"])


class TestReport:
    def test_render_table_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", None]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in out
        assert "—" in out

    def test_render_table_nan(self):
        out = render_table(["v"], [[float("nan")]])
        assert "—" in out

    def test_render_heatmap(self):
        out = render_heatmap(["r1", "r2"], ["1", "2"], [[0.0, 1.0], [0.5, 0.5]])
        assert "r1" in out and "|" in out

    def test_log_bar_centres_at_one(self):
        bar = log_bar(1.0, 1.0, width=41)
        assert bar.count("o") == 1
        # 1x mark and value coincide
        assert bar.index("o") == 16 or "|" not in bar

    def test_write_csv(self, tmp_path):
        p = tmp_path / "out" / "t.csv"
        write_csv(p, ["a", "b"], [[1, 2], [3, 4]])
        text = p.read_text().strip().splitlines()
        assert text[0] == "a,b"
        assert len(text) == 3


class TestFigureDrivers:
    def test_fig2_speedups(self, bench):
        from repro.bench.fig2 import speedups

        rows = speedups([bench])
        assert rows[0][0] == SMALL
        assert all(isinstance(v, float) for v in rows[0][1:])

    def test_fig3_queue_stats(self):
        from repro.bench.fig3 import collect_queue_stats

        rows = collect_queue_stats([SMALL])
        name, gen, deq, exe = rows[0][:4]
        assert name == SMALL
        assert gen >= deq >= exe

    def test_fig4_stacked(self):
        from repro.bench.fig4 import collect_overall

        stacked = collect_overall(SMALL)
        names = [s.approach for s in stacked]
        assert "cuSolver" in names and "GPU-BATCH" in names
        cu = next(s for s in stacked if s.approach == "cuSolver")
        rcm = next(s for s in stacked if s.approach == "CPU-RCM")
        assert cu.total_ms > rcm.total_ms
        gpu = next(s for s in stacked if s.approach == "GPU-BATCH")
        assert gpu.transfer_ms == 0.0
        assert rcm.transfer_ms > 0.0

    def test_fig5_scaling(self):
        from repro.bench.fig5 import scaling_matrix, normalized

        names, grid = scaling_matrix([SMALL], thread_counts=(1, 2))
        assert grid.shape == (1, 2)
        norm = normalized(grid)
        assert norm.min() >= 0.0 and norm.max() <= 1.0

    def test_fig6_profile(self):
        from repro.bench.fig6 import stage_profile

        rows = stage_profile([SMALL], thread_counts=(1, 2))
        assert len(rows) == 2
        for r in rows:
            share_sum = sum(
                r[k] for k in
                ("Discover", "Sort", "Rediscover", "Signal", "addNewBatches", "Stall")
            )
            assert share_sum == pytest.approx(1.0, abs=1e-6)

    def test_ablation(self):
        from repro.bench.ablation import ablate, VARIANTS

        rows = ablate([SMALL], n_workers=2)
        assert len(rows) == len(VARIANTS)
        for row in rows:
            assert row[1] > 0


class TestFig1:
    def test_state_timeline(self):
        from repro.bench.fig1 import batch_state_timeline, render_state_chart

        timeline, makespan = batch_state_timeline(SMALL, n_workers=3)
        assert makespan > 0
        assert timeline  # at least slot 0
        for slot, events in timeline.items():
            phases = [p for _, p in sorted(events)]
            # lifecycle order: speculative discovery first, completed last
            assert phases[0] == "speculative discovery"
            assert phases[-1] == "completed"
            times = [t for t, _ in sorted(events)]
            assert times == sorted(times)
        chart = render_state_chart(timeline, makespan, width=40)
        assert "batch" in chart and "peak concurrently active" in chart
