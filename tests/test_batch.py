"""Integration tests: batch RCM equals serial RCM under every configuration.

This is the paper's headline invariant — speculation, signaling, overhangs,
multi-batch execution and early termination never change the permutation.
"""

import numpy as np
import pytest

from repro.core.serial import rcm_serial
from repro.core.batch import run_batch_rcm
from repro.core.batches import BatchConfig
from repro.machine.costmodel import CPUCostModel
from repro.machine.stats import Stage
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian
from tests.conftest import random_symmetric

MODEL = CPUCostModel()


def run(mat, start=0, **kw):
    kw.setdefault("model", MODEL)
    kw.setdefault("n_workers", 4)
    return run_batch_rcm(mat, start, **kw)


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 8, 16])
    def test_worker_counts_grid(self, medium_grid, workers):
        ref = rcm_serial(medium_grid, 0)
        res = run(medium_grid, n_workers=workers)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: g.grid2d(12, 12),
            lambda: g.grid3d(6, 6, 6),
            lambda: g.delaunay_mesh(400, seed=1),
            lambda: g.rmat(8, edge_factor=6, seed=2),
            lambda: g.hub_matrix(300, n_hubs=2, seed=3),
            lambda: g.caterpillar(40, 2),
            lambda: mycielskian(8),
            lambda: g.block_dense(5, 12, seed=4),
        ],
        ids=["grid2d", "grid3d", "delaunay", "rmat", "hub", "caterpillar",
             "mycielski", "blockdense"],
    )
    def test_structural_families(self, maker):
        mat = maker()
        ref = rcm_serial(mat, 0)
        res = run(mat, n_workers=6)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize("start", [0, 7, 63])
    def test_start_nodes(self, small_grid, start):
        ref = rcm_serial(small_grid, start)
        res = run(small_grid, start=start)
        assert np.array_equal(res.permutation, ref)

    def test_component_only(self, two_triangles):
        ref = rcm_serial(two_triangles, 3)
        res = run(two_triangles, start=3)
        assert np.array_equal(res.permutation, ref)

    def test_single_node_component(self):
        mat = g.caterpillar(2, 1)  # then start at a leg
        ref = rcm_serial(mat, 2)
        res = run(mat, start=2)
        assert np.array_equal(res.permutation, ref)

    def test_isolated_start(self):
        from repro.sparse.csr import CSRMatrix

        mat = CSRMatrix.from_edges(3, [(1, 2)])
        res = run(mat, start=0)
        assert list(res.permutation) == [0]


class TestConfigurations:
    CONFIGS = {
        "basic": BatchConfig(early_signaling=False, overhang=False, multibatch=1),
        "no-overhang": BatchConfig(overhang=False),
        "no-early": BatchConfig(early_signaling=False),
        "multibatch4": BatchConfig(multibatch=4),
        "tiny-batches": BatchConfig(batch_size=4),
        "one-batch": BatchConfig(batch_size=1),
        "huge-batches": BatchConfig(batch_size=512),
        "tight-scratch": BatchConfig(batch_size=8, temp_limit=32),
        "no-speculation": BatchConfig(speculate=False),
    }

    @pytest.mark.parametrize("name", list(CONFIGS))
    def test_config_equivalence(self, name, small_mesh):
        ref = rcm_serial(small_mesh, 0)
        res = run(small_mesh, config=self.CONFIGS[name], n_workers=5)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize("name", list(CONFIGS))
    def test_config_equivalence_hub(self, name, hub):
        ref = rcm_serial(hub, 0)
        res = run(hub, config=self.CONFIGS[name], n_workers=5)
        assert np.array_equal(res.permutation, ref)


class TestInterleavingFuzz:
    """Randomized cost jitter changes the schedule, never the result."""

    @pytest.mark.parametrize("seed", range(12))
    def test_jitter_grid(self, seed, medium_grid):
        ref = rcm_serial(medium_grid, 0)
        res = run(medium_grid, n_workers=7, jitter=0.9, seed=seed)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize("seed", range(8))
    def test_jitter_random_graphs(self, seed):
        mat = random_symmetric(120, 0.05, seed)
        ref = rcm_serial(mat, 0)
        res = run(mat, n_workers=5, jitter=0.9, seed=seed * 11 + 1)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize("seed", range(6))
    def test_jitter_tight_config(self, seed, small_mesh):
        cfg = BatchConfig(batch_size=4, temp_limit=16, multibatch=3)
        ref = rcm_serial(small_mesh, 0)
        res = run(small_mesh, config=cfg, n_workers=9, jitter=0.95, seed=seed)
        assert np.array_equal(res.permutation, ref)


class TestStatsInvariants:
    def test_queue_counters_ordered(self, medium_grid):
        res = run(medium_grid, n_workers=4)
        st = res.stats
        assert st.batches_generated >= st.batches_dequeued >= st.batches_executed
        assert st.batches_discarded_by_early_termination == (
            st.batches_generated - st.batches_dequeued
        )

    def test_speculation_counters(self, medium_grid):
        res = run(medium_grid, n_workers=8)
        st = res.stats
        assert st.nodes_discovered_speculatively >= medium_grid.n - 1
        assert st.nodes_dropped_by_rediscovery == (
            st.nodes_discovered_speculatively - (medium_grid.n - 1)
        )

    def test_stage_shares_cover_everything(self, medium_grid):
        res = run(medium_grid, n_workers=4)
        assert sum(res.stats.stage_shares().values()) == pytest.approx(1.0)

    def test_makespan_bounded_by_total(self, medium_grid):
        res = run(medium_grid, n_workers=4)
        assert res.stats.makespan <= res.stats.total_cycles() + 1e-6

    def test_single_worker_no_stall_ish(self, medium_grid):
        """One worker processes in order: waits should be satisfied."""
        res = run(medium_grid, n_workers=1)
        shares = res.stats.stage_shares()
        assert shares[Stage.STALL] < 0.35

    def test_milliseconds_conversion(self, medium_grid):
        res = run(medium_grid, n_workers=2)
        assert res.milliseconds == pytest.approx(
            res.stats.makespan / (MODEL.clock_ghz * 1e6)
        )


class TestEarlyTermination:
    def test_mycielskian_discards_most_batches(self):
        mat = mycielskian(10)
        res = run(mat, n_workers=1)
        st = res.stats
        # the paper's outlier effect: most generated batches never run
        assert st.batches_dequeued < 0.5 * st.batches_generated

    def test_grid_discards_little(self):
        mat = g.grid2d(15, 15)
        res = run(mat, 0)
        st = res.stats
        assert st.batches_dequeued > 0.9 * st.batches_generated


def narrowing_front_graph():
    """A wide level whose *first* batch owns almost no children.

    Centre 0 fans out to 40 equal-valence nodes; the first two (u=1, v=2)
    each have one pendant child, the remaining 38 pair up among themselves
    (children already visited).  With batch_size=16 the level splits into 3
    batches; batch 1 confirms only 2 outputs — under half a batch — while
    later sibling batches exist, which is exactly the overhang condition
    (Sec. IV-C), and the empty middle batch then chains the overhang on.
    """
    from repro.sparse.csr import CSRMatrix

    edges = [(0, i) for i in range(1, 41)]
    edges += [(1, 41), (2, 42)]
    edges += [(3 + 2 * i, 4 + 2 * i) for i in range(19)]
    return CSRMatrix.from_edges(43, edges)


class TestOverhang:
    def test_overhang_fires_on_narrowing_front(self):
        mat = narrowing_front_graph()
        cfg = BatchConfig(batch_size=16)
        res = run(mat, config=cfg, n_workers=3)
        assert res.stats.overhangs_forwarded >= 2  # chained forwarding
        assert res.stats.overhang_nodes > 0

    def test_overhang_result_identical(self):
        mat = narrowing_front_graph()
        ref = rcm_serial(mat, 0)
        for oh in (True, False):
            res = run(mat, config=BatchConfig(batch_size=16, overhang=oh))
            assert np.array_equal(res.permutation, ref)

    def test_overhang_disabled_means_none(self, small_mesh):
        res = run(small_mesh, config=BatchConfig(overhang=False))
        assert res.stats.overhangs_forwarded == 0


class TestValidation:
    def test_bad_start_rejected(self, small_grid):
        with pytest.raises(ValueError):
            run(small_grid, start=10_000)
