"""Suite-wide integration: every Table I analogue through the full pipeline.

Slower than the unit tests (seconds per matrix) but the strongest guarantee:
on *every* test-set structure, all execution strategies agree with serial
RCM and the bench pipeline produces sane rows.
"""

import numpy as np
import pytest

from repro.matrices.suite import TESTSET, get_matrix
from repro.bench.runner import pick_start
from repro.core.serial import cuthill_mckee
from repro.core.batch import run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu
from repro.core.leveled import rcm_leveled
from repro.core.unordered import rcm_unordered
from repro.machine.costmodel import CPUCostModel

MODEL = CPUCostModel()

#: a cross-regime sample kept fast enough for the default test run; the
#: remaining rows are exercised by the benchmark suite
SAMPLE = [
    "bcspwr10",        # narrow power grid, disconnected
    "gupta3",          # dense hubs
    "SiO2",            # chemistry + hubs
    "great-britain_osm",  # huge diameter
    "human_gene2",     # skewed power law, disconnected
    "bundle_adj",      # arrowhead
    "coPapersDBLP",    # preferential attachment
    "hugebubbles-00020",  # deep 2-D mesh
    "nlpkkt120",       # KKT
    "mycielskian18",   # early-termination outlier
]


@pytest.mark.parametrize("name", SAMPLE)
def test_all_strategies_agree(name):
    mat = get_matrix(name)
    start, total = pick_start(mat)
    ref = cuthill_mckee(mat, start)[::-1]

    lev = rcm_leveled(mat, start).permutation
    assert np.array_equal(lev, ref), f"leveled diverged on {name}"

    uno = rcm_unordered(mat, start).permutation
    assert np.array_equal(uno, ref), f"unordered diverged on {name}"

    cpu = run_batch_rcm(mat, start, model=MODEL, n_workers=6, total=total)
    assert np.array_equal(cpu.permutation, ref), f"batch-cpu diverged on {name}"

    gpu = run_batch_rcm_gpu(mat, start, total=total, n_workers=64)
    assert np.array_equal(gpu.permutation, ref), f"batch-gpu diverged on {name}"


@pytest.mark.parametrize("name", SAMPLE)
def test_run_accounting(name):
    """Cycle and queue accounting invariants hold on every regime."""
    mat = get_matrix(name)
    start, total = pick_start(mat)
    res = run_batch_rcm(mat, start, model=MODEL, n_workers=6, total=total)
    st = res.stats
    assert st.batches_generated >= st.batches_dequeued >= st.batches_executed
    assert st.nodes_discovered_speculatively >= total - 1
    assert st.nodes_dropped_by_rediscovery == (
        st.nodes_discovered_speculatively - (total - 1)
    )
    assert st.makespan > 0
    assert sum(st.stage_shares().values()) == pytest.approx(1.0)


def test_paper_reference_rows_complete():
    """Every Table I row carries the paper's reference data for EXPERIMENTS."""
    for entry in TESTSET:
        p = entry.paper
        assert p.n > 0 and p.nnz > 0
        assert p.cpu_rcm > 0 and p.cpu_batch > 0 and p.gpu_batch > 0
        assert entry.size_class in ("small", "medium", "large")
        assert entry.regime


def test_analogue_regimes_span_front_widths():
    """The analogues must cover narrow, medium and wide BFS fronts — the
    paper's key independent variable."""
    from repro.sparse.graph import front_statistics

    fronts = []
    for name in ("great-britain_osm", "ecology1", "benzene", "coPapersDBLP"):
        mat = get_matrix(name)
        start, _ = pick_start(mat)
        fronts.append(front_statistics(mat, start).avg_front)
    assert fronts[0] < 50          # narrow
    assert 50 <= fronts[1] < 150   # medium
    assert fronts[2] > 150         # wide
    assert fronts[3] > 1000        # very wide
