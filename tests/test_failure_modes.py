"""Defensive-behaviour tests: wrong inputs fail loudly, never silently.

A reproduction whose parallel runtime can silently truncate or hang on bad
inputs would be worse than useless; these tests pin the failure modes."""

import numpy as np
import pytest

from repro.core.batch import run_batch_rcm
from repro.core.batches import BatchConfig
from repro.core.state import make_state
from repro.machine.costmodel import CPUCostModel
from repro.machine.engine import DeadlockError, SimulationError, Engine
from repro.machine.stats import RunStats, Stage
from repro.matrices import generators as g
from repro.sparse.csr import CSRMatrix, coo_to_csr

MODEL = CPUCostModel()


class TestWrongTotals:
    def test_total_too_small_raises_on_overflow(self, small_grid):
        """An understated component size must fail loudly when the output
        outgrows it, never silently truncate."""
        state = make_state(small_grid, 0, n_workers=1, total=11)
        from repro.core.batch import worker_loop

        engine = Engine(1, state.stats)
        with pytest.raises(RuntimeError, match="output overflow"):
            engine.run([worker_loop(state, BatchConfig(), MODEL, engine)])

    def test_total_too_large_deadlocks_detected(self, two_triangles):
        """Claiming more reachable nodes than exist can never complete; the
        engine must report a deadlock instead of spinning forever."""
        with pytest.raises(DeadlockError):
            run_batch_rcm(
                two_triangles, 0, model=MODEL, n_workers=2, total=6
            )


class TestBadMatrices:
    def test_asymmetric_pattern_is_callers_problem_but_terminates(self):
        """Core algorithms assume symmetry; an asymmetric pattern still
        terminates (it is just a directed BFS) — no hang, valid output for
        the reachable set."""
        mat = coo_to_csr(4, [0, 1, 2], [1, 2, 3])
        res = run_batch_rcm(mat, 0, model=MODEL, n_workers=2)
        assert sorted(res.permutation.tolist()) == [0, 1, 2, 3]

    def test_empty_adjacency_rows(self):
        mat = CSRMatrix.from_edges(5, [(0, 1)])
        res = run_batch_rcm(mat, 0, model=MODEL, n_workers=2)
        assert sorted(res.permutation.tolist()) == [0, 1]

    def test_self_loop_only_matrix(self):
        mat = coo_to_csr(3, [0, 1, 2], [0, 1, 2])
        res = run_batch_rcm(mat, 1, model=MODEL, n_workers=1)
        assert res.permutation.tolist() == [1]


class TestExtremeConfigs:
    def test_temp_limit_one(self, small_grid):
        """Scratchpad of a single element: every node overflows and gets a
        single-node batch; the run must still be exact."""
        from repro.core.serial import rcm_serial

        cfg = BatchConfig(batch_size=4, temp_limit=1)
        res = run_batch_rcm(small_grid, 0, model=MODEL, n_workers=3, config=cfg)
        assert np.array_equal(res.permutation, rcm_serial(small_grid, 0))

    def test_gpu_temp_limit_one(self, small_grid):
        from repro.core.serial import rcm_serial
        from repro.core.batch_gpu import run_batch_rcm_gpu
        from repro.machine.costmodel import GPUCostModel

        res = run_batch_rcm_gpu(
            small_grid, 0, model=GPUCostModel(temp_limit=1), n_workers=4,
            batch_size=2,
        )
        assert np.array_equal(res.permutation, rcm_serial(small_grid, 0))

    def test_many_more_workers_than_batches(self):
        from repro.core.serial import rcm_serial

        mat = g.caterpillar(5, 1)
        res = run_batch_rcm(mat, 0, model=MODEL, n_workers=32)
        assert np.array_equal(res.permutation, rcm_serial(mat, 0))


class TestEngineDefensive:
    def test_runaway_worker_stopped(self):
        engine = Engine(1, RunStats(n_workers=1), max_steps=50)

        def runaway():
            while True:
                yield ("cost", Stage.OTHER, 1.0)

        with pytest.raises(SimulationError, match="steps"):
            engine.run([runaway()])

    def test_unknown_event_rejected(self):
        engine = Engine(1, RunStats(n_workers=1))

        def bad():
            yield ("teleport", None)

        with pytest.raises(SimulationError, match="unknown event"):
            engine.run([bad()])

    def test_active_counter_tracks_waiters(self):
        engine = Engine(2, RunStats(n_workers=2))
        seen = []

        def watcher():
            yield ("cost", Stage.OTHER, 5.0)
            seen.append(engine.active)
            yield ("cost", Stage.OTHER, 100.0)

        def sleeper():
            yield ("wait", lambda: bool(seen))

        engine.run([watcher(), sleeper()])
        # while the sleeper waited, only the watcher was runnable
        assert seen == [1]


class TestThreadsDefensive:
    def test_worker_exception_propagates(self, monkeypatch, small_grid):
        """A crash inside one thread must surface to the caller, not hang."""
        from repro.core import threads as th

        def boom(*a, **k):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(th, "plan_ranges", boom)
        with pytest.raises(RuntimeError):
            th.rcm_threads(small_grid, 0, n_threads=2)
