"""Unit tests for bandwidth/envelope/wavefront metrics."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.bandwidth import (
    bandwidth,
    bandwidth_after,
    envelope_size,
    profile,
    row_bandwidths,
    max_wavefront,
    rms_wavefront,
)


class TestBandwidth:
    def test_diagonal_matrix(self):
        m = coo_to_csr(3, [0, 1, 2], [0, 1, 2])
        assert bandwidth(m) == 0

    def test_empty_matrix(self):
        m = coo_to_csr(3, [], [])
        assert bandwidth(m) == 0

    def test_tridiagonal(self):
        m = CSRMatrix.from_edges(5, [(i, i + 1) for i in range(4)])
        assert bandwidth(m) == 1

    def test_corner_entry(self):
        m = CSRMatrix.from_edges(10, [(0, 9)])
        assert bandwidth(m) == 9

    def test_path_bandwidth_known(self, path5):
        assert bandwidth(path5) == 1

    def test_star_bandwidth(self, star):
        assert bandwidth(star) == 5


class TestBandwidthAfter:
    def test_matches_materialized_permutation(self, small_mesh):
        rng = np.random.default_rng(1)
        perm = rng.permutation(small_mesh.n)
        direct = bandwidth_after(small_mesh, perm)
        materialized = bandwidth(small_mesh.permute_symmetric(perm))
        assert direct == materialized

    def test_identity_is_noop(self, small_grid):
        assert bandwidth_after(small_grid, np.arange(small_grid.n)) == bandwidth(
            small_grid
        )

    def test_wrong_length_rejected(self, small_grid):
        with pytest.raises(ValueError):
            bandwidth_after(small_grid, np.arange(4))

    def test_reversal_preserves_bandwidth(self, small_grid):
        perm = np.arange(small_grid.n)[::-1]
        assert bandwidth_after(small_grid, perm) == bandwidth(small_grid)


class TestEnvelope:
    def test_tridiagonal_envelope(self):
        m = CSRMatrix.from_edges(4, [(i, i + 1) for i in range(3)])
        # rows 1..3 each have one sub-diagonal entry at distance 1
        assert envelope_size(m) == 3
        assert profile(m) == 3 + 4

    def test_row_bandwidths_star(self, star):
        rb = row_bandwidths(star)
        assert rb[0] == 0  # row 0 has only super-diagonal entries
        assert list(rb[1:]) == [1, 2, 3, 4, 5]

    def test_envelope_empty(self):
        m = coo_to_csr(3, [], [])
        assert envelope_size(m) == 0


class TestWavefront:
    def test_diagonal_wavefront_is_one(self):
        m = coo_to_csr(4, [0, 1, 2, 3], [0, 1, 2, 3])
        assert max_wavefront(m) == 1
        assert rms_wavefront(m) == pytest.approx(1.0)

    def test_tridiagonal_wavefront(self):
        m = CSRMatrix.from_edges(5, [(i, i + 1) for i in range(4)])
        assert max_wavefront(m) == 2

    def test_dense_last_row(self):
        # node n-1 has an entry in column 0, so it stays in the wavefront
        # through every elimination step alongside the pivot row itself
        n = 6
        m = CSRMatrix.from_edges(n, [(i, n - 1) for i in range(n - 1)])
        assert max_wavefront(m) == 2

    def test_dense_first_column_wavefront(self):
        # every row has an entry in column 0: all rows active at step 0
        n = 6
        m = CSRMatrix.from_edges(n, [(0, i) for i in range(1, n)])
        assert max_wavefront(m) == n

    def test_rms_between_one_and_max(self, small_mesh):
        r = rms_wavefront(small_mesh)
        assert 1.0 <= r <= max_wavefront(small_mesh)

    def test_empty(self):
        m = coo_to_csr(0, [], [])
        assert max_wavefront(m) == 0
        assert rms_wavefront(m) == 0.0


class TestRCMReducesMetrics:
    """RCM should improve these metrics on shuffled structured matrices."""

    def test_bandwidth_reduction_on_shuffled_grid(self, medium_grid):
        from repro.facade import reorder

        rng = np.random.default_rng(5)
        shuffle = rng.permutation(medium_grid.n)
        shuffled = medium_grid.permute_symmetric(shuffle)
        res = reorder(shuffled, method="serial")
        assert res.reordered_bandwidth < res.initial_bandwidth

    def test_envelope_reduction_on_shuffled_grid(self, medium_grid):
        from repro.facade import reorder

        rng = np.random.default_rng(6)
        shuffled = medium_grid.permute_symmetric(rng.permutation(medium_grid.n))
        res = reorder(shuffled, method="serial")
        after = shuffled.permute_symmetric(res.permutation)
        assert envelope_size(after) < envelope_size(shuffled)
