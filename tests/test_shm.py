"""Shared-memory transport lifecycle: publish/attach round trips,
guaranteed unlink on every exit path, the no-pickle guarantee, pool reuse
and the ``REPRO_NO_SHM`` opt-out.

These tests force the process-pool path (``force_processes=True``) so they
exercise the real transport even on single-core CI hosts.  Tests that
re-register pickle reducers or break the pool call ``reset_pools()`` on
both sides so no other test inherits a poisoned pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import telemetry
from repro.matrices import generators as g
from repro.parallel import (
    ParallelConfig,
    fork_available,
    map_matrices,
    rcm_components,
    reset_pools,
    shm,
)
from repro.core.api import _reorder_rcm

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on platform"
)
needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    telemetry.reset()
    yield
    telemetry.reset()


def _workload(count: int = 6, size: int = 14) -> list:
    return [g.grid2d(size + i, size) for i in range(count)]


# ----------------------------------------------------------------------
# publish / attach round trips
# ----------------------------------------------------------------------
@needs_shm
class TestPublishAttach:
    def test_publish_csr_round_trip(self, medium_grid):
        with shm.ShmBatch() as batch:
            handle = batch.publish_csr(medium_grid)
            view = shm.attach_csr(handle)
            assert view.n == medium_grid.n
            assert np.array_equal(view.indptr, medium_grid.indptr)
            assert np.array_equal(view.indices, medium_grid.indices)

    def test_attached_view_is_read_only(self, medium_grid):
        with shm.ShmBatch() as batch:
            view = shm.attach_csr(batch.publish_csr(medium_grid))
            with pytest.raises(ValueError):
                view.indices[0] = 99

    def test_publish_many_packs_one_segment(self):
        mats = _workload(4)
        with shm.ShmBatch() as batch:
            handles = batch.publish_many(mats)
            assert len({h.name for h in handles}) == 1  # one segment
            for mat, handle in zip(mats, handles):
                view = shm.attach_csr(handle)
                assert np.array_equal(view.indptr, mat.indptr)
                assert np.array_equal(view.indices, mat.indices)

    def test_arena_blocks_survive_unlink(self):
        with shm.ShmBatch() as batch:
            arena = batch.result_arena(8)
            worker_view = shm.attach_arena(arena.handle)
            worker_view[:] = np.arange(8)
            block = arena.block(2, 4)
        # the batch is closed and the segment unlinked; the copy lives on
        assert np.array_equal(block, [2, 3, 4, 5])


# ----------------------------------------------------------------------
# guaranteed-unlink lifecycle
# ----------------------------------------------------------------------
@needs_shm
class TestLifecycle:
    def test_unlink_on_success(self, medium_grid):
        with shm.ShmBatch() as batch:
            batch.publish_csr(medium_grid)
            batch.result_arena(medium_grid.n)
            assert len(shm.active_segments()) == 2
        assert shm.active_segments() == ()

    def test_unlink_on_error_path(self, medium_grid):
        with pytest.raises(RuntimeError, match="mid-batch"):
            with shm.ShmBatch() as batch:
                batch.publish_csr(medium_grid)
                raise RuntimeError("simulated failure mid-batch")
        assert shm.active_segments() == ()

    def test_close_is_idempotent(self, medium_grid):
        batch = shm.ShmBatch()
        batch.publish_csr(medium_grid)
        batch.close()
        batch.close()
        assert shm.active_segments() == ()

    def test_sweep_counts_leaks(self, medium_grid):
        telemetry.enable()
        leaked = shm.ShmBatch()
        leaked.publish_csr(medium_grid)
        assert len(shm.active_segments()) == 1
        assert shm.sweep_leaked() == 1
        assert shm.active_segments() == ()
        counters = telemetry.get().snapshot()["counters"]
        assert counters["parallel.shm.leaked"] == 1

    def test_publish_counters(self, medium_grid):
        telemetry.enable()
        with shm.ShmBatch() as batch:
            batch.publish_csr(medium_grid)
        counters = telemetry.get().snapshot()["counters"]
        assert counters["parallel.shm.published"] == 1
        assert counters["parallel.shm.bytes"] > 0

    @needs_fork
    def test_dispatch_leaves_no_segments(self):
        mats = _workload()
        cfg = ParallelConfig(n_workers=2, force_processes=True)
        map_matrices(mats, method="vectorized", config=cfg)
        assert shm.active_segments() == ()

    @needs_fork
    def test_broken_pool_leaves_no_segments_and_recovers(self):
        """A dispatch that hits a dead pool must unlink its segments,
        fall back in-process and still return correct results."""
        from repro.parallel import executor

        reset_pools()
        pool = executor._get_pool(2)
        fut = pool.submit(os._exit, 13)  # kill a worker mid-task
        with pytest.raises(Exception):
            fut.result(timeout=30)

        mats = _workload()
        cfg = ParallelConfig(n_workers=2, force_processes=True)
        try:
            results = map_matrices(mats, method="vectorized", config=cfg)
        finally:
            reset_pools()
        assert shm.active_segments() == ()
        for mat, res in zip(mats, results):
            ref = _reorder_rcm(mat, method="vectorized")
            assert np.array_equal(res.permutation, ref.permutation)


# ----------------------------------------------------------------------
# the no-pickle guarantee
# ----------------------------------------------------------------------
def _rebuild_empty(dtype_str: str) -> np.ndarray:
    return np.zeros(0, dtype=dtype_str)


def _forbid_ndarray_pickle(arr: np.ndarray):
    if arr.size:
        raise AssertionError(
            f"{arr.size}-element ndarray crossed the process pipe"
        )
    return (_rebuild_empty, (arr.dtype.str,))


@needs_shm
@needs_fork
class TestNoPickle:
    def test_no_matrix_bytes_cross_the_pipe(self):
        """With the reducer below registered in parent and workers, any
        non-empty ndarray going through ForkingPickler raises — proving
        matrices and permutations travel via shared memory only.  (The
        empty perm-stripped sentinel is the single allowed ndarray.)"""
        from multiprocessing.reduction import ForkingPickler

        reset_pools()  # workers must fork *after* the reducer registers
        ForkingPickler.register(np.ndarray, _forbid_ndarray_pickle)
        try:
            mats = _workload()
            cfg = ParallelConfig(n_workers=2, force_processes=True)
            results = map_matrices(mats, method="vectorized", config=cfg)

            starts = [0] * 3
            sizes = None
            mat = g.grid2d(48, 48)
            from repro.core.api import _components_by_min_node

            comps = _components_by_min_node(mat)
            starts = [int(c[0]) for c in comps]
            sizes = [int(c.size) for c in comps]
            parts = rcm_components(mat, starts, sizes=sizes, config=cfg)
        finally:
            ForkingPickler._extra_reducers.pop(np.ndarray, None)
            reset_pools()

        for m, res in zip(mats, results):
            ref = _reorder_rcm(m, method="vectorized")
            assert np.array_equal(res.permutation, ref.permutation)
        assert sum(p.size for p in parts) == mat.n

    def test_guard_reducer_fires_on_ndarray(self):
        """Sanity check of the guard itself: a non-empty ndarray pushed
        through ForkingPickler must trip the reducer (so the test above
        is actually probing something)."""
        import io

        from multiprocessing.reduction import ForkingPickler

        ForkingPickler.register(np.ndarray, _forbid_ndarray_pickle)
        try:
            with pytest.raises(AssertionError, match="crossed the process"):
                ForkingPickler(io.BytesIO()).dump(np.arange(4))
        finally:
            ForkingPickler._extra_reducers.pop(np.ndarray, None)


# ----------------------------------------------------------------------
# opt-out + pool reuse
# ----------------------------------------------------------------------
class TestOptOutAndPool:
    def test_no_shm_env_disables_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm.shm_available()

    @needs_fork
    def test_pickle_path_identical(self, monkeypatch):
        mats = _workload()
        cfg = ParallelConfig(n_workers=2, force_processes=True)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        try:
            legacy = map_matrices(mats, method="vectorized", config=cfg)
        finally:
            reset_pools()
        monkeypatch.delenv("REPRO_NO_SHM")
        fresh = map_matrices(mats, method="vectorized", config=cfg)
        for a, b in zip(legacy, fresh):
            assert np.array_equal(a.permutation, b.permutation)
            assert a.reordered_bandwidth == b.reordered_bandwidth

    @needs_shm
    @needs_fork
    def test_pool_reused_across_dispatches(self):
        reset_pools()
        telemetry.enable()
        mats = _workload()
        cfg = ParallelConfig(n_workers=2, force_processes=True)
        map_matrices(mats, method="vectorized", config=cfg)
        map_matrices(mats, method="vectorized", config=cfg)
        counters = telemetry.get().snapshot()["counters"]
        assert counters.get("parallel.pool.reused", 0) >= 1
