"""Tests for the unified telemetry layer (``repro.telemetry``).

Covers the span tracer (hierarchy, thread safety, disabled-mode no-op),
the metrics registry (concurrent counters, RunStats absorption), the JSONL
event sink round-trip, the exporters, the instrumented library paths and
the ``repro profile`` CLI.
"""

import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.telemetry.spans import Tracer, NULL_SPAN
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.events import read_jsonl, write_events, SCHEMA
from repro.telemetry.export import (
    lane_assignment,
    phase_totals_ms,
    spans_gantt,
    spans_to_chrome_tracing,
    spans_to_trace_events,
)
from repro.machine.stats import RunStats, Stage


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    """Keep the process-wide instance disabled and empty around each test."""
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        tr = Tracer(enabled=False)
        assert tr.span("x") is NULL_SPAN
        assert tr.span("y", worker=3, foo=1) is NULL_SPAN

    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        for _ in range(10_000):
            with tr.span("hot"):
                pass
        assert tr.records() == []

    def test_basic_span_measured(self):
        tr = Tracer(enabled=True)
        with tr.span("work", category="t", n=5):
            pass
        (rec,) = tr.records()
        assert rec.name == "work"
        assert rec.category == "t"
        assert rec.attrs == {"n": 5}
        assert rec.duration_ns >= 0
        assert rec.end_ns == rec.start_ns + rec.duration_ns

    def test_hierarchy_parent_ids(self):
        tr = Tracer(enabled=True)
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {r.name: r for r in tr.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_set_attrs_mid_span(self):
        tr = Tracer(enabled=True)
        with tr.span("s") as sp:
            sp.set(found=42)
        assert tr.records()[0].attrs["found"] == 42

    def test_overlapping_spans_across_threads(self):
        tr = Tracer(enabled=True)
        barrier = threading.Barrier(8)

        def work(i):
            barrier.wait()
            with tr.span("overlap", worker=i):
                with tr.span("nested", worker=i):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recs = tr.records()
        assert len(recs) == 16
        # hierarchy is per-thread: each nested span's parent is its own
        # thread's outer span
        outer = {r.thread_id: r for r in recs if r.name == "overlap"}
        assert len(outer) == 8
        for r in recs:
            if r.name == "nested":
                assert r.parent_id == outer[r.thread_id].span_id

    def test_clear_resets_epoch_and_records(self):
        tr = Tracer(enabled=True)
        with tr.span("a"):
            pass
        tr.clear()
        assert tr.records() == []
        with tr.span("b"):
            pass
        assert tr.records()[0].start_ns >= 0

    def test_phase_totals_sums_by_name(self):
        tr = Tracer(enabled=True)
        for _ in range(3):
            with tr.span("p"):
                pass
        totals = tr.phase_totals()
        assert set(totals) == {"p"}
        assert totals["p"] >= 0


class TestMetrics:
    def test_concurrent_counter_increments(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 10_000
        barrier = threading.Barrier(n_threads)

        def bump():
            barrier.wait()
            c = reg.counter("hits")
            for _ in range(per_thread):
                c.add()

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == n_threads * per_thread

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(7)
        assert reg.gauge("g").value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.histogram("h").observe(v)
        d = reg.histogram("h").to_dict()
        assert d["count"] == 3
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert d["mean"] == pytest.approx(2.0)

    def test_to_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.gauge("b").set(1.5)
        snap = reg.to_dict()
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 1.5}
        assert snap["histograms"] == {}

    def test_absorb_run_stats_matches_to_dict(self):
        stats = RunStats(n_workers=2)
        stats.makespan = 123.0
        stats.add_cycles(0, Stage.DISCOVER, 10.0)
        stats.batches_generated = 5
        stats.batches_executed = 4
        stats.nodes_discovered_speculatively = 17
        stats.nodes_dropped_by_rediscovery = 3
        reg = MetricsRegistry()
        reg.absorb_run_stats(stats)
        snap = reg.to_dict()
        ref = stats.to_dict()
        assert snap["counters"]["sim.batches.generated"] == ref["batches"]["generated"]
        assert snap["counters"]["sim.speculation.discovered"] == \
            ref["speculation"]["discovered"]
        assert snap["counters"]["sim.speculation.dropped"] == \
            ref["speculation"]["dropped"]
        assert snap["counters"]["sim.stage_cycles.Discover"] == 10.0
        assert snap["gauges"]["sim.makespan_cycles"] == 123.0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = Tracer(enabled=True)
        with tr.span("phase-1", category="api", n=9):
            pass
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        path = tmp_path / "run.jsonl"
        n = write_events(path, tr, reg, meta={"matrix": "grid"})
        events = read_jsonl(path)
        assert len(events) == n == 3
        meta, span, metrics = events
        assert meta["type"] == "meta"
        assert meta["schema"] == SCHEMA
        assert meta["context"] == {"matrix": "grid"}
        assert "cpus" in meta["host"]
        assert span["type"] == "span"
        assert span["name"] == "phase-1"
        assert span["attrs"] == {"n": 9}
        assert span["dur_ns"] >= 0
        assert metrics["type"] == "metrics"
        assert metrics["counters"] == {"c": 3}

    def test_empty_session_still_has_header(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_events(path, Tracer(enabled=True), MetricsRegistry())
        events = read_jsonl(path)
        assert [e["type"] for e in events] == ["meta", "metrics"]

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tr = Tracer(enabled=True)
        with tr.span("a"):
            pass
        write_events(path, tr, MetricsRegistry())
        for line in path.read_text().splitlines():
            json.loads(line)


class TestExport:
    def _spans(self):
        tr = Tracer(enabled=True)
        with tr.span("Discover", worker=1):
            pass
        with tr.span("ordering"):  # anonymous: main-thread lane
            with tr.span("Sort", worker=0):
                pass
        return tr.records()

    def test_lane_assignment_workers_first(self):
        lanes = lane_assignment(self._spans())
        assert lanes[0] == "worker 0"
        assert lanes[1] == "worker 1"
        assert lanes[2] == "thread 0"

    def test_spans_to_trace_events_leaves_only(self):
        events = spans_to_trace_events(self._spans())
        names = {e[2] for e in events}
        assert "ordering" not in names  # parent of Sort
        assert {"Discover", "Sort"} <= names

    def test_chrome_export_has_metadata_and_spans(self, tmp_path):
        p = tmp_path / "chrome.json"
        spans_to_chrome_tracing(self._spans(), p)
        events = json.loads(p.read_text())["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} >= {"worker 0", "worker 1"}
        assert len(spans) == 3
        assert all("dur_ns" in e["args"] for e in spans)

    def test_gantt_renders_lanes(self):
        out = spans_gantt(self._spans(), width=20)
        assert "wall-clock Gantt" in out
        assert "lanes:" in out

    def test_gantt_empty(self):
        assert spans_gantt([]) == "(empty trace)"

    def test_phase_totals_ms(self):
        totals = phase_totals_ms(self._spans())
        assert set(totals) == {"Discover", "ordering", "Sort"}


class TestInstrumentedApi:
    def test_phase_ns_always_populated(self, medium_grid):
        from repro.core.api import PHASES
        from repro.facade import reorder

        res = reorder(medium_grid, method="serial")
        assert set(res.phase_ns) == set(PHASES)
        assert res.phase_ns["ordering"] > 0
        assert res.wall_ms > 0

    def test_result_to_dict_is_json_serializable(self, medium_grid):
        from repro.facade import reorder

        res = reorder(medium_grid, method="batch-cpu", n_workers=2)
        payload = json.loads(json.dumps(res.to_dict()))
        assert payload["method"] == "batch-cpu"
        assert payload["stats"][0]["batches"]["generated"] > 0

    def test_api_spans_recorded_when_enabled(self, medium_grid):
        from repro.core.api import PHASES
        from repro.facade import reorder

        telemetry.enable()
        reorder(medium_grid, method="serial")
        names = {r.name for r in telemetry.get().tracer.records()}
        assert set(PHASES) <= names

    def test_disabled_leaves_no_trace(self, medium_grid):
        from repro.facade import reorder

        reorder(medium_grid, method="batch-cpu", n_workers=2)
        tel = telemetry.get()
        assert tel.tracer.records() == []
        assert tel.snapshot()["counters"] == {}

    def test_sim_counters_absorbed(self, medium_grid):
        from repro.facade import reorder

        telemetry.enable()
        res = reorder(medium_grid, method="batch-cpu", n_workers=2)
        counters = telemetry.get().snapshot()["counters"]
        assert counters["sim.batches.generated"] == res.stats[0].batches_generated
        assert counters["sim.speculation.discovered"] == \
            res.stats[0].nodes_discovered_speculatively


class TestInstrumentedThreads:
    def test_counters_match_runstats_semantics(self, medium_grid):
        from repro.core.serial import rcm_serial
        from repro.core.threads import rcm_threads

        telemetry.enable()
        perm = rcm_threads(medium_grid, 0, n_threads=4)
        assert np.array_equal(perm, rcm_serial(medium_grid, 0))
        counters = telemetry.get().snapshot()["counters"]
        n = medium_grid.n
        # every non-start node is claimed at least once; rediscovery can
        # only drop what speculation found
        assert counters["threads.speculation.discovered"] >= n - 1
        assert counters.get("threads.speculation.dropped", 0) <= \
            counters["threads.speculation.discovered"]
        assert counters["threads.batches.dequeued"] >= 1
        assert counters["threads.batches.generated"] >= \
            counters["threads.batches.dequeued"]

    def test_worker_spans_use_stage_names(self, medium_grid):
        from repro.core.threads import rcm_threads

        telemetry.enable()
        rcm_threads(medium_grid, 0, n_threads=2)
        recs = [r for r in telemetry.get().tracer.records()
                if r.worker is not None]
        assert recs, "worker spans missing"
        assert {r.name for r in recs} <= {
            "Discover", "Sort", "Rediscover", "Signal", "addNewBatches",
            "Stall",
        }

    def test_threads_silent_when_disabled(self, medium_grid):
        from repro.core.threads import rcm_threads

        rcm_threads(medium_grid, 0, n_threads=2)
        tel = telemetry.get()
        assert tel.tracer.records() == []
        assert tel.snapshot()["counters"] == {}


class TestInstrumentedSolver:
    def test_cg_counters(self):
        from repro.matrices import generators as g
        from repro.solver.cg import conjugate_gradient

        from tests.test_solver import spd_laplacian

        mat = spd_laplacian(g.grid2d(10, 10))
        telemetry.enable()
        res = conjugate_gradient(mat, np.ones(mat.n))
        counters = telemetry.get().snapshot()["counters"]
        assert counters["cg.iterations"] == res.iterations
        assert counters["cg.spmv"] == res.spmv_count


class TestCli:
    def test_profile_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        prefix = tmp_path / "prof"
        code = cli_main([
            "profile", "--matrix", "benzene", "--method", "threads",
            "--workers", "2", "-o", str(prefix),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        events = read_jsonl(f"{prefix}.jsonl")
        assert events[0]["type"] == "meta"
        assert any(e["type"] == "span" for e in events)
        chrome = json.loads((tmp_path / "prof.trace.json").read_text())
        phs = {e["ph"] for e in chrome["traceEvents"]}
        assert phs >= {"M", "X"}

    def test_reorder_json_flag(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main([
            "reorder", "--matrix", "benzene", "--method", "batch-cpu",
            "--workers", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "batch-cpu"
        assert payload["stats"][0]["batches"]["generated"] > 0
        assert set(payload["phase_ns"]) == {
            "validate", "transform", "components", "start-selection",
            "ordering", "assembly",
        }

    def test_reorder_telemetry_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "run.jsonl"
        code = cli_main([
            "reorder", "--matrix", "benzene", "--method", "threads",
            "--telemetry", str(path),
        ])
        assert code == 0
        assert "telemetry events" in capsys.readouterr().out
        assert read_jsonl(path)[0]["schema"] == SCHEMA


class TestRobustReadJsonl:
    """Satellite: crash-left tails must not poison later analysis."""

    def _write_with_garbage(self, path):
        with path.open("w") as fh:
            fh.write('{"type": "meta", "ok": 1}\n')
            fh.write("{not json at all\n")
            fh.write('{"type": "span", "ok": 2}\n')
            fh.write('{"type": "metrics", "truncat')  # torn tail, no newline

    def test_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_with_garbage(path)
        events = read_jsonl(path)
        assert [e["ok"] for e in events] == [1, 2]

    def test_skip_bumps_counter_even_while_disabled(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_with_garbage(path)
        assert not telemetry.get().enabled
        read_jsonl(path)
        counters = telemetry.get().snapshot()["counters"]
        assert counters["telemetry.jsonl.skipped"] == 2

    def test_clean_file_leaves_counter_untouched(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')  # blank line is fine
        assert len(read_jsonl(path)) == 2
        counters = telemetry.get().snapshot()["counters"]
        assert "telemetry.jsonl.skipped" not in counters

    def test_strict_mode_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_with_garbage(path)
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)


class TestHistogramQuantiles:
    """Satellite: quantiles are total functions over every histogram state."""

    def test_empty_histogram_quantiles_are_zero(self):
        h = MetricsRegistry().histogram("h")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.0

    def test_single_sample_is_every_quantile(self):
        h = MetricsRegistry().histogram("h")
        h.observe(42.5)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 42.5

    def test_quantile_rejects_out_of_range(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.quantile(-0.01)
        with pytest.raises(ValueError):
            h.quantile(1.01)

    def test_estimates_clamped_to_observed_range(self):
        h = MetricsRegistry().histogram("h", buckets=(10.0, 100.0))
        for v in (3.0, 4.0, 5.0):
            h.observe(v)
        # bucket midpoint would be 5.0+, never below min or above max
        for q in (0.0, 0.5, 1.0):
            assert 3.0 <= h.quantile(q) <= 5.0

    def test_median_lands_in_the_right_bucket(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 5.0, 50.0):
            h.observe(v)
        assert 1.0 <= h.quantile(0.5) <= 10.0


class TestDisabledAllocatesNothing:
    """Satellite: the disabled path must not build SpanRecord objects."""

    def test_disabled_span_is_the_shared_null_span(self):
        tel = telemetry.get()
        assert not tel.enabled
        assert tel.span("anything") is NULL_SPAN
        assert tel.span("other", worker=1, attr=2) is NULL_SPAN

    def test_disabled_threads_run_allocates_no_span_records(
        self, medium_grid, monkeypatch
    ):
        from repro.core import threads as threads_mod
        from repro.core.serial import rcm_serial
        from repro.telemetry import spans as spans_mod

        def _boom(*a, **k):
            raise AssertionError(
                "SpanRecord allocated while telemetry is disabled"
            )

        monkeypatch.setattr(spans_mod, "SpanRecord", _boom)
        assert not telemetry.get().enabled
        perm = threads_mod.rcm_threads(medium_grid, 0, n_threads=2)
        assert np.array_equal(perm, rcm_serial(medium_grid, 0))
        assert telemetry.get().tracer.records() == []
