"""Property tests for every matrix generator (Hypothesis).

``repro.matrices.generators`` promises, in its module docstring, that
every generator returns a pattern-only, **structurally symmetric** CSR
matrix with **sorted, duplicate-free** row indices, **no self loops**,
and — for the randomized ones — **bit-for-bit determinism** under a
fixed seed.  The scenario suite, the equivalence battery and the
power-law transformation all lean on those invariants, so this module
pins each one property-style across randomly drawn shape parameters
instead of a handful of hand-picked sizes.

Connectivity is asserted only where a generator documents it (grids,
caterpillars, the Watts–Strogatz ring backbone, preferential attachment,
full-density bands); geometric and R-MAT-style generators may legally
fragment.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.matrices import generators as g
from repro.matrices.kkt import nlpkkt_like
from repro.matrices.mycielski import mycielskian
from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import connected_components

# modest shapes + a bounded example count keep the whole module inside
# the fast tier-1 lane while still sweeping far more parameter space
# than fixed fixtures would
COMMON = settings(max_examples=20, deadline=None)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


# ----------------------------------------------------------------------
# shared invariant checks
# ----------------------------------------------------------------------
def _coo(mat: CSRMatrix):
    rows = np.repeat(
        np.arange(mat.n, dtype=np.int64), np.diff(mat.indptr)
    )
    return rows, mat.indices.astype(np.int64)


def assert_well_formed(mat: CSRMatrix) -> None:
    """Symmetric pattern, sorted deduped rows, no self loops."""
    assert mat.indptr.shape == (mat.n + 1,)
    assert mat.indptr[0] == 0 and mat.indptr[-1] == mat.nnz
    rows, cols = _coo(mat)
    assert cols.size == mat.nnz
    if mat.nnz == 0:
        return
    assert cols.min() >= 0 and cols.max() < mat.n

    # sorted + deduped: strictly increasing indices within every row
    same_row = rows[1:] == rows[:-1]
    assert np.all(np.diff(cols)[same_row] > 0), "row indices not sorted/deduped"

    # no self loops
    assert np.all(rows != cols), "diagonal entry present"

    # structural symmetry: the (row, col) multiset equals its transpose
    fwd = np.lexsort((cols, rows))
    bwd = np.lexsort((rows, cols))
    assert np.array_equal(rows[fwd], cols[bwd])
    assert np.array_equal(cols[fwd], rows[bwd])


def assert_connected(mat: CSRMatrix) -> None:
    count, _ = connected_components(mat)
    assert count == 1


# ----------------------------------------------------------------------
# regular structures
# ----------------------------------------------------------------------
class TestGrids:
    @COMMON
    @given(nx=st.integers(2, 12), ny=st.integers(2, 12),
           stencil=st.sampled_from([5, 9]))
    def test_grid2d(self, nx, ny, stencil):
        mat = g.grid2d(nx, ny, stencil=stencil)
        assert mat.n == nx * ny
        assert_well_formed(mat)
        assert_connected(mat)

    @COMMON
    @given(nx=st.integers(2, 6), ny=st.integers(2, 6),
           nz=st.integers(2, 6), stencil=st.sampled_from([7, 27]))
    def test_grid3d(self, nx, ny, nz, stencil):
        mat = g.grid3d(nx, ny, nz, stencil=stencil)
        assert mat.n == nx * ny * nz
        assert_well_formed(mat)
        assert_connected(mat)

    def test_grid_stencils_validated(self):
        with pytest.raises(ValueError):
            g.grid2d(4, 4, stencil=6)
        with pytest.raises(ValueError):
            g.grid3d(3, 3, 3, stencil=8)


class TestBanded:
    @COMMON
    @given(n=st.integers(4, 200), hb=st.integers(1, 12),
           density=st.floats(0.2, 1.0), seed=seeds)
    def test_banded(self, n, hb, density, seed):
        mat = g.banded(n, hb, density=density, seed=seed)
        assert_well_formed(mat)
        rows, cols = _coo(mat)
        if mat.nnz:
            assert int(np.abs(rows - cols).max()) <= hb

    @COMMON
    @given(n=st.integers(4, 200), hb=st.integers(1, 12))
    def test_full_density_band_is_connected(self, n, hb):
        assert_connected(g.banded(n, hb))

    def test_half_bandwidth_validated(self):
        with pytest.raises(ValueError):
            g.banded(10, 0)


class TestGeometric:
    @COMMON
    @given(n=st.integers(10, 150), k=st.integers(2, 6),
           aspect=st.floats(1.0, 40.0), seed=seeds)
    def test_random_geometric(self, n, k, aspect, seed):
        mat = g.random_geometric(n, k=k, aspect=aspect, seed=seed)
        assert mat.n == n
        assert_well_formed(mat)
        # every node keeps at least its k out-neighbours
        assert int(np.diff(mat.indptr).min()) >= 1

    @COMMON
    @given(n=st.integers(10, 200), seed=seeds)
    def test_delaunay_mesh(self, n, seed):
        mat = g.delaunay_mesh(n, seed=seed)
        assert_well_formed(mat)
        assert_connected(mat)  # a triangulation is connected

    @COMMON
    @given(n=st.integers(20, 200), seed=seeds)
    def test_road_network(self, n, seed):
        mat = g.road_network(n, seed=seed)
        assert_well_formed(mat)
        # low-valence regime is the generator's entire point
        assert float(np.diff(mat.indptr).mean()) < 10.0

    @COMMON
    @given(n=st.integers(20, 120), seed=seeds)
    def test_road_network_aspect_override(self, n, seed):
        default = g.road_network(n, seed=seed)
        wide = g.road_network(n, aspect=80.0, seed=seed)
        assert_well_formed(wide)
        assert wide.n == default.n


class TestPowerLaw:
    @COMMON
    @given(scale=st.integers(3, 8), ef=st.integers(2, 8), seed=seeds)
    def test_rmat(self, scale, ef, seed):
        mat = g.rmat(scale, ef, seed=seed)
        assert mat.n == 1 << scale
        assert_well_formed(mat)

    @COMMON
    @given(power=st.integers(3, 8), ef=st.integers(2, 8), seed=seeds)
    def test_kronecker(self, power, ef, seed):
        mat = g.kronecker(power, edge_factor=ef, seed=seed)
        assert mat.n == 1 << power
        assert_well_formed(mat)

    def test_kronecker_initiator_validated(self):
        with pytest.raises(ValueError):
            g.kronecker(4, initiator=((0.0, 0.0), (0.0, 0.0)))

    @COMMON
    @given(n=st.integers(8, 150), m=st.integers(1, 5), seed=seeds)
    def test_powerlaw_cluster(self, n, m, seed):
        mat = g.powerlaw_cluster(n, min(m, n - 1), seed=seed)
        assert_well_formed(mat)
        assert_connected(mat)  # every new node attaches to existing ones

    def test_powerlaw_cluster_m_validated(self):
        with pytest.raises(ValueError):
            g.powerlaw_cluster(5, 0)
        with pytest.raises(ValueError):
            g.powerlaw_cluster(5, 5)


class TestSmallWorld:
    @COMMON
    @given(n=st.integers(5, 200), k=st.integers(2, 8),
           p=st.floats(0.0, 1.0), seed=seeds)
    def test_watts_strogatz(self, n, k, p, seed):
        k = min(k, n - 1)
        mat = g.watts_strogatz(n, k, p, seed=seed)
        assert mat.n == n
        assert_well_formed(mat)
        assert_connected(mat)  # the documented ring-backbone guarantee

    @COMMON
    @given(n=st.integers(10, 100), k=st.integers(2, 6), seed=seeds)
    def test_watts_strogatz_p0_is_a_ring(self, n, k, seed):
        k = min(k, n - 1)
        mat = g.watts_strogatz(n, k, 0.0, seed=seed)
        # with no rewiring the pattern is the pure circulant ring:
        # every node sees offsets +-1 .. +-(k // 2 or 1)
        half = max(k // 2, 1)
        degrees = np.diff(mat.indptr)
        expected = min(2 * half, n - 1)
        assert np.all(degrees == expected)

    def test_watts_strogatz_params_validated(self):
        with pytest.raises(ValueError):
            g.watts_strogatz(10, 1)  # k < 2
        with pytest.raises(ValueError):
            g.watts_strogatz(10, 10)  # k >= n
        with pytest.raises(ValueError):
            g.watts_strogatz(10, 4, -0.1)
        with pytest.raises(ValueError):
            g.watts_strogatz(10, 4, 1.5)


class TestSkewsAndComposites:
    @COMMON
    @given(n=st.integers(30, 300), n_hubs=st.integers(1, 5),
           frac=st.floats(0.1, 0.9), seed=seeds)
    def test_hub_matrix(self, n, n_hubs, frac, seed):
        mat = g.hub_matrix(
            n, n_hubs=n_hubs, hub_degree_frac=frac, seed=seed
        )
        assert_well_formed(mat)
        # the max valence must dominate the mean — that is the point
        degrees = np.diff(mat.indptr)
        assert degrees.max() >= frac * n * 0.5

    @COMMON
    @given(blocks=st.integers(1, 6), block=st.integers(2, 10),
           coupling=st.integers(0, 3), seed=seeds)
    def test_block_dense(self, blocks, block, coupling, seed):
        mat = g.block_dense(blocks, block, coupling=coupling, seed=seed)
        assert mat.n == blocks * block
        assert_well_formed(mat)

    @COMMON
    @given(cams=st.integers(4, 40), pts=st.integers(4, 120),
           obs=st.integers(1, 6), seed=seeds)
    def test_bundle_adjustment(self, cams, pts, obs, seed):
        mat = g.bundle_adjustment(
            cams, pts, observations_per_point=obs, seed=seed
        )
        assert mat.n == cams + pts
        assert_well_formed(mat)

    @COMMON
    @given(spine=st.integers(2, 40), legs=st.integers(1, 6))
    def test_caterpillar(self, spine, legs):
        mat = g.caterpillar(spine, legs)
        assert mat.n == spine * (1 + legs)
        assert_well_formed(mat)
        assert_connected(mat)

    @COMMON
    @given(k=st.integers(2, 7))
    def test_mycielskian(self, k):
        mat = mycielskian(k)
        assert_well_formed(mat)
        assert_connected(mat)

    @COMMON
    @given(m=st.integers(2, 12), seed=seeds)
    def test_nlpkkt_like(self, m, seed):
        mat = nlpkkt_like(m, seed=seed)
        assert_well_formed(mat)


class TestDeterminism:
    """Same seed -> byte-identical structure, for every randomized
    generator.  The scenario registry, cache keys and golden tests all
    assume this."""

    CASES = {
        "banded": lambda s: g.banded(60, 4, density=0.7, seed=s),
        "random_geometric": lambda s: g.random_geometric(80, k=4, seed=s),
        "delaunay_mesh": lambda s: g.delaunay_mesh(80, seed=s),
        "rmat": lambda s: g.rmat(6, 4, seed=s),
        "kronecker": lambda s: g.kronecker(6, edge_factor=4, seed=s),
        "powerlaw_cluster": lambda s: g.powerlaw_cluster(60, 3, seed=s),
        "watts_strogatz": lambda s: g.watts_strogatz(60, 4, 0.2, seed=s),
        "hub_matrix": lambda s: g.hub_matrix(60, n_hubs=2, seed=s),
        "block_dense": lambda s: g.block_dense(3, 8, seed=s),
        "road_network": lambda s: g.road_network(80, seed=s),
        "bundle_adjustment": lambda s: g.bundle_adjustment(8, 40, seed=s),
        "nlpkkt_like": lambda s: nlpkkt_like(6, seed=s),
    }

    @COMMON
    @given(seed=seeds, name=st.sampled_from(sorted(CASES)))
    def test_same_seed_same_bytes(self, seed, name):
        build = self.CASES[name]
        a, b = build(seed), build(seed)
        assert a.n == b.n
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_different_seeds_differ(self, name):
        build = self.CASES[name]
        a, b = build(1), build(2)
        assert (
            not np.array_equal(a.indices, b.indices)
            or not np.array_equal(a.indptr, b.indptr)
        )
