"""Unit tests for the discrete-event engine."""

import pytest

from repro.machine.engine import Engine, DeadlockError, SimulationError
from repro.machine.stats import RunStats, Stage


def make_engine(n, **kw):
    return Engine(n, RunStats(n_workers=n), **kw)


class TestBasics:
    def test_single_worker_cost_accumulates(self):
        eng = make_engine(1)

        def w():
            yield ("cost", Stage.DISCOVER, 100.0)
            yield ("cost", Stage.SORT, 50.0)

        makespan = eng.run([w()])
        assert makespan == pytest.approx(150.0)
        agg = eng.stats.aggregate()
        assert agg.cycles[Stage.DISCOVER] == pytest.approx(100.0)
        assert agg.cycles[Stage.SORT] == pytest.approx(50.0)

    def test_makespan_is_max_over_workers(self):
        eng = make_engine(2)

        def w(c):
            def gen():
                yield ("cost", Stage.DISCOVER, c)
            return gen()

        assert eng.run([w(100.0), w(250.0)]) == pytest.approx(250.0)

    def test_time_ordered_interleaving(self):
        """Shared-state mutations happen in global cycle order."""
        eng = make_engine(2)
        log = []

        def worker(wid, costs):
            def gen():
                for c in costs:
                    log.append((eng.now, wid))
                    yield ("cost", Stage.OTHER, c)
            return gen()

        eng.run([worker(0, [10, 10, 10]), worker(1, [25, 25])])
        times = [t for t, _ in log]
        assert times == sorted(times)

    def test_worker_count_mismatch(self):
        eng = make_engine(2)
        with pytest.raises(ValueError):
            eng.run([iter(())])


class TestWaiting:
    def test_wait_wakes_on_state_change(self):
        eng = make_engine(2)
        box = {"ready": False}

        def setter():
            yield ("cost", Stage.OTHER, 100.0)
            box["ready"] = True
            yield ("cost", Stage.OTHER, 20.0)

        def waiter():
            yield ("wait", lambda: box["ready"])
            yield ("cost", Stage.OTHER, 5.0)

        eng.run([setter(), waiter()])
        # waiter stalls until the setter's mutation completes at t=120
        stall = eng.stats.per_worker[1].cycles[Stage.STALL]
        assert stall == pytest.approx(120.0)

    def test_true_predicate_does_not_stall(self):
        eng = make_engine(1)

        def w():
            yield ("wait", lambda: True)
            yield ("cost", Stage.OTHER, 1.0)

        eng.run([w()])
        assert eng.stats.per_worker[0].cycles.get(Stage.STALL, 0.0) == 0.0

    def test_deadlock_detected(self):
        eng = make_engine(1)

        def w():
            yield ("wait", lambda: False)

        with pytest.raises(DeadlockError):
            eng.run([w()])

    def test_deadlock_two_workers(self):
        eng = make_engine(2)

        def w():
            yield ("cost", Stage.OTHER, 10.0)
            yield ("wait", lambda: False)

        with pytest.raises(DeadlockError):
            eng.run([w(), w()])

    def test_wake_at_finish(self):
        """A worker's StopIteration can satisfy a waiter."""
        eng = make_engine(2)
        done = []

        def finisher():
            yield ("cost", Stage.OTHER, 30.0)
            done.append(True)

        def waiter():
            yield ("wait", lambda: bool(done))

        eng.run([finisher(), waiter()])  # must not deadlock


class TestJitter:
    def test_deterministic_given_seed(self):
        def make():
            def w():
                for _ in range(10):
                    yield ("cost", Stage.OTHER, 100.0)
            return [w()]

        a = make_engine(1, jitter=0.5, seed=42)
        b = make_engine(1, jitter=0.5, seed=42)
        assert a.run(make()) == pytest.approx(b.run(make()))

    def test_different_seeds_differ(self):
        def make():
            def w():
                for _ in range(10):
                    yield ("cost", Stage.OTHER, 100.0)
            return [w()]

        a = make_engine(1, jitter=0.5, seed=1)
        b = make_engine(1, jitter=0.5, seed=2)
        assert a.run(make()) != pytest.approx(b.run(make()))

    def test_zero_jitter_exact(self):
        eng = make_engine(1, jitter=0.0, seed=7)

        def w():
            yield ("cost", Stage.OTHER, 100.0)

        assert eng.run([w()]) == pytest.approx(100.0)


class TestLimits:
    def test_step_budget(self):
        eng = make_engine(1, max_steps=10)

        def w():
            while True:
                yield ("cost", Stage.OTHER, 1.0)

        with pytest.raises(SimulationError):
            eng.run([w()])

    def test_needs_one_worker(self):
        with pytest.raises(ValueError):
            Engine(0)

    def test_trace_records_events(self):
        eng = make_engine(1, trace=True)

        def w():
            yield ("cost", Stage.SORT, 10.0)

        eng.run([w()])
        assert eng.trace == [(0.0, 0, "Sort", 10.0)]
