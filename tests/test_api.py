"""Tests for the public API (component handling, methods, validation)."""

import numpy as np
import pytest

from repro.core.api import METHODS

from repro.facade import reorder
from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.validate import assert_permutation
from repro.matrices import generators as g

# Cross-method permutation equivalence lives in test_equivalence_matrix.py:
# one golden battery over every matrix x every execution method.


class TestComponents:
    def test_permutation_is_bijection(self, two_triangles):
        res = reorder(two_triangles, method="serial")
        assert_permutation(res.permutation, two_triangles.n)

    def test_isolated_nodes_kept(self):
        mat = CSRMatrix.from_edges(5, [(1, 2)])
        res = reorder(mat, method="serial")
        assert_permutation(res.permutation, 5)
        assert res.n_components == 4

    def test_component_sizes(self, two_triangles):
        res = reorder(two_triangles, method="serial")
        assert res.component_sizes == [3, 3]

    def test_each_component_reversed_within_itself(self, two_triangles):
        res = reorder(two_triangles, method="serial")
        # first block must contain component of node 0
        first = set(res.permutation[:3].tolist())
        assert first == {0, 1, 2}


class TestStartSelection:
    def test_explicit_start(self, medium_grid):
        res = reorder(medium_grid, method="serial", start=5)
        assert res.start_nodes == [5]
        assert res.permutation[-1] == 5  # RCM: start node ends up last

    def test_explicit_start_needs_connected(self, two_triangles):
        with pytest.raises(ValueError, match="connected"):
            reorder(two_triangles, method="serial", start=0)

    def test_min_valence_default(self, star):
        res = reorder(star, method="serial")
        assert res.start_nodes[0] != 0  # centre has max valence

    def test_peripheral_strategy(self, medium_grid):
        res = reorder(medium_grid, method="serial", start="peripheral")
        assert_permutation(res.permutation, medium_grid.n)

    def test_unknown_strategy(self, medium_grid):
        with pytest.raises(ValueError, match="strategy"):
            reorder(medium_grid, method="serial", start="magic")


class TestValidation:
    def test_unknown_method(self, small_grid):
        with pytest.raises(ValueError, match="method"):
            reorder(small_grid, method="quantum")

    def test_asymmetric_rejected(self):
        mat = coo_to_csr(3, [0], [1])
        with pytest.raises(ValueError, match="symmetric"):
            reorder(mat, method="serial")

    def test_symmetrize_flag(self):
        mat = coo_to_csr(3, [0, 1], [1, 2])
        res = reorder(mat, method="serial", symmetrize=True)
        assert_permutation(res.permutation, 3)


class TestResult:
    def test_bandwidths_recorded(self, medium_grid):
        rng = np.random.default_rng(2)
        shuffled = medium_grid.permute_symmetric(rng.permutation(medium_grid.n))
        res = reorder(shuffled, method="serial")
        assert res.initial_bandwidth > res.reordered_bandwidth

    def test_bandwidth_matches_applied_permutation(self, medium_grid):
        from repro.sparse.bandwidth import bandwidth

        res = reorder(medium_grid, method="serial")
        applied = medium_grid.permute_symmetric(res.permutation)
        assert bandwidth(applied) == res.reordered_bandwidth

    def test_methods_constant_lists_all(self):
        assert set(METHODS) == {
            "serial", "vectorized", "parallel", "leveled", "unordered",
            "algebraic", "batch-basic", "batch-cpu", "batch-gpu", "threads",
        }

    def test_batch_methods_attach_stats(self, small_grid):
        res = reorder(small_grid, method="batch-cpu")
        assert len(res.stats) == 1
        assert res.stats[0].batches_executed > 0
