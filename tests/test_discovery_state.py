"""Unit tests for the batch-RCM internals: state, discovery, signalCount.

The integration suite proves end-to-end equivalence with serial RCM; these
tests pin down the individual mechanisms so a regression is localized.
"""

import numpy as np
import pytest

from repro.core.state import make_state, UNDISCOVERED
from repro.core.discovery import discover, rediscover, sort_children
from repro.core.batch import _signal_count, batch_task
from repro.core.batches import BatchConfig
from repro.machine.signals import SignalState, SignalPayload
from repro.machine.workqueue import BatchSlot
from repro.sparse.csr import CSRMatrix
from repro.matrices import generators as g


def star_state(workers=1):
    mat = CSRMatrix.from_edges(6, [(0, i) for i in range(1, 6)])
    return mat, make_state(mat, 0, n_workers=workers)


class TestMakeState:
    def test_start_prewritten(self):
        _, state = star_state()
        assert state.out[0] == 0
        assert state.written == 1
        assert state.marks[0] == -1
        assert all(state.marks[1:] == UNDISCOVERED)

    def test_slot_zero_filled(self):
        _, state = star_state()
        slot = state.queue.take_next()
        assert slot.index == 0
        assert (slot.out_start, slot.out_end) == (0, 1)

    def test_bootstrap_signal(self):
        _, state = star_state()
        assert state.signals.incoming_state(0) == SignalState.COMPLETED
        payload = state.signals.incoming_payload(0)
        assert payload.out_next == 1
        assert payload.queue_next == 1

    def test_component_total_counted(self):
        mat = CSRMatrix.from_edges(6, [(0, 1), (2, 3), (3, 4)])
        state = make_state(mat, 2, n_workers=1)
        assert state.total == 3

    def test_isolated_start_terminates_immediately(self):
        mat = CSRMatrix.from_edges(3, [(1, 2)])
        state = make_state(mat, 0, n_workers=1)
        assert state.queue.done
        assert np.array_equal(state.permutation(), [0])

    def test_incomplete_permutation_rejected(self):
        _, state = star_state()
        with pytest.raises(RuntimeError, match="incomplete"):
            state.permutation()

    def test_write_output_triggers_termination(self):
        _, state = star_state()
        state.write_output(1, np.array([1, 2, 3, 4, 5]))
        assert state.queue.done
        assert state.written == 6


class TestDiscover:
    def test_claims_unvisited_children(self):
        _, state = star_state()
        children = discover(state, 0, np.array([0]))
        assert sorted(children.nodes.tolist()) == [1, 2, 3, 4, 5]
        assert all(state.marks[1:] == 0)
        assert children.n_edges == 5
        assert children.max_children == 5

    def test_respects_earlier_marks(self):
        _, state = star_state()
        state.marks[2] = -1  # owned by the virtual predecessor
        children = discover(state, 0, np.array([0]))
        assert 2 not in children.nodes.tolist()

    def test_overwrites_later_marks(self):
        _, state = star_state()
        state.marks[3] = 7  # a later batch claimed speculatively
        children = discover(state, 0, np.array([0]))
        assert 3 in children.nodes.tolist()
        assert state.marks[3] == 0

    def test_first_parent_in_batch_wins(self):
        # nodes 1 and 2 both adjacent to 3; both are parents of one batch
        mat = CSRMatrix.from_edges(4, [(1, 3), (2, 3), (0, 1), (0, 2)])
        state = make_state(mat, 0, n_workers=1)
        state.out[1:3] = [1, 2]
        children = discover(state, 1, np.array([1, 2]))
        assert children.nodes.tolist() == [3]
        assert children.parent_pos.tolist() == [0]  # credited to parent 1

    def test_counts_speculative_stat(self):
        _, state = star_state()
        discover(state, 0, np.array([0]))
        assert state.stats.nodes_discovered_speculatively == 5


class TestRediscover:
    def test_drops_stolen_nodes(self):
        _, state = star_state()
        children = discover(state, 3, np.array([0]))
        # an earlier batch steals two children
        state.marks[1] = 1
        state.marks[2] = 2
        checked = rediscover(state, 3, children, compact=True)
        assert checked == 5
        assert sorted(children.nodes.tolist()) == [3, 4, 5]
        assert state.stats.nodes_dropped_by_rediscovery == 2

    def test_lazy_mode_flags_without_compacting(self):
        _, state = star_state()
        children = discover(state, 3, np.array([0]))
        state.marks[1] = 0
        rediscover(state, 3, children, compact=False)
        assert children.nodes.size == 5  # still stored
        assert children.n_alive == 4
        assert sorted(children.alive_nodes().tolist()) == [2, 3, 4, 5]

    def test_own_marks_survive(self):
        _, state = star_state()
        children = discover(state, 2, np.array([0]))
        rediscover(state, 2, children, compact=True)
        assert children.n_alive == 5


class TestSortChildren:
    def test_orders_by_parent_then_valence(self):
        _, state = star_state()
        children = discover(state, 0, np.array([0]))
        # give children distinct fake valences, reversed
        children.valences = np.array([5, 4, 3, 2, 1])
        sort_children(state, children)
        assert children.valences.tolist() == [1, 2, 3, 4, 5]
        assert children.nodes.tolist() == [5, 4, 3, 2, 1]

    def test_stable_on_ties(self):
        _, state = star_state()
        children = discover(state, 0, np.array([0]))
        sort_children(state, children)  # all valences equal (1)
        assert children.nodes.tolist() == [1, 2, 3, 4, 5]  # adjacency order

    def test_parent_grouping_dominates(self):
        mat = g.grid2d(4, 4)
        state = make_state(mat, 0, n_workers=1)
        children = discover(state, 0, np.array([0]))
        state.out[1 : 1 + children.n_alive] = children.nodes
        second = discover(state, 1, state.out[1:3])
        sort_children(state, second)
        assert np.all(np.diff(second.parent_pos) >= 0)

    def test_counts_sorted_elements(self):
        _, state = star_state()
        children = discover(state, 0, np.array([0]))
        sort_children(state, children)
        assert state.stats.sorted_elements == 5


class TestSignalCount:
    def make(self, n_children=5):
        mat, state = star_state()
        slot = state.queue.take_next()
        children = discover(state, 0, np.array([0]))
        children.valences = np.ones(children.n_found, dtype=np.int64)
        return state, slot, children

    def test_requires_incoming_counted(self):
        state, slot, children = self.make()
        # fabricate slot 1 so incoming of slot 1 is NONE
        state.queue.fill(1, 1, 3)
        slot1 = state.queue.take_next()
        assert _signal_count(state, BatchConfig(), slot1, children) is None

    def test_reserves_queue_slots(self):
        state, slot, children = self.make()
        cfg = BatchConfig(batch_size=2)
        plan = _signal_count(state, cfg, slot, children)
        assert plan is not None
        assert plan.k == 3  # ceil(5 / 2)
        assert plan.queue_start == 1
        payload = state.signals.incoming_payload(1)
        assert payload.out_next == 6
        assert payload.queue_next == 4

    def test_no_children_signals_completed(self):
        state, slot, children = self.make()
        children.alive[:] = False
        plan = _signal_count(state, BatchConfig(), slot, children)
        assert plan.k == 0
        assert not plan.forward
        assert state.signals.outgoing_state(0) == SignalState.COMPLETED

    def test_forward_requires_successor(self):
        state, slot, children = self.make()
        # single child, batch 64: would forward, but no successor slot exists
        children.alive[1:] = False
        plan = _signal_count(state, BatchConfig(), slot, children)
        assert not plan.forward
        assert plan.k == 1

    def test_overhang_payload(self):
        mat = g.grid2d(6, 6)
        state = make_state(mat, 0, n_workers=1)
        slot0 = state.queue.take_next()
        kids = discover(state, 0, np.array([0]))
        cfg = BatchConfig(batch_size=1)  # every child its own batch
        plan0 = _signal_count(state, cfg, slot0, kids)
        assert plan0.k == kids.n_alive
        # process slot 1 with zero children -> it should forward nothing,
        # but with one tiny child it forwards
        state.write_output(plan0.out_start, kids.alive_nodes())
        # build fake slot 1 holding the first child
        state.queue.fill(plan0.queue_start, 1, 2)
        for _ in range(plan0.k - 1):
            state.queue.fill(
                plan0.queue_start + 1 + _, 0, 0, empty=True
            )
        slot1 = state.queue.take_next()
        kids1 = discover(state, slot1.index, state.out[1:2])
        cfg2 = BatchConfig(batch_size=8)
        plan1 = _signal_count(state, cfg2, slot1, kids1)
        if plan1.forward:
            payload = state.signals.incoming_payload(slot1.index + 1)
            assert payload.has_overhang()
            assert payload.overhang_nodes == plan1.count


class TestBatchTaskProtocol:
    def test_empty_slot_forwards_chain(self):
        """An empty (padding) batch still runs the protocol and signals."""
        from repro.machine.costmodel import CPUCostModel
        from repro.machine.engine import Engine
        from repro.machine.stats import RunStats

        mat, state = star_state()
        slot0 = state.queue.take_next()
        # run batch 0 manually to completion via a tiny engine
        model = CPUCostModel()
        engine = Engine(1, state.stats)

        def w():
            yield from batch_task(state, BatchConfig(), model, engine, slot0)

        engine.run([w()])
        assert state.signals.outgoing_state(0) >= SignalState.COMPLETED
        assert state.written == 6
