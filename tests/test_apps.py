"""Tests for the cache model and SpMV locality analysis."""

import numpy as np
import pytest

from repro.apps.cachemodel import CacheModel, CacheStats
from repro.apps.spmv import (
    spmv_gather_stream,
    spmv_cache_stats,
    locality_report,
)
from repro.matrices import generators as g
from repro.facade import reorder


class TestCacheModel:
    def test_empty_stream(self):
        assert CacheModel().simulate(np.array([], dtype=np.int64)).accesses == 0

    def test_sequential_stream_misses_once_per_line(self):
        m = CacheModel(sets=16, ways=1, line_bytes=64, element_bytes=8)
        stream = np.arange(128)
        stats = m.simulate(stream)
        assert stats.misses == 128 // m.elements_per_line

    def test_repeated_access_hits(self):
        m = CacheModel(sets=4, ways=2)
        stats = m.simulate(np.zeros(100, dtype=np.int64))
        assert stats.misses == 1
        assert stats.hits == 99

    def test_conflict_misses_direct_mapped(self):
        # two lines mapping to the same set alternate: every access misses
        m = CacheModel(sets=4, ways=1, line_bytes=8, element_bytes=8)
        a, b = 0, 4  # line numbers 0 and 4 share set 0
        stream = np.array([a, b] * 20)
        stats = m.simulate(stream)
        assert stats.misses == 40

    def test_associativity_absorbs_conflicts(self):
        m = CacheModel(sets=4, ways=2, line_bytes=8, element_bytes=8)
        stream = np.array([0, 4] * 20)
        stats = m.simulate(stream)
        assert stats.misses == 2  # only the cold misses

    def test_lru_eviction_order(self):
        m = CacheModel(sets=1, ways=2, line_bytes=8, element_bytes=8)
        # access 0,1 (fill), then 2 (evict 0), then 0 again (miss)
        stats = m.simulate(np.array([0, 1, 2, 0]))
        assert stats.misses == 4

    def test_lru_keeps_recent(self):
        m = CacheModel(sets=1, ways=2, line_bytes=8, element_bytes=8)
        # 0,1, touch 0, then 2 evicts 1 (LRU), 0 still hits
        stats = m.simulate(np.array([0, 1, 0, 2, 0]))
        assert stats.misses == 3

    def test_compulsory_lower_bound(self):
        m = CacheModel(sets=2, ways=1)
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 10_000, size=5000)
        assert m.simulate(stream).misses >= m.compulsory_misses(stream)

    def test_capacity_bytes(self):
        m = CacheModel(sets=64, ways=8, line_bytes=64)
        assert m.capacity_bytes == 32 * 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheModel(sets=0)
        with pytest.raises(ValueError):
            CacheModel(line_bytes=10, element_bytes=8)

    def test_miss_rate(self):
        s = CacheStats(accesses=10, misses=4)
        assert s.miss_rate == pytest.approx(0.4)
        assert CacheStats(0, 0).miss_rate == 0.0


class TestSpmvLocality:
    def test_gather_stream_is_indices(self, small_grid):
        assert np.array_equal(spmv_gather_stream(small_grid), small_grid.indices)

    def test_banded_matrix_caches_well(self):
        band = g.banded(2000, 4)
        rng = np.random.default_rng(0)
        scrambled = band.permute_symmetric(rng.permutation(band.n))
        model = CacheModel(sets=64, ways=1)
        assert spmv_cache_stats(band, model).misses < (
            spmv_cache_stats(scrambled, model).misses / 3
        )

    def test_locality_report_improves_after_rcm(self):
        mat = g.grid2d(40, 40)
        rng = np.random.default_rng(1)
        scrambled = mat.permute_symmetric(rng.permutation(mat.n))
        res = reorder(scrambled, method="serial")
        # cache smaller than the x vector, else everything fits and the
        # orderings tie at compulsory misses
        small_cache = CacheModel(sets=16, ways=2)
        rep = locality_report(scrambled, res.permutation, small_cache)
        assert rep.bandwidth_after < rep.bandwidth_before
        assert rep.misses_after < rep.misses_before
        assert rep.miss_reduction > 1.0

    def test_report_accounting(self, small_grid):
        rep = locality_report(small_grid, np.arange(small_grid.n))
        assert rep.accesses == small_grid.nnz
        assert rep.misses_before == rep.misses_after  # identity permutation
