"""Property-based tests (hypothesis) on core invariants.

The central property: *every* execution strategy — leveled, unordered,
simulated batch under arbitrary worker counts, configurations and
interleavings — produces exactly the serial RCM permutation on arbitrary
symmetric graphs.  Plus structural properties of the CSR substrate and the
batch planner.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.bandwidth import bandwidth, bandwidth_after
from repro.sparse.graph import bfs_levels
from repro.sparse.validate import assert_permutation
from repro.core.serial import cuthill_mckee, rcm_serial
from repro.core.leveled import rcm_leveled
from repro.core.unordered import rcm_unordered
from repro.core.batch import run_batch_rcm
from repro.core.batches import (
    BatchConfig,
    clamped_valences,
    estimate_batch_count,
    plan_ranges,
)
from repro.machine.costmodel import CPUCostModel

MODEL = CPUCostModel()

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def symmetric_graphs(draw, max_n=40):
    """Arbitrary symmetric pattern with at least one edge from node 0."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    n_edges = draw(st.integers(min_value=1, max_value=3 * n))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=1,
            max_size=n_edges,
        )
    )
    # guarantee node 0 has a neighbour so the component is non-trivial
    edges.append((0, draw(st.integers(min_value=1, max_value=n - 1))))
    rows = np.array([e[0] for e in edges] + [e[1] for e in edges])
    cols = np.array([e[1] for e in edges] + [e[0] for e in edges])
    keep = rows != cols
    return coo_to_csr(n, rows[keep], cols[keep])


class TestSerialProperties:
    @given(mat=symmetric_graphs())
    @settings(**SETTINGS)
    def test_cm_is_bfs_respecting_bijection(self, mat):
        cm = cuthill_mckee(mat, 0)
        reached = np.flatnonzero(bfs_levels(mat, 0) >= 0)
        assert sorted(cm.tolist()) == reached.tolist()
        levels = bfs_levels(mat, 0)[cm]
        assert np.all(np.diff(levels) >= 0)

    @given(mat=symmetric_graphs())
    @settings(**SETTINGS)
    def test_rcm_reverses_cm(self, mat):
        assert np.array_equal(rcm_serial(mat, 0), cuthill_mckee(mat, 0)[::-1])


class TestParallelEquivalence:
    @given(
        mat=symmetric_graphs(),
        workers=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(**SETTINGS)
    def test_batch_equals_serial_any_schedule(self, mat, workers, seed):
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm(
            mat, 0, model=MODEL, n_workers=workers, jitter=0.9, seed=seed
        )
        assert np.array_equal(res.permutation, ref)

    @given(
        mat=symmetric_graphs(),
        batch_size=st.integers(min_value=1, max_value=16),
        temp=st.integers(min_value=4, max_value=64),
        overhang=st.booleans(),
        early=st.booleans(),
        multibatch=st.integers(min_value=1, max_value=3),
    )
    @settings(**SETTINGS)
    def test_batch_equals_serial_any_config(
        self, mat, batch_size, temp, overhang, early, multibatch
    ):
        cfg = BatchConfig(
            batch_size=batch_size,
            temp_limit=temp,
            overhang=overhang,
            early_signaling=early,
            multibatch=multibatch,
        )
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm(mat, 0, model=MODEL, n_workers=3, config=cfg)
        assert np.array_equal(res.permutation, ref)

    @given(mat=symmetric_graphs())
    @settings(**SETTINGS)
    def test_leveled_and_unordered_equal_serial(self, mat):
        ref = rcm_serial(mat, 0)
        assert np.array_equal(rcm_leveled(mat, 0).permutation, ref)
        assert np.array_equal(rcm_unordered(mat, 0).permutation, ref)


class TestCSRProperties:
    @given(mat=symmetric_graphs())
    @settings(**SETTINGS)
    def test_transpose_involution(self, mat):
        tt = mat.transpose().transpose()
        assert np.array_equal(tt.indptr, mat.indptr)
        assert np.array_equal(np.sort(tt.indices), np.sort(mat.indices))

    @given(mat=symmetric_graphs(), seed=st.integers(min_value=0, max_value=999))
    @settings(**SETTINGS)
    def test_permute_preserves_structure(self, mat, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(mat.n)
        p = mat.permute_symmetric(perm)
        assert p.nnz == mat.nnz
        assert sorted(p.degrees().tolist()) == sorted(mat.degrees().tolist())

    @given(mat=symmetric_graphs(), seed=st.integers(min_value=0, max_value=999))
    @settings(**SETTINGS)
    def test_bandwidth_after_matches_materialized(self, mat, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(mat.n)
        assert bandwidth_after(mat, perm) == bandwidth(mat.permute_symmetric(perm))


class TestPlannerProperties:
    @given(
        vals=st.lists(st.integers(min_value=1, max_value=100), min_size=0, max_size=150),
        batch_size=st.integers(min_value=1, max_value=20),
        temp=st.integers(min_value=1, max_value=120),
        gpu=st.booleans(),
    )
    @settings(**SETTINGS)
    def test_plan_covers_and_respects_reservation(self, vals, batch_size, temp, gpu):
        cfg = BatchConfig(batch_size=batch_size, temp_limit=temp, gpu_planning=gpu)
        arr = clamped_valences(np.asarray(vals, dtype=np.int64), temp)
        k = estimate_batch_count(len(vals), int(arr.sum()), cfg)
        ranges = plan_ranges(arr, k, cfg)
        assert len(ranges) == k
        pos = 0
        covered = 0
        for a, b in ranges:
            assert a == pos or a == b  # contiguous (empties repeat position)
            assert b >= a
            pos = max(pos, b)
            covered += b - a
            if not gpu:
                assert b - a <= batch_size
            elif b - a > 1:
                assert int(arr[a:b].sum()) <= temp
        assert covered == len(vals)
        assert pos == len(vals) or len(vals) == 0


class TestApiProperties:
    @given(mat=symmetric_graphs(max_n=25))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_api_returns_bijection_all_methods(self, mat):
        from repro.facade import reorder

        ref = reorder(mat, method="serial")
        assert_permutation(ref.permutation, mat.n)
        for method in ("leveled", "unordered", "batch-cpu"):
            got = reorder(mat, method=method)
            assert np.array_equal(got.permutation, ref.permutation)
