"""Tests for cross-boundary request tracing (``repro.telemetry.context``).

Covers context creation/activation semantics, trace-id stamping on spans,
worker-report merging (id renumbering, re-parenting, lane/pid attribution,
counter-delta accumulation), and the PR's acceptance invariant: a
``method="parallel"`` multi-component reorder through ``ReorderService``
yields ONE coherent trace — worker-process spans merged under the
request's ``trace_id``, exportable as a single Chrome trace.
"""

import json
import os

import numpy as np
import pytest

from repro import telemetry
from repro.matrices import generators as g
from repro.sparse.csr import CSRMatrix
from repro.telemetry import context as tctx
from repro.telemetry.spans import SpanRecord


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


def _block_diag(blocks):
    """Disconnected union of square patterns (multi-component inputs)."""
    n = sum(b.n for b in blocks)
    edges = []
    base = 0
    for b in blocks:
        for u in range(b.n):
            for v in b.indices[b.indptr[u]:b.indptr[u + 1]]:
                if u < v:
                    edges.append((base + u, base + int(v)))
        base += b.n
    return CSRMatrix.from_edges(n, edges)


class TestTraceContext:
    def test_new_context_ids(self):
        ctx = tctx.new_trace_context()
        assert len(ctx.trace_id) == 16
        assert ctx.request_id == ctx.trace_id
        assert ctx.parent_span_id is None
        named = tctx.new_trace_context(request_id="req-7")
        assert named.request_id == "req-7"
        assert named.trace_id != ctx.trace_id

    def test_activation_is_scoped_and_restores(self):
        assert tctx.current_trace() is None
        ctx = tctx.new_trace_context()
        with tctx.activate(ctx):
            assert tctx.current_trace() is ctx
            inner = tctx.new_trace_context()
            with tctx.activate(inner):
                assert tctx.current_trace() is inner
            assert tctx.current_trace() is ctx
        assert tctx.current_trace() is None

    def test_activate_none_is_noop(self):
        with tctx.activate(None) as got:
            assert got is None
            assert tctx.current_trace() is None

    def test_ensure_context_creates_once(self):
        with tctx.ensure_context("outer") as ctx:
            assert ctx is not None
            with tctx.ensure_context("inner") as inherited:
                # an active context is inherited, not replaced
                assert inherited is None
                assert tctx.current_trace() is ctx
        assert tctx.current_trace() is None

    def test_child_reanchors_same_trace(self):
        ctx = tctx.new_trace_context("r")
        child = ctx.child(41)
        assert child.trace_id == ctx.trace_id
        assert child.request_id == "r"
        assert child.parent_span_id == 41

    def test_context_is_picklable(self):
        import pickle

        ctx = tctx.new_trace_context("r")
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx


class TestSpanStamping:
    def test_spans_carry_trace_id_and_pid(self):
        telemetry.enable()
        tel = telemetry.get()
        with tctx.ensure_context() as ctx:
            with tel.span("a"):
                with tel.span("b"):
                    pass
        for rec in tel.tracer.records():
            assert rec.trace_id == ctx.trace_id
            assert rec.pid == os.getpid()

    def test_span_without_context_has_no_trace_id(self):
        telemetry.enable()
        tel = telemetry.get()
        with tel.span("lone"):
            pass
        (rec,) = tel.tracer.records()
        assert rec.trace_id is None
        assert rec.pid == os.getpid()

    def test_span_record_event_round_trip(self):
        rec = SpanRecord(
            span_id=3, parent_id=1, name="x", category="c",
            start_ns=10, duration_ns=5, thread_id=7, worker=2,
            attrs={"k": 1}, trace_id="t" * 16, pid=1234,
        )
        assert SpanRecord.from_event(rec.to_event()) == rec


class TestWorkerReportMerge:
    def _worker_report(self, epoch_ns, pid=99999):
        worker = telemetry.Telemetry(enabled=True)
        worker.tracer.epoch_ns = epoch_ns
        with worker.tracer.span("parallel.worker", category="parallel"):
            with worker.tracer.span("inner"):
                pass
        worker.metrics.counter("vectorized.levels").add(4)
        worker.metrics.histogram("w_ms").observe(2.0)
        # stamp the simulated worker pid (a real report's events carry the
        # recording process's pid already — here everything runs in-process)
        events = []
        for r in worker.tracer.records():
            event = r.to_event()
            event["pid"] = pid
            events.append(event)
        return tctx.WorkerReport(
            pid=pid, spans=events, metrics=worker.metrics.to_dict(),
        )

    def test_merge_renumbers_and_reparents(self):
        telemetry.enable()
        tel = telemetry.get()
        with tel.span("dispatch") as sp:
            parent_id = sp.span_id
        report = self._worker_report(tel.tracer.epoch_ns)
        n = tctx.merge_worker_report(
            tel, report, parent_span_id=parent_id, lane=0, trace_id="T" * 16
        )
        assert n == 2
        by_name = {r.name: r for r in tel.tracer.records()}
        root = by_name["parallel.worker"]
        inner = by_name["inner"]
        assert root.parent_id == parent_id
        assert inner.parent_id == root.span_id
        # fresh ids, no collision with the parent's spans
        ids = [r.span_id for r in tel.tracer.records()]
        assert len(ids) == len(set(ids))
        assert root.worker == 0 and inner.worker == 0
        assert root.pid == 99999
        assert root.trace_id == "T" * 16

    def test_merge_preserves_worker_trace_id(self):
        telemetry.enable()
        tel = telemetry.get()
        worker = telemetry.Telemetry(enabled=True)
        with tctx.activate(tctx.new_trace_context("w")) as wctx:
            with worker.tracer.span("parallel.worker"):
                pass
        report = tctx.WorkerReport(
            pid=1, spans=[r.to_event() for r in worker.tracer.records()],
            metrics={},
        )
        tctx.merge_worker_report(
            tel, report, parent_span_id=None, trace_id="other"
        )
        (rec,) = tel.tracer.records()
        # the worker recorded under its own active context; merge must not
        # overwrite it
        assert rec.trace_id == wctx.trace_id

    def test_merge_accumulates_counter_deltas(self):
        telemetry.enable()
        tel = telemetry.get()
        tel.metrics.counter("vectorized.levels").add(1)
        for _ in range(2):
            report = self._worker_report(tel.tracer.epoch_ns)
            tctx.merge_worker_report(tel, report, parent_span_id=None)
        assert tel.metrics.counter("vectorized.levels").value == 1 + 4 + 4
        hist = tel.metrics.histogram("w_ms").to_dict()
        assert hist["count"] == 2

    def test_merge_assigns_stable_lane_per_pid(self):
        telemetry.enable()
        tel = telemetry.get()
        from repro.parallel.executor import _merge_reports

        reports = [
            self._worker_report(tel.tracer.epoch_ns, pid=p)
            for p in (111, 222, 111)
        ]
        _merge_reports(tel, reports, parent_span_id=None, trace_id=None)
        lanes = {
            r.pid: r.worker for r in tel.tracer.records()
            if r.name == "parallel.worker"
        }
        assert lanes == {111: 0, 222: 1}


@pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="process-pool tracing needs fork",
)
class TestCrossProcessTrace:
    """The acceptance invariant: one request, one trace, many processes."""

    def _multi_component_matrix(self):
        # two components, n = 2 * 36*36 = 2592 > min_parallel_nodes, so the
        # pool genuinely forks
        return _block_diag([g.grid2d(36, 36), g.grid2d(36, 36)])

    def test_service_parallel_request_yields_one_trace(self, tmp_path):
        from repro.service import ReorderService, ServiceConfig

        telemetry.enable()
        tel = telemetry.get()
        mat = self._multi_component_matrix()
        with ReorderService(ServiceConfig(n_workers=1)) as svc:
            res = svc.reorder(mat, method="parallel")
        assert res.method == "parallel"

        records = tel.tracer.records()
        by_name = {}
        for rec in records:
            by_name.setdefault(rec.name, []).append(rec)

        (request_span,) = by_name["service.request"]
        trace_id = request_span.trace_id
        assert trace_id is not None

        worker_spans = by_name.get("parallel.worker", [])
        assert len(worker_spans) == 2, (
            "expected one traced worker span per component; got "
            f"{sorted(by_name)}"
        )
        parent_pid = os.getpid()
        for w in worker_spans:
            # recorded in a different OS process...
            assert w.pid is not None and w.pid != parent_pid
            # ...but stamped with the request's trace id
            assert w.trace_id == trace_id

        # worker roots hang off the dispatch span, which chains up to the
        # service.request span: one tree per request
        (dispatch,) = by_name["parallel.components"]
        by_id = {r.span_id: r for r in records}
        for w in worker_spans:
            assert w.parent_id == dispatch.span_id
            node = dispatch
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node.span_id == request_span.span_id

        # the whole thing exports as one Chrome trace containing the
        # worker-process spans
        out = tmp_path / "trace.json"
        tel.write_chrome_trace(out)
        events = json.loads(out.read_text())["traceEvents"]
        names = {e.get("name") for e in events}
        assert "parallel.worker" in names
        assert "service.request" in names

    def test_worker_counters_merge_into_parent(self):
        from repro.core.api import _reorder_rcm

        telemetry.enable()
        tel = telemetry.get()
        mat = self._multi_component_matrix()
        with tctx.ensure_context():
            res = _reorder_rcm(mat, method="parallel")
        assert res.n_components == 2
        counters = tel.snapshot()["counters"]
        # rcm_vectorized instruments per-level work; the workers ran it,
        # the parent holds the totals
        assert counters.get("vectorized.nodes_ordered", 0) == mat.n
        assert counters.get("parallel.tasks", 0) == 2

    def test_disabled_telemetry_ships_no_reports(self):
        from repro.core.api import _reorder_rcm

        mat = self._multi_component_matrix()
        res = _reorder_rcm(mat, method="parallel")
        assert res.n_components == 2
        assert telemetry.get().tracer.records() == []

    def test_parallel_permutation_identical_with_tracing(self):
        from repro.core.api import _reorder_rcm

        mat = self._multi_component_matrix()
        ref = _reorder_rcm(mat, method="serial").permutation
        telemetry.enable()
        with tctx.ensure_context():
            traced = _reorder_rcm(mat, method="parallel").permutation
        assert np.array_equal(traced, ref)
