"""Unit tests for MatrixMarket and npz IO."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.io import (
    read_matrix_market,
    write_matrix_market,
    save_npz,
    load_npz,
)


def write(tmp_path, text, name="m.mtx"):
    p = tmp_path / name
    p.write_text(text)
    return p


class TestReader:
    def test_general_real(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 2\n1 2 1.5\n3 1 -2.0\n",
        )
        m = read_matrix_market(p)
        assert m.n == 3
        assert m.nnz == 2
        assert m.row_values(0)[0] == pytest.approx(1.5)

    def test_symmetric_expanded(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n2 1 1.0\n3 3 5.0\n",
        )
        m = read_matrix_market(p)
        # off-diagonal mirrored, diagonal kept single
        assert m.nnz == 3
        assert list(m.row(0)) == [1]
        assert list(m.row(1)) == [0]

    def test_pattern(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "2 2 1\n2 1\n",
        )
        m = read_matrix_market(p)
        assert m.data is None
        assert m.nnz == 2

    def test_skew_symmetric_negates(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real skew-symmetric\n"
            "2 2 1\n2 1 3.0\n",
        )
        m = read_matrix_market(p)
        assert m.row_values(1)[0] == pytest.approx(3.0)
        assert m.row_values(0)[0] == pytest.approx(-3.0)

    def test_comments_skipped(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n% another\n"
            "2 2 1\n1 2\n",
        )
        assert read_matrix_market(p).nnz == 1

    def test_rejects_non_mm(self, tmp_path):
        p = write(tmp_path, "hello\n1 1 1\n")
        with pytest.raises(ValueError):
            read_matrix_market(p)

    def test_rejects_rectangular(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n",
        )
        with pytest.raises(ValueError):
            read_matrix_market(p)

    def test_rejects_array_format(self, tmp_path):
        p = write(
            tmp_path,
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n3.0\n4.0\n",
        )
        with pytest.raises(ValueError):
            read_matrix_market(p)

    def test_gzip_support(self, tmp_path):
        import gzip

        p = tmp_path / "m.mtx.gz"
        with gzip.open(p, "wt") as fh:
            fh.write(
                "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n"
            )
        assert read_matrix_market(p).nnz == 1


class TestRoundTrips:
    def test_mtx_round_trip_valued(self, tmp_path, small_grid):
        m = small_grid.copy()
        m.data = np.arange(m.nnz, dtype=np.float64) + 1
        p = tmp_path / "grid.mtx"
        write_matrix_market(m, p)
        back = read_matrix_market(p)
        assert np.array_equal(back.indptr, m.indptr)
        assert np.array_equal(back.indices, m.indices)
        assert np.allclose(back.data, m.data)

    def test_mtx_round_trip_pattern(self, tmp_path, star):
        p = tmp_path / "star.mtx"
        write_matrix_market(star, p)
        back = read_matrix_market(p)
        assert back.data is None
        assert np.array_equal(back.indices, star.indices)

    def test_npz_round_trip(self, tmp_path, small_mesh):
        p = tmp_path / "mesh.npz"
        save_npz(small_mesh, p)
        back = load_npz(p)
        assert np.array_equal(back.indptr, small_mesh.indptr)
        assert np.array_equal(back.indices, small_mesh.indices)

    def test_npz_round_trip_with_values(self, tmp_path):
        m = coo_to_csr(3, [0, 1], [1, 2], [1.0, -2.0])
        p = tmp_path / "vals.npz"
        save_npz(m, p)
        back = load_npz(p)
        assert np.allclose(back.data, m.data)
