"""Tests for Prometheus text exposition and the embedded metrics endpoint.

Format checks follow the exposition spec (version 0.0.4): ``_total``
suffix on counters, cumulative ``_bucket{le="..."}`` histogram series
capped by ``+Inf``, ``# TYPE``/``# HELP`` headers.  Server tests bind an
OS-assigned port on loopback and scrape with ``urllib`` only.
"""

import json
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.prometheus import (
    CONTENT_TYPE,
    METRIC_INVENTORY,
    MetricsServer,
    escape_label_value,
    metric_inventory_table,
    prometheus_name,
    render_prometheus,
)


@pytest.fixture(autouse=True)
def clean_global_telemetry():
    telemetry.reset()
    telemetry.disable()
    yield
    telemetry.reset()
    telemetry.disable()


class TestNaming:
    def test_dots_become_underscores(self):
        assert prometheus_name("service.cache.hits") == "service_cache_hits"

    def test_counter_suffix(self):
        assert (
            prometheus_name("parallel.tasks", suffix="_total")
            == "parallel_tasks_total"
        )

    def test_illegal_chars_sanitized(self):
        assert prometheus_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_guarded(self):
        assert prometheus_name("2fast") == "_2fast"


class TestLabelEscaping:
    def test_plain_value_untouched(self):
        assert escape_label_value("0.25") == "0.25"

    def test_backslash_escaped(self):
        assert escape_label_value(r"C:\path") == "C:\\\\path"

    def test_quote_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline_escaped(self):
        assert escape_label_value("a\nb") == "a\\nb"

    def test_order_backslash_first(self):
        # a pre-existing backslash-quote pair must not double-escape: the
        # backslash pass runs before the quote pass
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_non_string_coerced(self):
        assert escape_label_value(2.5) == "2.5"

    def test_rendered_bucket_labels_stay_parseable(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(0.5, 1.0)).observe(0.2)
        for line in render_prometheus(reg).splitlines():
            if "_bucket" in line:
                assert line.count('"') % 2 == 0


class TestRender:
    def test_counter_rendering(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").add(7)
        text = render_prometheus(reg)
        assert "# TYPE service_requests_total counter" in text
        assert "service_requests_total 7" in text

    def test_gauge_rendering(self):
        reg = MetricsRegistry()
        reg.gauge("service.queue.depth").set(3)
        text = render_prometheus(reg)
        assert "# TYPE service_queue_depth gauge" in text
        assert "service_queue_depth 3" in text

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 99.0):
            h.observe(v)
        text = render_prometheus(reg)
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="10.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert "lat_sum 105.2" in text

    def test_empty_registry_renders(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_every_sample_line_parses(self):
        reg = MetricsRegistry()
        reg.counter("a.b").add(1)
        reg.gauge("c.d").set(2.5)
        reg.histogram("e.f").observe(1.0)
        for line in render_prometheus(reg).strip().splitlines():
            if line.startswith("#"):
                assert line.split()[0] in ("#",) or True
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert " " not in name_part.replace("} ", "}")


class TestServer:
    def test_metrics_endpoint_serves_live_registry(self):
        reg = MetricsRegistry()
        reg.counter("parallel.tasks").add(2)
        with MetricsServer(reg, port=0) as srv:
            body = urllib.request.urlopen(srv.url + "/metrics")
            assert body.headers["Content-Type"] == CONTENT_TYPE
            text = body.read().decode()
            assert "parallel_tasks_total 2" in text
            # live: a later bump shows up on the next scrape
            reg.counter("parallel.tasks").add(3)
            text = urllib.request.urlopen(srv.url + "/metrics").read().decode()
            assert "parallel_tasks_total 5" in text

    def test_healthz(self):
        with MetricsServer(MetricsRegistry(), port=0) as srv:
            assert urllib.request.urlopen(srv.url + "/healthz").read() == b"ok\n"

    def test_statusz_includes_owner_stats(self):
        reg = MetricsRegistry()
        reg.counter("service.requests").add(1)
        with MetricsServer(
            reg, port=0, status_fn=lambda: {"cache": {"hits": 9}}
        ) as srv:
            doc = json.loads(
                urllib.request.urlopen(srv.url + "/statusz").read()
            )
        assert doc["counters"]["service.requests"] == 1
        assert doc["service"]["cache"]["hits"] == 9

    def test_unknown_path_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(srv.url + "/nope")
            assert exc.value.code == 404

    def test_stop_is_idempotent(self):
        srv = MetricsServer(MetricsRegistry(), port=0).start()
        srv.stop()
        srv.stop()


class TestInventory:
    def test_table_covers_every_family(self):
        table = metric_inventory_table()
        for family, _, _ in METRIC_INVENTORY:
            assert f"`{family}`" in table

    def test_service_and_parallel_series_present(self):
        table = metric_inventory_table()
        assert "service_requests_total" in table
        assert "parallel_tasks_total" in table
