"""Sanity properties of the cost models and the analytic baselines.

These pin the *relations* the calibration relies on (documented in
EXPERIMENTS.md as anchored), so a constant tweak that silently inverts a
paper-shape relation fails here rather than deep inside a benchmark.
"""

import pytest

from repro.machine.costmodel import CPUCostModel, GPUCostModel, SERIAL_CPU
from repro.core.leveled import rcm_leveled, leveled_cycles
from repro.core.unordered import rcm_unordered, unordered_cycles
from repro.core.serial import serial_cycles
from repro.matrices import generators as g


class TestCpuModelRelations:
    def test_contention_inflation_moderate(self):
        """Fig. 6 anchor: compute inflates ≈1.3-1.6× from 1 to 24 workers."""
        m = CPUCostModel()
        assert 1.2 < m.contention(24) < 1.8

    def test_atomics_dominate_discovery(self):
        """The paper: Discover dominated by atomicMin marking."""
        m = CPUCostModel()
        with_atomics = m.discover(10, 1000, 500, 1)
        # counterfactual: same scan without the atomic charge
        plain = 10 * m.discover_parent_cycles + 1000 * m.discover_edge_cycles \
            + 500 * m.found_node_cycles
        assert with_atomics > 2 * plain - plain  # atomics at least match scan

    def test_rediscover_much_cheaper_than_discover(self):
        """Fig. 6: Rediscover ≈1% of cycles vs Discover's majority."""
        m = CPUCostModel()
        assert m.rediscover(500) < 0.2 * m.discover(10, 500, 500, 1)

    def test_signal_negligible(self):
        m = CPUCostModel()
        assert m.signal_read() + m.signal_send() < 100


class TestGpuModelRelations:
    def test_constant_overheads_dwarf_cpu(self):
        """GPU queue/signal ops cross global memory: far pricier than the
        CPU's — the reason GPU-BATCH loses on tiny matrices."""
        cpu, gpu = CPUCostModel(), GPUCostModel()
        assert gpu.fetch(1) > 3 * cpu.fetch(1)
        assert gpu.signal_read() > 10 * cpu.signal_read()

    def test_per_element_work_cheaper(self):
        """Wide parallel units: per-element sort/output beat the CPU once
        batches are large."""
        cpu, gpu = CPUCostModel(), GPUCostModel()
        assert gpu.sort(2048) < cpu.sort(2048)
        assert gpu.output_write(2048) < cpu.output_write(2048)

    def test_device_width(self):
        gpu = GPUCostModel()
        assert gpu.max_workers == 160  # TITAN V: 80 SMs x 2 blocks

    def test_scratchpad_fixed(self):
        assert not GPUCostModel().supports_temp_overflow
        assert CPUCostModel().supports_temp_overflow


class TestBaselineRelations:
    def test_leveled_gpu_pays_per_level(self):
        """Deep graphs cost GPU-RCM at least its launch overhead per level —
        the hugebubbles collapse."""
        gpu = GPUCostModel()
        deep = rcm_leveled(g.caterpillar(150, 1), 0)
        cyc = leveled_cycles(deep, gpu, gpu.max_workers)
        assert cyc > deep.depth * 9_000.0 * 4  # >= launches x overhead

    def test_unordered_never_beats_serial(self):
        """The paper: Reorderlib always falls short of CPU-RCM."""
        for maker in (lambda: g.grid2d(18, 18),
                      lambda: g.grid3d(8, 8, 8, stencil=27)):
            mat = maker()
            serial = serial_cycles(mat, start=0)
            res = rcm_unordered(mat, 0, bfs_rounds=5)
            best = min(
                unordered_cycles(res, CPUCostModel(), tc)
                for tc in (1, 4, 8, 16, 24)
            )
            assert best > serial

    def test_serial_model_linear_in_edges(self):
        small = serial_cycles(g.grid2d(10, 10), start=0)
        large = serial_cycles(g.grid2d(20, 20), start=0)
        assert 3.0 < large / small < 6.0  # 4x nodes/edges -> ~4x cycles


class TestAutoComponentShape:
    """Regression: hub-dominated patterns mispicked the process pool.

    A hub pattern routinely splits into one giant component plus a few
    pendant fragments.  The old ``_parallel_cost`` assumed an even
    ``n_components``-way split, so a 5-component multi-million-node
    pattern priced the pool at a ~4x speedup it can never realize — LPT
    over one giant component gives none.  ``resolve_auto_method`` now
    accepts the largest component size and bounds the speedup by
    ``n / max_component`` (the pipeline passes the real value after
    component discovery).
    """

    N = 5_000_000
    NNZ = 20_000_000

    def test_giant_component_rejects_pool(self):
        # this is the failing-then-fixed case: without the shape term the
        # selector returns "parallel" for exactly this (n, nnz, 5) triple
        from repro.backends import resolve_auto_method

        resolved = resolve_auto_method(
            self.N, self.NNZ, 5, max_component=self.N - 4
        )
        assert resolved != "parallel"

    def test_even_split_still_picks_pool(self):
        from repro.backends import resolve_auto_method

        resolved = resolve_auto_method(
            self.N, self.NNZ, 5, max_component=self.N // 5
        )
        assert resolved == "parallel"

    def test_shape_term_only_penalizes(self):
        """The LPT bound can only raise the pool estimate, never lower it."""
        from repro.backends import auto_estimates

        base = auto_estimates(self.N, self.NNZ, 5)
        for max_component in (self.N // 5, self.N // 2, self.N - 4):
            shaped = auto_estimates(
                self.N, self.NNZ, 5, max_component=max_component
            )
            assert shaped["parallel"] >= base["parallel"] - 1e-6
            # in-process backends are shape-indifferent
            assert shaped["serial"] == base["serial"]
            assert shaped["vectorized"] == base["vectorized"]

    def test_pipeline_passes_real_shape(self):
        """End to end: a hub pattern with pendant fragments resolves auto
        through the shape-aware estimates (recorded in the flight log)."""
        import json

        from repro import reorder
        from repro.telemetry import flight

        mat = g.hub_matrix(400, n_hubs=2, hub_degree_frac=0.5, seed=9)
        try:
            import tempfile, os
            with tempfile.TemporaryDirectory() as td:
                path = os.path.join(td, "flight.jsonl")
                flight.configure(path)
                reorder(mat, method="auto")
                records = flight.read_records(path)
        finally:
            flight.disable_recording()
        assert records
        rec = records[-1]
        assert rec["max_component"] >= 1
        assert rec["scenario"] == "hub-dominated"
