"""Stress tests for the real-thread backend.

True OS-thread nondeterminism must never change the permutation — the
protocol's correctness cannot depend on the scheduler.
"""

import numpy as np
import pytest

from repro.core.serial import rcm_serial
from repro.core.threads import rcm_threads
from repro.core.batches import BatchConfig
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian
from tests.conftest import random_symmetric


class TestEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_thread_counts(self, small_mesh, threads):
        ref = rcm_serial(small_mesh, 0)
        got = rcm_threads(small_mesh, 0, n_threads=threads)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("trial", range(5))
    def test_repeated_runs_grid(self, medium_grid, trial):
        ref = rcm_serial(medium_grid, 0)
        got = rcm_threads(medium_grid, 0, n_threads=4)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        mat = random_symmetric(150, 0.04, seed)
        ref = rcm_serial(mat, 0)
        got = rcm_threads(mat, 0, n_threads=3)
        assert np.array_equal(got, ref)

    def test_mycielskian_early_termination(self):
        mat = mycielskian(8)
        ref = rcm_serial(mat, 0)
        got = rcm_threads(mat, 0, n_threads=4)
        assert np.array_equal(got, ref)

    def test_hub_matrix(self):
        mat = g.hub_matrix(300, n_hubs=2, seed=1)
        ref = rcm_serial(mat, 0)
        got = rcm_threads(mat, 0, n_threads=4)
        assert np.array_equal(got, ref)

    def test_tight_batches(self, small_mesh):
        cfg = BatchConfig(batch_size=8, temp_limit=64, multibatch=1)
        ref = rcm_serial(small_mesh, 0)
        got = rcm_threads(small_mesh, 0, n_threads=4, config=cfg)
        assert np.array_equal(got, ref)

    def test_no_overhang_config(self, small_mesh):
        cfg = BatchConfig(overhang=False, multibatch=1)
        ref = rcm_serial(small_mesh, 0)
        got = rcm_threads(small_mesh, 0, n_threads=3, config=cfg)
        assert np.array_equal(got, ref)

    def test_component_only(self, two_triangles):
        ref = rcm_serial(two_triangles, 3)
        got = rcm_threads(two_triangles, 3, n_threads=2)
        assert np.array_equal(got, ref)

    def test_single_node(self):
        from repro.sparse.csr import CSRMatrix

        mat = CSRMatrix.from_edges(2, [(0, 1)])
        got = rcm_threads(mat, 0, n_threads=2)
        assert np.array_equal(got, rcm_serial(mat, 0))
