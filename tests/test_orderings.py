"""Tests for the alternative ordering heuristics (Sloan, GPS, minimum
degree, spectral) and supervariable compression."""

import numpy as np
import pytest

from repro.orderings import (
    sloan,
    gibbs_poole_stockmeyer,
    minimum_degree,
    spectral_ordering,
    find_supervariables,
    compress_supervariables,
    expand_permutation,
    rcm_with_supervariables,
)
from repro.orderings.sloan import sloan_component, pseudo_diameter
from repro.core.serial import rcm_serial
from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth, bandwidth_after, envelope_size
from repro.sparse.validate import assert_permutation
from repro.matrices import generators as g


def shuffled_grid(side=16, seed=0):
    mat = g.grid2d(side, side)
    rng = np.random.default_rng(seed)
    return mat.permute_symmetric(rng.permutation(mat.n))


class TestSloan:
    def test_returns_bijection(self, small_mesh):
        assert_permutation(sloan(small_mesh), small_mesh.n)

    def test_covers_components(self, two_triangles):
        assert_permutation(sloan(two_triangles), two_triangles.n)

    def test_reduces_envelope(self):
        mat = shuffled_grid()
        perm = sloan(mat)
        before = envelope_size(mat)
        after = envelope_size(mat.permute_symmetric(perm))
        assert after < before / 2

    def test_quality_comparable_to_rcm(self):
        mat = shuffled_grid(seed=3)
        s = sloan(mat)
        start = int(np.argmin(np.diff(mat.indptr)))
        r = rcm_serial(mat, start)
        env_s = envelope_size(mat.permute_symmetric(s))
        # Sloan targets profile; allow 2x band on this proxy
        full_r = np.concatenate([r, np.setdiff1d(np.arange(mat.n), r)])
        env_r = envelope_size(mat.permute_symmetric(full_r))
        assert env_s < 2.5 * env_r

    def test_component_starts_at_start(self, small_mesh):
        members = np.arange(small_mesh.n)
        s, e = pseudo_diameter(small_mesh, members)
        order = sloan_component(small_mesh, s, e)
        assert order[0] == s
        assert sorted(order.tolist()) == members.tolist()

    def test_cross_component_rejected(self, two_triangles):
        with pytest.raises(ValueError):
            sloan_component(two_triangles, 0, 4)

    def test_path_orders_linearly(self, path5):
        order = sloan_component(path5, 0, 4)
        assert list(order) == [0, 1, 2, 3, 4]


class TestGPS:
    def test_returns_bijection(self, small_mesh):
        assert_permutation(gibbs_poole_stockmeyer(small_mesh), small_mesh.n)

    def test_covers_components(self, two_triangles):
        assert_permutation(gibbs_poole_stockmeyer(two_triangles), two_triangles.n)

    def test_bandwidth_close_to_rcm(self):
        mat = shuffled_grid(seed=5)
        gps_bw = bandwidth_after(mat, gibbs_poole_stockmeyer(mat))
        start = int(np.argmin(np.diff(mat.indptr)))
        rcm = rcm_serial(mat, start)
        rcm_bw = bandwidth_after(
            mat, np.concatenate([rcm, np.setdiff1d(np.arange(mat.n), rcm)])
        )
        assert gps_bw <= 2 * rcm_bw + 4

    def test_big_reduction_on_shuffled_band(self):
        band = g.banded(150, 3)
        rng = np.random.default_rng(1)
        mat = band.permute_symmetric(rng.permutation(band.n))
        assert bandwidth_after(mat, gibbs_poole_stockmeyer(mat)) < bandwidth(mat) / 3

    def test_isolated_nodes(self):
        mat = CSRMatrix.from_edges(4, [(0, 1)])
        assert_permutation(gibbs_poole_stockmeyer(mat), 4)


class TestMinimumDegree:
    def test_returns_bijection(self, small_mesh):
        assert_permutation(minimum_degree(small_mesh), small_mesh.n)

    def test_star_eliminates_leaves_first(self, star):
        order = minimum_degree(star)
        # the hub (degree 5) is never chosen while two leaves remain
        assert 0 not in order[:4].tolist()

    def test_path_ends_first(self, path5):
        order = minimum_degree(path5)
        assert set(order[:2].tolist()) <= {0, 4, 1, 3}
        assert order[0] in (0, 4)

    def test_fill_budget_guard(self):
        mat = g.hub_matrix(400, n_hubs=3, hub_degree_frac=0.9, seed=1)
        with pytest.raises(RuntimeError):
            minimum_degree(mat, max_clique_growth=10)

    def test_loses_on_bandwidth(self):
        """Min degree targets fill, not bandwidth — the reason the paper's
        domain sticks with RCM."""
        mat = shuffled_grid(seed=7)
        md_bw = bandwidth_after(mat, minimum_degree(mat))
        start = int(np.argmin(np.diff(mat.indptr)))
        rcm = rcm_serial(mat, start)
        rcm_bw = bandwidth_after(
            mat, np.concatenate([rcm, np.setdiff1d(np.arange(mat.n), rcm)])
        )
        assert md_bw > rcm_bw


class TestSpectral:
    def test_returns_bijection(self, small_mesh):
        assert_permutation(spectral_ordering(small_mesh), small_mesh.n)

    def test_path_is_monotone(self, path5):
        order = spectral_ordering(path5)
        assert list(order) in ([0, 1, 2, 3, 4], [4, 3, 2, 1, 0])

    def test_reduces_bandwidth_of_shuffled_grid(self):
        mat = shuffled_grid(seed=9)
        assert bandwidth_after(mat, spectral_ordering(mat)) < bandwidth(mat) / 2

    def test_deterministic(self, small_mesh):
        a = spectral_ordering(small_mesh, seed=1)
        b = spectral_ordering(small_mesh, seed=1)
        assert np.array_equal(a, b)

    def test_components_covered(self, two_triangles):
        assert_permutation(spectral_ordering(two_triangles), two_triangles.n)


def duplicated_graph(base):
    """Every node doubled: (i, i+n) twins with identical closed adjacency."""
    nb = base.n
    edges = []
    for i in range(nb):
        for j in base.row(i):
            jj = int(j)
            if i < jj:
                for a in (i, i + nb):
                    for b in (jj, jj + nb):
                        edges.append((a, b))
        edges.append((i, i + nb))
    return CSRMatrix.from_edges(2 * nb, edges)


class TestSupervariables:
    def test_twins_detected(self):
        dup = duplicated_graph(g.grid2d(5, 5))
        labels = find_supervariables(dup)
        n = dup.n // 2
        for i in range(n):
            assert labels[i] == labels[i + n]
        assert np.unique(labels).size == n

    def test_distinct_nodes_not_merged(self, path5):
        labels = find_supervariables(path5)
        assert np.unique(labels).size == path5.n

    def test_compression_halves_graph(self):
        dup = duplicated_graph(g.grid2d(6, 6))
        comp = compress_supervariables(dup)
        assert comp.mat.n == dup.n // 2
        assert all(comp.sizes == 2)

    def test_expand_covers_everything(self):
        dup = duplicated_graph(g.grid2d(5, 5))
        comp = compress_supervariables(dup)
        perm = expand_permutation(comp, np.arange(comp.mat.n))
        assert_permutation(perm, dup.n)

    def test_rcm_quality_preserved(self):
        dup = duplicated_graph(g.grid2d(7, 7))
        sv = rcm_with_supervariables(dup, 0)
        assert_permutation(sv, dup.n)
        plain = rcm_serial(dup, 0)
        assert bandwidth_after(dup, sv) <= bandwidth_after(dup, plain) + 2

    def test_no_supervariables_is_identity_compression(self, small_mesh):
        comp = compress_supervariables(small_mesh)
        # meshes rarely have exact twins
        assert comp.mat.n >= small_mesh.n - 5


class TestKing:
    def test_returns_bijection(self, small_mesh):
        from repro.orderings import king

        from repro.sparse.validate import assert_permutation
        assert_permutation(king(small_mesh), small_mesh.n)

    def test_covers_components(self, two_triangles):
        from repro.orderings import king
        from repro.sparse.validate import assert_permutation

        assert_permutation(king(two_triangles), two_triangles.n)

    def test_path_is_linear(self, path5):
        from repro.orderings.king import king_component

        assert list(king_component(path5, 0)) == [0, 1, 2, 3, 4]

    def test_wavefront_close_to_rcm(self):
        """King greedily minimizes front growth: its max wavefront must be
        in RCM's ballpark even where its bandwidth is much larger."""
        from repro.orderings import king
        from repro.sparse.bandwidth import max_wavefront

        mat = g.grid2d(14, 14)
        k = mat.permute_symmetric(king(mat))
        start = 0
        r = mat.permute_symmetric(
            np.concatenate([rcm_serial(mat, start),
                            np.setdiff1d(np.arange(mat.n), rcm_serial(mat, start))])
        )
        assert max_wavefront(k) <= 1.5 * max_wavefront(r) + 2

    def test_front_growth_greedy_on_star(self, star):
        from repro.orderings.king import king_component

        # from a leaf, the centre is the only candidate; afterwards all
        # remaining leaves have growth 0 and come in id order
        order = king_component(star, 1)
        assert order[0] == 1 and order[1] == 0
        assert sorted(order[2:].tolist()) == [2, 3, 4, 5]


class TestOrderingDispatcher:
    def test_all_algorithms_dispatch(self, small_grid):
        from repro.facade import reorder
        from repro.orderings.api import ALGORITHMS

        for name in ALGORITHMS:
            assert_permutation(
                reorder(small_grid, algorithm=name).permutation, small_grid.n
            )

    def test_unknown_rejected(self, small_grid):
        from repro.facade import reorder

        with pytest.raises(ValueError, match="algorithm must be one of"):
            reorder(small_grid, algorithm="voodoo")

    def test_order_entry_point_removed(self, small_grid):
        from repro.errors import RemovedAPIError
        from repro.orderings.api import order

        with pytest.raises(RemovedAPIError, match="repro.reorder"):
            order(small_grid, "rcm")

    def test_quality_report(self):
        from repro.orderings.api import quality

        mat = shuffled_grid(seed=11)
        q = quality(mat, "rcm")
        assert q.algorithm == "rcm"
        assert q.bandwidth > 0 and q.envelope > 0 and q.rms_wavefront > 0


class TestStatsSerialization:
    def test_to_dict_round_trips_json(self, small_grid):
        import json
        from repro.core.batch import run_batch_rcm
        from repro.machine.costmodel import CPUCostModel

        res = run_batch_rcm(small_grid, 0, model=CPUCostModel(), n_workers=3)
        d = res.stats.to_dict()
        text = json.dumps(d)
        back = json.loads(text)
        assert back["n_workers"] == 3
        assert back["batches"]["generated"] >= back["batches"]["dequeued"]
        assert abs(sum(back["stage_shares"].values()) - 1.0) < 1e-9
