"""Unit tests for the Mycielski graph construction."""

import numpy as np
import pytest

from repro.matrices.mycielski import mycielskian, mycielski_step
from repro.sparse.validate import is_structurally_symmetric
from repro.sparse.graph import connected_components


def counts(k):
    """Closed-form node/edge counts: n_{k+1} = 2 n_k + 1, e_{k+1} = 3 e_k + n_k."""
    n, e = 2, 1
    for _ in range(k - 2):
        e = 3 * e + n
        n = 2 * n + 1
    return n, e


class TestConstruction:
    def test_m2_is_edge(self):
        m = mycielskian(2)
        assert m.n == 2
        assert m.nnz == 2

    def test_m3_is_c5(self):
        # the Mycielskian of K2 is the 5-cycle
        m = mycielskian(3)
        assert m.n == 5
        assert m.nnz == 10
        assert all(m.degrees() == 2)

    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 8, 10])
    def test_counts_match_recurrence(self, k):
        m = mycielskian(k)
        n, e = counts(k)
        assert m.n == n
        assert m.nnz == 2 * e

    def test_symmetric_and_connected(self):
        m = mycielskian(8)
        assert is_structurally_symmetric(m)
        cnt, _ = connected_components(m)
        assert cnt == 1

    def test_triangle_free_small(self):
        """Mycielskians of triangle-free graphs stay triangle-free."""
        m = mycielskian(5)
        dense = m.to_dense() > 0
        cubed = np.linalg.matrix_power(dense.astype(int), 3)
        assert np.trace(cubed) == 0

    def test_hub_degree(self):
        # the hub w connects to all n shadow nodes of the previous graph
        m = mycielskian(6)
        prev_n, _ = counts(5)
        assert int(m.degrees()[-1]) == prev_n

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            mycielskian(1)


class TestStep:
    def test_step_counts(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        new_edges, n = mycielski_step(edges, 3)
        assert n == 7
        assert new_edges.shape[0] == 3 * 2 + 3
