"""Tests for the GPU (many-core) batch variant and histogram chunking."""

import numpy as np
import pytest

from repro.core.serial import rcm_serial
from repro.core.batch_gpu import run_batch_rcm_gpu, chunk_plan, ChunkPlan
from repro.machine.costmodel import GPUCostModel
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian


class TestEquivalence:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: g.grid2d(12, 12),
            lambda: g.delaunay_mesh(400, seed=1),
            lambda: g.hub_matrix(400, n_hubs=2, hub_degree_frac=0.8, seed=2),
            lambda: mycielskian(8),
        ],
        ids=["grid", "delaunay", "hub", "mycielski"],
    )
    def test_matches_serial(self, maker):
        mat = maker()
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm_gpu(mat, 0)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize("workers", [1, 8, 64, 160])
    def test_block_counts(self, workers, small_mesh):
        ref = rcm_serial(small_mesh, 0)
        res = run_batch_rcm_gpu(small_mesh, 0, n_workers=workers)
        assert np.array_equal(res.permutation, ref)

    @pytest.mark.parametrize("seed", range(4))
    def test_jitter_fuzz(self, seed, small_mesh):
        ref = rcm_serial(small_mesh, 0)
        res = run_batch_rcm_gpu(small_mesh, 0, jitter=0.9, seed=seed)
        assert np.array_equal(res.permutation, ref)


class TestEmptyBatches:
    def test_overestimation_produces_empties(self, small_mesh):
        res = run_batch_rcm_gpu(small_mesh, 0)
        st = res.stats
        assert st.batches_empty > 0
        assert st.batches_executed + st.batches_empty == st.batches_dequeued

    def test_defaults_use_device_width(self, small_grid):
        res = run_batch_rcm_gpu(small_grid, 0)
        assert res.n_workers == GPUCostModel().max_workers


class TestChunking:
    def test_oversized_hub_triggers_chunking(self):
        # hub valence exceeds the GPU scratchpad (1024)
        mat = g.hub_matrix(2200, n_hubs=1, hub_degree_frac=0.9, seed=5)
        assert int(mat.degrees().max()) > GPUCostModel().temp_limit
        ref = rcm_serial(mat, 0)
        res = run_batch_rcm_gpu(mat, 0)
        assert np.array_equal(res.permutation, ref)
        assert res.stats.chunked_batches >= 1

    def test_small_matrix_never_chunks(self, small_grid):
        res = run_batch_rcm_gpu(small_grid, 0)
        assert res.stats.chunked_batches == 0


class TestChunkPlan:
    def test_sizes_cover_everything(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(1, 50, size=5000).astype(np.int64)
        plan = chunk_plan(vals, temp_limit=1024)
        assert sum(plan.chunk_sizes) == 5000

    def test_chunks_fit_scratchpad(self):
        rng = np.random.default_rng(1)
        vals = rng.integers(1, 200, size=4000).astype(np.int64)
        plan = chunk_plan(vals, temp_limit=512)
        # every staged chunk fits; only direct-copy bins may exceed
        oversized = [c for c in plan.chunk_sizes if c > 512]
        assert len(oversized) <= plan.direct_copies

    def test_uniform_valence_direct_copy(self):
        vals = np.full(3000, 7, dtype=np.int64)
        plan = chunk_plan(vals, temp_limit=1024)
        # one bin holds everything; single-valence -> direct copy
        assert plan.direct_copies >= 1
        assert sum(plan.chunk_sizes) == 3000

    def test_skewed_distribution_refines(self):
        # heavy mass on one valence plus a long tail: the dominant bin
        # overflows and must refine (or direct-copy at the floor)
        vals = np.concatenate([
            np.full(5000, 3, dtype=np.int64),
            np.arange(1, 400, dtype=np.int64),
        ])
        plan = chunk_plan(vals, temp_limit=256)
        assert plan.refinements + plan.direct_copies >= 1
        assert sum(plan.chunk_sizes) == vals.size

    def test_empty_input(self):
        plan = chunk_plan(np.zeros(0, dtype=np.int64), temp_limit=128)
        assert plan.chunk_sizes == []
        assert plan.n_chunks == 0

    def test_fits_in_one_chunk(self):
        vals = np.arange(1, 100, dtype=np.int64)
        plan = chunk_plan(vals, temp_limit=1024)
        assert plan.n_chunks == 1


class TestChunkPlanEdges:
    """Precise edge-path coverage: zero children, the single-valence
    direct-copy floor, and hierarchical refinement of one oversized bin.

    ``bins=2`` makes the mean-centred remap hand-computable: values at or
    below the mean land in bin 0, everything else in bin 1.
    """

    def test_zero_child_batch_plans_nothing(self):
        plan = chunk_plan(np.zeros(0, dtype=np.int64), temp_limit=128)
        assert plan.n_chunks == 0
        assert plan.refinements == 0
        assert plan.direct_copies == 0

    def test_single_valence_oversized_bin_streams_directly(self):
        # 500 children of valence 5 overflow a 400-slot scratchpad on
        # their own, but share one valence: no refinement can split them,
        # so the plan streams them matrix->permutation without staging
        vals = np.concatenate([
            np.full(500, 5, dtype=np.int64),
            np.full(300, 6, dtype=np.int64),
        ])
        plan = chunk_plan(vals, temp_limit=400, bins=2)
        assert plan.chunk_sizes == [500, 300]
        assert plan.direct_copies == 1
        assert plan.refinements == 0
        # only the direct-copy chunk may exceed scratch
        assert [c for c in plan.chunk_sizes if c > 400] == [500]

    def test_oversized_mixed_bin_refines_hierarchically(self):
        # bin 0 holds two distinct valences (10 and 11, both below the
        # 100-heavy mean) totalling 400 > 350: it must refine, and the
        # sub-histogram separates the valences into scratch-sized chunks;
        # bin 1 (500 x valence 100) hits the single-valence floor instead
        vals = np.concatenate([
            np.full(200, 10, dtype=np.int64),
            np.full(200, 11, dtype=np.int64),
            np.full(500, 100, dtype=np.int64),
        ])
        plan = chunk_plan(vals, temp_limit=350, bins=2)
        assert plan.refinements == 1
        assert plan.direct_copies == 1
        assert plan.chunk_sizes == [200, 200, 500]
        assert sum(plan.chunk_sizes) == vals.size
        # every staged (non-direct) chunk fits the scratchpad
        assert [c for c in plan.chunk_sizes if c > 350] == [500]

    def test_refined_plan_preserves_valence_order(self):
        vals = np.concatenate([
            np.full(200, 10, dtype=np.int64),
            np.full(200, 11, dtype=np.int64),
            np.full(500, 100, dtype=np.int64),
        ])
        plan = chunk_plan(vals, temp_limit=350, bins=2)
        sorted_vals = np.sort(vals, kind="stable")
        pos, prev_max = 0, -1
        for size in plan.chunk_sizes:
            chunk = sorted_vals[pos : pos + size]
            assert int(chunk.min()) >= prev_max
            prev_max = int(chunk.max())
            pos += size
        assert pos == vals.size

    def test_valence_order_preserved(self):
        """Chunks are ascending valence ranges: concatenating chunk-local
        sorts equals the global sort (the correctness argument)."""
        rng = np.random.default_rng(3)
        vals = rng.integers(1, 100, size=2000).astype(np.int64)
        plan = chunk_plan(vals, temp_limit=300)
        sorted_vals = np.sort(vals, kind="stable")
        pos = 0
        prev_max = -1
        for size in plan.chunk_sizes:
            chunk = sorted_vals[pos : pos + size]
            assert chunk.min() >= prev_max or chunk.min() == prev_max
            prev_max = int(chunk.max())
            pos += size
