"""Guards against doc drift around the backend registry and algorithm list.

The execution-backend registry (:mod:`repro.backends`) and
``repro.facade.ALGORITHMS`` are the single source of truth for
execution-method and algorithm names.  Everything else — the facade
docstring (built by ``__doc__.format`` from
:func:`repro.validation.choices_text`), validation error messages, the CLI
``choices``, the cache-key method field, the generated capability table in
``docs/api.md`` and the cross-links from README/``docs/service.md`` — must
follow them.  Adding a method without updating the docs fails here, not in
a user's terminal; a hand-written method list anywhere in ``src/repro``
fails the AST guard (``tools/check_method_literals.py``) that runs both
here and as a CI step.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro.facade as facade
from repro import backends
from repro.facade import ALGORITHMS, reorder
from repro.validation import choices_text

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"
METHODS = backends.names()


class TestDocstringSingleSourcing:
    def test_facade_doc_lists_every_algorithm(self):
        for name in ALGORITHMS:
            assert repr(name) in facade.__doc__, (
                f"facade docstring is missing algorithm {name!r}; it is "
                "generated from ALGORITHMS via __doc__.format — check the "
                "{algorithms} placeholder"
            )

    def test_facade_doc_lists_every_method(self):
        for name in METHODS:
            assert repr(name) in facade.__doc__, (
                f"facade docstring is missing method {name!r}"
            )

    def test_facade_doc_embeds_registry_choices_verbatim(self):
        # the {methods} placeholder expands to choices_text over the
        # registry — the exact string, not a paraphrase
        assert choices_text(backends.names()) in facade.__doc__

    def test_no_unexpanded_placeholders(self):
        assert "{algorithms}" not in facade.__doc__
        assert "{methods}" not in facade.__doc__

    def test_choices_text_shape(self):
        assert choices_text(("a", "b")) == "'a', 'b'"


class TestErrorMessagesDerivedFromRegistry:
    def test_bad_algorithm_lists_all(self, small_grid):
        with pytest.raises(ValueError) as exc:
            reorder(small_grid, algorithm="nope")
        for name in ALGORITHMS:
            assert repr(name) in str(exc.value)

    def test_bad_method_lists_all(self, small_grid):
        with pytest.raises(ValueError) as exc:
            reorder(small_grid, method="nope")
        for name in backends.method_choices():
            assert repr(name) in str(exc.value)


class TestCliDerivesFromRegistry:
    def test_reorder_parser_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._subparsers._group_actions
        ).choices["reorder"]
        by_dest = {a.dest: a for a in sub._actions}
        assert set(by_dest["algorithm"].choices) == set(ALGORITHMS)
        assert tuple(by_dest["method"].choices) == backends.method_choices()

    def test_profile_and_serve_share_the_registry_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        subs = next(a for a in parser._subparsers._group_actions).choices
        for command in ("profile", "serve"):
            method_action = next(
                a for a in subs[command]._actions if a.dest == "method"
            )
            assert tuple(method_action.choices) == backends.method_choices()


class TestCacheKeyDerivesFromRegistry:
    def test_key_method_field_accepts_every_backend(self, small_grid):
        from repro.service.keys import cache_key

        for name in METHODS:
            key = cache_key(small_grid, method=name)
            assert key.method == name

    def test_auto_canonicalizes_to_a_registered_backend(self, small_grid):
        from repro.service.keys import cache_key, canonical_method

        key = cache_key(small_grid, method="auto")
        assert backends.is_registered(key.method)
        assert key.method == canonical_method(
            "rcm", "auto", small_grid.n, small_grid.nnz
        )

    def test_unknown_method_never_reaches_the_digest(self, small_grid):
        from repro.service.keys import cache_key

        with pytest.raises(ValueError, match="method must be one of"):
            cache_key(small_grid, method="quantum")


class TestProseDocs:
    @pytest.mark.parametrize("name", sorted(set(ALGORITHMS) | set(METHODS)))
    def test_api_md_mentions_every_name(self, name):
        text = (DOCS / "api.md").read_text()
        assert name in text, (
            f"docs/api.md does not mention {name!r}; regenerate the backend "
            "capability table with `python -m repro backends`"
        )

    def test_api_md_embeds_generated_capability_table(self):
        # the table in docs/api.md is the verbatim output of
        # `python -m repro backends`; regenerate on any registry change
        text = (DOCS / "api.md").read_text()
        assert backends.capability_table() in text, (
            "docs/api.md capability table is stale; replace it with the "
            "output of `python -m repro backends`"
        )

    def test_readme_and_service_md_cross_link_the_table(self):
        anchor = "api.md#rcm-execution-backends"
        assert anchor in (REPO / "README.md").read_text()
        assert anchor in (DOCS / "service.md").read_text()

    def test_observability_md_embeds_generated_metric_inventory(self):
        # the inventory table in docs/observability.md is the verbatim
        # output of `python -m repro telemetry inventory`; regenerate it
        # whenever a metric family is added to METRIC_INVENTORY
        from repro.telemetry.prometheus import metric_inventory_table

        text = (DOCS / "observability.md").read_text()
        assert metric_inventory_table() in text, (
            "docs/observability.md metric inventory is stale; replace it "
            "with the output of `python -m repro telemetry inventory`"
        )

    def test_observability_md_documents_the_trajectory_layer(self):
        # the trajectory/SLO/introspection surfaces shipped together; the
        # doc must name each command and the history store location
        text = (DOCS / "observability.md").read_text()
        for needle in (
            "repro telemetry trend",
            "repro telemetry ingest",
            "repro inspect",
            "history.jsonl",
            "repro-history/v1",
        ):
            assert needle in text, (
                f"docs/observability.md missing {needle!r}; see the "
                "'Trajectory & trends' / 'SLOs' sections"
            )

    def test_observability_md_names_every_default_slo(self):
        from repro.telemetry.slo import DEFAULT_SLOS

        text = (DOCS / "observability.md").read_text()
        for slo in DEFAULT_SLOS:
            assert slo.name in text, (
                f"docs/observability.md does not document SLO {slo.name!r}"
            )

    def test_api_md_documents_the_batch_api(self):
        # reorder_many / the shm transport / the removed entry points
        # shipped as one surface; docs/api.md must cover each piece
        text = (DOCS / "api.md").read_text()
        for needle in (
            "reorder_many",
            "REPRO_NO_SHM",
            "setup_cycles",
            "RemovedAPIError",
            "batch_window_ms",
        ):
            assert needle in text, (
                f"docs/api.md missing {needle!r}; see the 'Batch API' and "
                "'Migrating from the old entry points' sections"
            )

    def test_api_md_batch_defaults_match_code(self):
        # the documented admission defaults are the ServiceConfig defaults
        from repro.service import ServiceConfig

        cfg = ServiceConfig()
        assert cfg.batch_window_ms == 0.0, (
            "batch_window_ms default changed; update docs/service.md "
            "('default `W=0`') and docs/api.md"
        )

    def test_service_md_documents_batched_admission(self):
        text = (DOCS / "service.md").read_text()
        for needle in (
            "## Batched admission",
            "batch_window_ms",
            "max_batch",
            "service.batch.size",
            "--batch-window-ms",
            "reorder_many",
        ):
            assert needle in text, (
                f"docs/service.md missing {needle!r}; see the "
                "'Batched admission' section"
            )

    def test_service_md_documents_sharded_deployment(self):
        text = (DOCS / "service.md").read_text()
        for needle in (
            "## Sharded deployment",
            "ShardedService",
            "AsyncReorderService",
            "HashRing.route",
            "shard-<i>",
            "--shards",
            "--shard 2",
            'service_shard_requests_total{shard="i"}',
            'service_shard_queue_depth{shard="i"}',
            "healthy_shards",
            "shard_balance",
        ):
            assert needle in text, (
                f"docs/service.md missing {needle!r}; see the "
                "'Sharded deployment' section"
            )
        from repro.service.router import DEFAULT_REPLICAS

        assert f"{DEFAULT_REPLICAS} virtual points" in text, (
            "docs/service.md virtual-node count is stale; expected "
            f"'{DEFAULT_REPLICAS} virtual points' "
            "(from repro.service.router.DEFAULT_REPLICAS)"
        )

    def test_sharded_deployment_cross_links(self):
        anchor = "service.md#sharded-deployment"
        assert anchor in (REPO / "README.md").read_text(), (
            "README.md must link the sharded deployment section"
        )
        assert anchor in (DOCS / "api.md").read_text(), (
            "docs/api.md must link the sharded deployment section"
        )

    def test_scenarios_md_names_every_family_and_scenario(self):
        from repro.matrices.scenarios import FAMILIES, scenario_names

        text = (DOCS / "scenarios.md").read_text()
        for family in FAMILIES:
            assert f"`{family}`" in text, (
                f"docs/scenarios.md does not document family {family!r}"
            )
        for name in scenario_names():
            assert f"`{name}`" in text, (
                f"docs/scenarios.md does not document scenario {name!r}"
            )

    def test_scenarios_md_floor_table_matches_code(self):
        # the floor table is the verbatim FAMILY_FLOORS mapping — a floor
        # change must ship with its doc row
        from repro.matrices.scenarios import FAMILY_FLOORS

        text = (DOCS / "scenarios.md").read_text()
        for family, floor in FAMILY_FLOORS.items():
            row = f"| `{family}` | {floor:.2f} |"
            assert row in text, (
                f"docs/scenarios.md floor table is stale for {family!r}: "
                f"expected row {row!r}"
            )

    def test_scenarios_md_documents_the_transform_surface(self):
        from repro.core.transform import (
            HUB_DEGREE_FACTOR, HUB_MIN_DEGREE, TRANSFORMS,
        )

        text = (DOCS / "scenarios.md").read_text()
        for choice in TRANSFORMS:
            assert f'transform="{choice}"' in text, (
                f"docs/scenarios.md missing transform choice {choice!r}"
            )
        threshold = f"max({HUB_DEGREE_FACTOR:.0f} x mean, {HUB_MIN_DEGREE})"
        assert threshold in text, (
            "docs/scenarios.md hub threshold is stale; expected "
            f"{threshold!r} (from repro.core.transform)"
        )
        for needle in (
            "transform=None",
            "tf:powerlaw",
            "--transform",
            "bench_scenarios.py",
            "BENCH_scenario_matrix.json",
            "tests/test_scenarios.py",
        ):
            assert needle in text, f"docs/scenarios.md missing {needle!r}"

    def test_readme_cross_links_the_scenario_doc(self):
        assert "docs/scenarios.md" in (REPO / "README.md").read_text()

    def test_observability_md_documents_the_profiler(self):
        # the sampling profiler + critical-path analyzer shipped as one
        # surface; the doc must cover the sampler design, both CLI and
        # HTTP endpoints, and the enforced overhead budget
        text = (DOCS / "observability.md").read_text()
        for needle in (
            "## Continuous profiling",
            "## Critical path & what-if",
            "sys._current_frames",
            "repro telemetry critpath",
            "/debug/flame",
            "/debug/critpath",
            "--profile",
            "telemetry.profiler.overhead_pct",
            "--max-profiler-overhead-pct",
            "speedscope",
        ):
            assert needle in text, (
                f"docs/observability.md missing {needle!r}; see the "
                "'Continuous profiling' / 'Critical path & what-if' "
                "sections"
            )

    def test_profiler_overhead_budget_doc_matches_gate(self):
        # the documented budget is the bench gate's constant (parsed from
        # source: benchmarks/ is not an importable package)
        import re

        source = (REPO / "benchmarks" / "bench_service.py").read_text()
        match = re.search(
            r"^MAX_PROFILER_OVERHEAD_PCT\s*=\s*([\d.]+)", source, re.M
        )
        assert match, "bench_service.py lost MAX_PROFILER_OVERHEAD_PCT"
        budget = float(match.group(1))
        text = (DOCS / "observability.md").read_text()
        assert f"{budget:.0f}%" in text, (
            "docs/observability.md overhead budget is stale; expected "
            f"'{budget:.0f}%' (from benchmarks/bench_service.py "
            "MAX_PROFILER_OVERHEAD_PCT)"
        )

    def test_profiling_cross_links(self):
        readme = (REPO / "README.md").read_text()
        for anchor in (
            "observability.md#continuous-profiling",
            "observability.md#critical-path--what-if",
        ):
            assert anchor in readme, (
                f"README.md must link {anchor!r} from the Profiling section"
            )

    def test_service_doc_exists_and_mentions_counters(self):
        text = (DOCS / "service.md").read_text()
        for counter in (
            "service.cache.hits",
            "service.cache.misses",
            "service.cache.evictions",
            "service.coalesced",
            "service.queue.depth",
        ):
            assert counter in text, f"docs/service.md missing {counter}"


class TestNoLiteralMethodTuples:
    """The CI guard, exercised from the test suite as well."""

    def test_guard_passes_on_the_tree(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_method_literals.py")],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_guard_actually_detects_violations(self):
        import ast
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "check_method_literals",
            REPO / "tools" / "check_method_literals.py",
        )
        tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(tool)

        methods = frozenset(backends.names())
        flagged = tool.find_violations(
            ast.parse("CHAIN = ('vectorized', 'serial')"), methods
        )
        assert flagged == [(1, ("vectorized", "serial"))]
        # non-method tuples and single names stay legal
        assert not tool.find_violations(
            ast.parse("X = ('auto', 'direct')\nY = 'serial'"), methods
        )
