"""Guards against doc drift around the method/algorithm registries.

``repro.core.api.METHODS`` and ``repro.facade.ALGORITHMS`` are the single
source of truth for execution-method and algorithm names.  Everything else —
the facade docstring (built by ``__doc__.format`` from
:func:`repro.validation.choices_text`), validation error messages, the CLI
``choices`` and the prose in ``docs/api.md`` — must follow them.  Adding a
method without updating the docs fails here, not in a user's terminal.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.facade as facade
from repro.core.api import METHODS
from repro.facade import ALGORITHMS, reorder
from repro.validation import choices_text

DOCS = Path(__file__).resolve().parents[1] / "docs"


class TestDocstringSingleSourcing:
    def test_facade_doc_lists_every_algorithm(self):
        for name in ALGORITHMS:
            assert repr(name) in facade.__doc__, (
                f"facade docstring is missing algorithm {name!r}; it is "
                "generated from ALGORITHMS via __doc__.format — check the "
                "{algorithms} placeholder"
            )

    def test_facade_doc_lists_every_method(self):
        for name in METHODS:
            assert repr(name) in facade.__doc__, (
                f"facade docstring is missing method {name!r}"
            )

    def test_no_unexpanded_placeholders(self):
        assert "{algorithms}" not in facade.__doc__
        assert "{methods}" not in facade.__doc__

    def test_choices_text_shape(self):
        assert choices_text(("a", "b")) == "'a', 'b'"


class TestErrorMessagesDerivedFromRegistry:
    def test_bad_algorithm_lists_all(self, small_grid):
        with pytest.raises(ValueError) as exc:
            reorder(small_grid, algorithm="nope")
        for name in ALGORITHMS:
            assert repr(name) in str(exc.value)

    def test_bad_method_lists_all(self, small_grid):
        with pytest.raises(ValueError) as exc:
            reorder(small_grid, method="nope")
        for name in ("auto",) + METHODS:
            assert repr(name) in str(exc.value)


class TestCliDerivesFromRegistry:
    def test_reorder_parser_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._subparsers._group_actions
        ).choices["reorder"]
        by_dest = {a.dest: a for a in sub._actions}
        assert set(by_dest["algorithm"].choices) == set(ALGORITHMS)
        assert set(by_dest["method"].choices) == {"auto", *METHODS}


class TestProseDocs:
    @pytest.mark.parametrize("name", sorted(set(ALGORITHMS) | set(METHODS)))
    def test_api_md_mentions_every_name(self, name):
        text = (DOCS / "api.md").read_text()
        assert name in text, (
            f"docs/api.md does not mention {name!r}; update the docs when "
            "extending METHODS/ALGORITHMS"
        )

    def test_service_doc_exists_and_mentions_counters(self):
        text = (DOCS / "service.md").read_text()
        for counter in (
            "service.cache.hits",
            "service.cache.misses",
            "service.cache.evictions",
            "service.coalesced",
            "service.queue.depth",
        ):
            assert counter in text, f"docs/service.md missing {counter}"
