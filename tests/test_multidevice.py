"""Tests for the multi-device extension and batch-BFS peripheral finding."""

import numpy as np
import pytest

from repro.core.serial import rcm_serial
from repro.core.batch import run_batch_rcm
from repro.core.batches import BatchConfig
from repro.core.peripheral import find_pseudo_peripheral
from repro.core.peripheral_parallel import (
    batch_bfs,
    find_pseudo_peripheral_parallel,
)
from repro.machine.costmodel import CPUCostModel, GPUCostModel
from repro.machine.multidevice import (
    DeviceTopology,
    NVLINK_LIKE,
    PCIE_LIKE,
    NETWORK_LIKE,
)
from repro.sparse.graph import bfs_order
from repro.matrices import generators as g

MODEL = CPUCostModel()


class TestTopology:
    def test_device_partition(self):
        t = DeviceTopology(n_devices=3, workers_per_device=4)
        assert t.total_workers == 12
        assert t.device_of(0) == 0
        assert t.device_of(3) == 0
        assert t.device_of(4) == 1
        assert t.device_of(11) == 2

    def test_single_device_no_surcharge(self):
        t = DeviceTopology(n_devices=1, workers_per_device=8)
        assert t.atomic_surcharge() == pytest.approx(1.0)

    def test_surcharge_grows_with_devices(self):
        a = DeviceTopology(n_devices=2, workers_per_device=4, remote_atomic_factor=2.0)
        b = DeviceTopology(n_devices=8, workers_per_device=1, remote_atomic_factor=2.0)
        assert 1.0 < a.atomic_surcharge() < b.atomic_surcharge() < 2.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            DeviceTopology(n_devices=0)


class TestMultiDeviceRuns:
    @pytest.mark.parametrize("topo", [NVLINK_LIKE, PCIE_LIKE, NETWORK_LIKE],
                             ids=["nvlink", "pcie", "network"])
    def test_permutation_unchanged(self, topo, small_mesh):
        ref = rcm_serial(small_mesh, 0)
        res = run_batch_rcm(
            small_mesh, 0, model=MODEL, n_workers=topo.total_workers,
            topology=topo,
        )
        assert np.array_equal(res.permutation, ref)

    def test_worker_count_must_match(self, small_grid):
        with pytest.raises(ValueError, match="workers"):
            run_batch_rcm(
                small_grid, 0, model=MODEL, n_workers=3, topology=NVLINK_LIKE
            )

    def test_slower_interconnect_costs_more(self):
        # wide front + small batches -> many batches in flight, so the
        # signal chain genuinely crosses devices (a narrow matrix keeps all
        # batches on one device and the interconnect never fires)
        mat = g.grid3d(10, 10, 10, stencil=27)
        cfg = BatchConfig(batch_size=16)

        def ms(topo):
            return run_batch_rcm(
                mat, 0, model=MODEL, n_workers=topo.total_workers,
                topology=topo, config=cfg,
            ).milliseconds

        fast = DeviceTopology(2, 6, cross_signal_cycles=1_000.0)
        slow = DeviceTopology(2, 6, cross_signal_cycles=200_000.0)
        assert ms(slow) > 1.5 * ms(fast)

    def test_single_device_topology_near_plain(self, small_mesh):
        """One device never pays cross-link latency: only the (cheap)
        post-wait signal pickups differ from a plain run."""
        topo = DeviceTopology(n_devices=1, workers_per_device=6,
                              cross_signal_cycles=1e6)
        with_topo = run_batch_rcm(
            small_mesh, 0, model=MODEL, n_workers=6, topology=topo
        )
        plain = run_batch_rcm(small_mesh, 0, model=MODEL, n_workers=6)
        assert with_topo.milliseconds == pytest.approx(
            plain.milliseconds, rel=0.15
        )

    def test_jitter_fuzz_multidevice(self, small_mesh):
        ref = rcm_serial(small_mesh, 0)
        for seed in range(4):
            res = run_batch_rcm(
                small_mesh, 0, model=MODEL,
                n_workers=NVLINK_LIKE.total_workers, topology=NVLINK_LIKE,
                jitter=0.9, seed=seed,
            )
            assert np.array_equal(res.permutation, ref)


class TestBatchBFS:
    @pytest.mark.parametrize(
        "maker",
        [lambda: g.grid2d(14, 14), lambda: g.delaunay_mesh(350, seed=2),
         lambda: g.hub_matrix(250, n_hubs=2, seed=3)],
        ids=["grid", "mesh", "hub"],
    )
    def test_equals_fifo_bfs(self, maker):
        mat = maker()
        res = batch_bfs(mat, 0, model=MODEL, n_workers=5)
        assert np.array_equal(res.permutation, bfs_order(mat, 0)[::-1])

    def test_rejects_sorting_config(self, small_grid):
        with pytest.raises(ValueError, match="sort_children"):
            batch_bfs(small_grid, 0, model=MODEL, n_workers=2,
                      config=BatchConfig())

    def test_bfs_cheaper_than_rcm(self, small_mesh):
        bfs = batch_bfs(small_mesh, 0, model=MODEL, n_workers=4)
        rcm = run_batch_rcm(small_mesh, 0, model=MODEL, n_workers=4)
        assert bfs.stats.makespan < rcm.stats.makespan


class TestParallelPeripheral:
    def test_same_node_as_serial(self, small_mesh):
        serial = find_pseudo_peripheral(small_mesh, 0)
        par = find_pseudo_peripheral_parallel(
            small_mesh, 0, model=MODEL, n_workers=4
        )
        assert par.node == serial.node
        assert par.result.rounds == serial.rounds

    def test_cycles_accumulate_over_rounds(self, medium_grid):
        par = find_pseudo_peripheral_parallel(
            medium_grid, 0, model=MODEL, n_workers=4
        )
        one_round = batch_bfs(medium_grid, 0, model=MODEL, n_workers=4)
        assert par.cycles >= one_round.stats.makespan
        assert par.milliseconds == pytest.approx(
            par.cycles / (MODEL.clock_ghz * 1e6)
        )

    def test_gpu_model_supported(self, small_mesh):
        gpu = GPUCostModel()
        par = find_pseudo_peripheral_parallel(
            small_mesh, 0, model=gpu, n_workers=32
        )
        assert par.cycles > 0
        assert par.clock_ghz == gpu.clock_ghz

    def test_seed_out_of_range(self, small_mesh):
        with pytest.raises(ValueError):
            find_pseudo_peripheral_parallel(
                small_mesh, -1, model=MODEL, n_workers=2
            )
