"""The unified ``repro.reorder()`` facade, shims and central validation."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.backends import resolve_auto_method
from repro.facade import ALGORITHMS, reorder
from repro.matrices import generators as g
from repro.sparse.csr import coo_to_csr
from repro.sparse.validate import assert_permutation


class TestFacade:
    def test_exported_at_top_level(self):
        assert repro.reorder is reorder
        assert set(ALGORITHMS) == {
            "rcm", "sloan", "gps", "king", "minimum-degree", "spectral",
        }

    def test_default_is_rcm_auto(self, medium_grid):
        res = reorder(medium_grid)
        assert res.algorithm == "rcm"
        assert res.method == resolve_auto_method(
            medium_grid.n, medium_grid.nnz, 1
        )
        assert_permutation(res.permutation, medium_grid.n)

    def test_auto_crossover(self):
        # the cost-model selector keeps the measured shape: the per-level
        # dispatch overhead makes small patterns serial, large ones
        # vectorized (crossover near the old n=2048 threshold)
        assert resolve_auto_method(512) == "serial"
        assert resolve_auto_method(8192) == "vectorized"

    def test_auto_weighs_component_count(self):
        # a huge pattern in many components feeds the process pool; the
        # same pattern as one component doesn't amortize pool startup
        n, nnz = 4_000_000, 16_000_000
        assert resolve_auto_method(n, nnz, n_components=8) == "parallel"
        assert resolve_auto_method(n, nnz, n_components=1) == "vectorized"

    # method equivalence is covered by the golden battery in
    # test_equivalence_matrix.py

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_returns_full_result(self, algorithm, small_grid):
        res = reorder(small_grid, algorithm=algorithm)
        assert res.algorithm == algorithm
        assert_permutation(res.permutation, small_grid.n)
        assert res.initial_bandwidth >= 0
        assert res.reordered_bandwidth >= 0
        assert "ordering" in res.phase_ns
        assert res.to_dict()["algorithm"] == algorithm

    def test_symmetrized_asymmetric_input(self):
        # upper-triangle-only pattern: symmetrize=True makes it reorderable
        rows = np.array([0, 0, 1, 2, 3])
        cols = np.array([1, 2, 3, 4, 4])
        mat = coo_to_csr(5, rows, cols)
        ref = reorder(mat, method="serial", symmetrize=True)
        got = reorder(mat, method="vectorized", symmetrize=True)
        assert np.array_equal(got.permutation, ref.permutation)

    def test_kwargs_are_keyword_only(self, small_grid):
        with pytest.raises(TypeError):
            reorder(small_grid, "rcm")  # noqa: the whole point


class TestValidation:
    def test_bad_algorithm(self, small_grid):
        with pytest.raises(ValueError, match="algorithm must be one of"):
            reorder(small_grid, algorithm="voodoo")

    def test_bad_method(self, small_grid):
        with pytest.raises(ValueError, match="method must be one of"):
            reorder(small_grid, method="quantum")

    def test_bad_method_for_direct_algorithm(self, small_grid):
        with pytest.raises(ValueError, match="method must be one of"):
            reorder(small_grid, algorithm="sloan", method="parallel")

    def test_bad_start_strategy(self, small_grid):
        with pytest.raises(ValueError, match="strategy"):
            reorder(small_grid, start="median")

    def test_start_out_of_range(self, small_grid):
        with pytest.raises(ValueError):
            reorder(small_grid, start=small_grid.n)

    def test_bad_workers(self, small_grid):
        with pytest.raises(ValueError, match="n_workers"):
            reorder(small_grid, n_workers=-1)

    def test_explicit_start_needs_connected(self, two_triangles):
        with pytest.raises(ValueError, match="connected"):
            reorder(two_triangles, start=0)


class TestRemovedEntryPoints:
    """The 1.1 deprecation shims finished their cycle in 1.2: the old
    entry points now raise RemovedAPIError naming the facade call."""

    def test_reverse_cuthill_mckee_is_removed(self, medium_grid):
        from repro.core.api import reverse_cuthill_mckee
        from repro.errors import RemovedAPIError

        with pytest.raises(RemovedAPIError, match="repro.reorder"):
            reverse_cuthill_mckee(medium_grid, method="serial")

    def test_order_is_removed(self, small_grid):
        from repro.errors import RemovedAPIError
        from repro.orderings.api import order

        with pytest.raises(RemovedAPIError, match="repro.reorder"):
            order(small_grid, "rcm")

    def test_removed_error_is_runtime_error(self, small_grid):
        # old `except RuntimeError` handlers still see the failure
        from repro.core.api import reverse_cuthill_mckee

        with pytest.raises(RuntimeError):
            reverse_cuthill_mckee(small_grid)

    def test_facade_does_not_warn(self, small_grid, recwarn):
        reorder(small_grid)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestQualityPermutation:
    def test_quality_accepts_precomputed_permutation(self, small_grid):
        from repro.orderings.api import quality

        res = reorder(small_grid, algorithm="sloan")
        q = quality(small_grid, "sloan", permutation=res.permutation)
        applied = small_grid.permute_symmetric(res.permutation)
        from repro.sparse.bandwidth import bandwidth

        assert q.bandwidth == bandwidth(applied)

    def test_quality_rejects_bad_permutation(self, small_grid):
        from repro.orderings.api import quality

        with pytest.raises(ValueError):
            quality(small_grid, "rcm", permutation=np.zeros(3, dtype=np.int64))
