"""The execution-backend registry: model, selection, degradation, extension."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import backends
from repro.backends import Backend
from repro.core.serial import rcm_serial


EXPECTED_NAMES = (
    "serial", "vectorized", "parallel", "leveled", "unordered",
    "algebraic", "batch-basic", "batch-cpu", "batch-gpu", "threads",
)


class TestRegistry:
    def test_names_and_order(self):
        assert backends.names() == EXPECTED_NAMES

    def test_method_choices_prepends_auto(self):
        assert backends.method_choices() == ("auto",) + EXPECTED_NAMES

    def test_methods_constant_is_registry_snapshot(self):
        assert repro.METHODS == backends.names()

    def test_get_returns_backend(self):
        b = backends.get("serial")
        assert isinstance(b, Backend)
        assert b.name == "serial"

    def test_get_unknown_raises_uniform_error(self):
        with pytest.raises(ValueError, match="method must be one of") as exc:
            backends.get("quantum")
        for name in backends.method_choices():
            assert repr(name) in str(exc.value)

    def test_is_registered(self):
        assert backends.is_registered("vectorized")
        assert not backends.is_registered("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            backends.register(backends.get("serial"))

    def test_replace_reinstalls(self):
        original = backends.get("serial")
        assert backends.register(original, replace=True) is original
        assert backends.get("serial") is original

    def test_unregister_unknown_raises(self):
        with pytest.raises(ValueError, match="not registered"):
            backends.unregister("quantum")


class TestBackendModel:
    def test_exactly_one_run_callable_required(self):
        run = lambda *a, **k: None  # noqa: E731
        with pytest.raises(ValueError, match="exactly one"):
            Backend(name="x", kind="serial", summary="s")
        with pytest.raises(ValueError, match="exactly one"):
            Backend(name="x", kind="serial", summary="s",
                    run_component=run, run_matrix=run)

    def test_kind_must_be_known(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            Backend(name="x", kind="quantum", summary="s",
                    run_component=lambda *a, **k: None)

    def test_auto_candidate_needs_cost_model(self):
        with pytest.raises(ValueError, match="cost_estimate"):
            Backend(name="x", kind="serial", summary="s",
                    run_component=lambda *a, **k: None, auto_candidate=True)

    def test_estimate_without_cost_model_is_infinite(self):
        assert backends.get("leveled").estimate(1000, 4000) == float("inf")

    def test_capability_flags_match_what_kernels_read(self):
        caps = {b.name: b for b in backends.backends()}
        assert caps["serial"].kind == backends.KIND_SERIAL
        assert caps["parallel"].kind == backends.KIND_PROCESS
        assert caps["parallel"].honors_n_workers
        assert caps["threads"].kind == backends.KIND_OS_THREADS
        assert caps["batch-cpu"].honors_config and caps["batch-cpu"].emits_stats
        assert caps["batch-gpu"].honors_seed
        assert not caps["batch-gpu"].honors_n_workers
        assert not caps["vectorized"].emits_stats


class TestAutoSelection:
    def test_small_patterns_stay_serial(self):
        assert backends.resolve_auto_method(64) == "serial"
        assert backends.resolve_auto_method(512) == "serial"

    def test_large_patterns_go_vectorized(self):
        assert backends.resolve_auto_method(8192) == "vectorized"

    def test_component_count_unlocks_the_pool(self):
        n, nnz = 4_000_000, 16_000_000
        assert backends.resolve_auto_method(n, nnz, 8) == "parallel"
        assert backends.resolve_auto_method(n, nnz, 1) == "vectorized"

    def test_nnz_default_assumes_mesh_valence(self):
        n = 8192
        assert backends.resolve_auto_method(n) == backends.resolve_auto_method(
            n, 4 * n
        )

    def test_resolution_is_always_registered(self):
        for n in (1, 100, 10_000, 1_000_000):
            assert backends.is_registered(backends.resolve_auto_method(n))


class TestDegradation:
    def test_chain_starts_with_request_then_ranked(self):
        assert backends.degradation_order("parallel") == (
            "parallel", "vectorized", "serial",
        )
        assert backends.degradation_order("vectorized") == (
            "vectorized", "serial",
        )
        assert backends.degradation_order("serial") == ("serial", "vectorized")

    def test_unregistered_method_still_gets_a_chain(self):
        assert backends.degradation_order("gpu-distributed") == (
            "gpu-distributed", "vectorized", "serial",
        )

    def test_in_process_fallback_skips_process_kinds(self):
        assert backends.in_process_fallback("parallel") == "vectorized"
        assert backends.get(
            backends.in_process_fallback("parallel")
        ).kind != backends.KIND_PROCESS


class TestCapabilityTable:
    def test_one_row_per_backend(self):
        table = backends.capability_table()
        lines = table.splitlines()
        assert lines[0].startswith("| method |")
        assert len(lines) == 2 + len(backends.names())
        for name in backends.names():
            assert f"| `{name}` |" in table

    def test_rows_are_json_serializable(self):
        import json

        rows = backends.capability_rows()
        assert [r["method"] for r in rows] == list(backends.names())
        json.dumps(rows)  # must not raise
        for row in rows:
            assert set(row) >= {
                "method", "kind", "n_workers", "config", "seed", "stats",
            }


class TestNinthBackend:
    """Registering a new backend is a one-file change: every surface —
    dispatch, validation, CLI choices, degradation, docs table — picks it
    up from the single ``register()`` call."""

    @pytest.fixture()
    def mirror(self):
        backend = Backend(
            name="mirror",
            kind=backends.KIND_SERIAL,
            summary="test-only clone of the serial reference",
            run_component=lambda mat, start, *, total, n_workers, config,
                seed: (rcm_serial(mat, start), None),
        )
        backends.register(backend)
        try:
            yield backend
        finally:
            backends.unregister("mirror")

    def test_dispatches_through_the_full_pipeline(self, mirror, small_grid):
        ref = repro.reorder(small_grid, method="serial")
        res = repro.reorder(small_grid, method="mirror")
        assert res.method == "mirror"
        assert np.array_equal(res.permutation, ref.permutation)

    def test_every_surface_sees_it(self, mirror):
        assert "mirror" in backends.names()
        assert "mirror" in backends.method_choices()
        assert "| `mirror` |" in backends.capability_table()
        assert backends.degradation_order("mirror") == (
            "mirror", "vectorized", "serial",
        )

    def test_cli_choices_follow(self, mirror):
        from repro.cli import build_parser

        sub = next(
            a for a in build_parser()._subparsers._group_actions
        ).choices["reorder"]
        method_action = next(a for a in sub._actions if a.dest == "method")
        assert "mirror" in method_action.choices

    def test_error_messages_follow(self, mirror, small_grid):
        with pytest.raises(ValueError) as exc:
            repro.reorder(small_grid, method="quantum")
        assert "'mirror'" in str(exc.value)

    def test_gone_after_unregister(self, small_grid):
        with pytest.raises(ValueError, match="method must be one of"):
            repro.reorder(small_grid, method="mirror")
