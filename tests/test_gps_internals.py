"""White-box tests for GPS internals and engine wake semantics."""

import numpy as np
import pytest

from repro.orderings.gps import gps_endpoints, _combined_levels, gps_component
from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.matrices import generators as g


class TestGpsEndpoints:
    def test_path_endpoints_are_ends(self, path5):
        members = np.arange(5)
        s, e = gps_endpoints(path5, members)
        assert {s, e} <= {0, 4} or (s in (0, 4))
        # at minimum the start is an extreme of the path
        assert s in (0, 4)

    def test_endpoints_far_apart_on_grid(self):
        mat = g.grid2d(10, 10)
        members = np.arange(mat.n)
        s, e = gps_endpoints(mat, members)
        dist = bfs_levels(mat, s)[e]
        # pseudo-diameter: within a small factor of the true diameter (18)
        assert dist >= 12

    def test_deterministic(self, small_mesh):
        members = np.arange(small_mesh.n)
        assert gps_endpoints(small_mesh, members) == gps_endpoints(
            small_mesh, members
        )


class TestCombinedLevels:
    def test_partition_and_contiguity(self):
        mat = g.grid2d(8, 8)
        members = np.arange(mat.n)
        s, e = gps_endpoints(mat, members)
        combined = _combined_levels(mat, members, s, e)
        # every member assigned
        assert np.all(combined[members] >= 0)
        # levels form a contiguous range starting at 0
        lv = np.unique(combined[members])
        assert lv[0] == 0
        assert np.array_equal(lv, np.arange(lv.size))

    def test_adjacent_nodes_within_one_level(self):
        """Combined levels stay a valid level structure: neighbours differ
        by at most one level (otherwise the numbering couldn't be banded)."""
        mat = g.delaunay_mesh(300, seed=3)
        members = np.arange(mat.n)
        s, e = gps_endpoints(mat, members)
        combined = _combined_levels(mat, members, s, e)
        row_of = np.repeat(np.arange(mat.n), np.diff(mat.indptr))
        diffs = np.abs(combined[row_of] - combined[mat.indices])
        assert int(diffs.max()) <= 1

    def test_balancing_not_wider_than_worse_side(self):
        mat = g.grid2d(9, 9)
        members = np.arange(mat.n)
        s, e = gps_endpoints(mat, members)
        combined = _combined_levels(mat, members, s, e)
        w_combined = np.bincount(combined[members]).max()
        w_s = np.bincount(bfs_levels(mat, s)[members]).max()
        w_e = np.bincount(bfs_levels(mat, e)[members]).max()
        assert w_combined <= max(w_s, w_e)


class TestGpsComponent:
    def test_orders_whole_component(self, small_mesh):
        members = np.arange(small_mesh.n)
        order = gps_component(small_mesh, members)
        assert sorted(order.tolist()) == members.tolist()

    def test_level_monotone(self):
        mat = g.grid2d(8, 8)
        members = np.arange(mat.n)
        s, e = gps_endpoints(mat, members)
        combined = _combined_levels(mat, members, s, e)
        order = gps_component(mat, members)
        seq = combined[order]
        assert np.all(np.diff(seq) >= 0)


class TestEngineWakeSemantics:
    def test_multiple_waiters_wake_together(self):
        from repro.machine.engine import Engine
        from repro.machine.stats import RunStats, Stage

        engine = Engine(3, RunStats(n_workers=3))
        flag = {"go": False}
        wake_times = {}

        def setter():
            yield ("cost", Stage.OTHER, 100.0)
            flag["go"] = True
            yield ("cost", Stage.OTHER, 50.0)

        def waiter(wid):
            def gen():
                yield ("wait", lambda: flag["go"])
                wake_times[wid] = engine.now
                yield ("cost", Stage.OTHER, 1.0)
            return gen()

        engine.run([setter(), waiter(1), waiter(2)])
        # both waiters woke at the setter's mutation-completion time (150)
        assert wake_times[1] == pytest.approx(150.0)
        assert wake_times[2] == pytest.approx(150.0)

    def test_stall_attribution_per_waiter(self):
        from repro.machine.engine import Engine
        from repro.machine.stats import RunStats, Stage

        stats = RunStats(n_workers=2)
        engine = Engine(2, stats)
        flag = {"go": False}

        def setter():
            yield ("cost", Stage.OTHER, 200.0)
            flag["go"] = True
            yield ("cost", Stage.OTHER, 10.0)

        def waiter():
            yield ("cost", Stage.OTHER, 40.0)   # waits from t=40
            yield ("wait", lambda: flag["go"])  # wakes at 210

        engine.run([setter(), waiter()])
        assert stats.per_worker[1].cycles[Stage.STALL] == pytest.approx(170.0)

    def test_jitter_bounded(self):
        from repro.machine.engine import Engine
        from repro.machine.stats import RunStats, Stage

        for seed in range(5):
            engine = Engine(1, RunStats(n_workers=1), jitter=0.4, seed=seed)

            def w():
                for _ in range(50):
                    yield ("cost", Stage.OTHER, 100.0)

            makespan = engine.run([w()])
            # each event perturbed by at most ±20%
            assert 50 * 80.0 <= makespan <= 50 * 120.0
