"""Equivalence suite: the vectorized frontier kernel vs the serial reference.

The whole point of ``"vectorized"`` is that it is *bit-identical* to
``rcm_serial`` — same tie-breaks, same order — so every test here compares
full permutations, not just bandwidth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serial import cuthill_mckee, rcm_serial, serial_cycles
from repro.core.vectorized import (
    cuthill_mckee_vectorized,
    rcm_vectorized,
    vectorized_cycles,
)
from repro.matrices import generators as g
from repro.matrices.mycielski import mycielskian
from repro.sparse.csr import CSRMatrix
from repro.sparse.validate import assert_permutation

from tests.conftest import random_symmetric


def both(mat: CSRMatrix, start: int):
    ref = rcm_serial(mat, start)
    got = rcm_vectorized(mat, start)
    return ref, got


class TestStructuredGraphs:
    def test_path(self, path5):
        ref, got = both(path5, 0)
        assert np.array_equal(ref, got)

    def test_star(self, star):
        ref, got = both(star, 0)
        assert np.array_equal(ref, got)

    def test_star_from_leaf(self, star):
        ref, got = both(star, 3)
        assert np.array_equal(ref, got)

    def test_grid(self, medium_grid):
        ref, got = both(medium_grid, 0)
        assert np.array_equal(ref, got)

    def test_mesh(self, small_mesh):
        ref, got = both(small_mesh, 5)
        assert np.array_equal(ref, got)

    def test_mycielski(self, small_mycielski):
        ref, got = both(small_mycielski, 0)
        assert np.array_equal(ref, got)

    def test_hub(self, hub):
        ref, got = both(hub, 0)
        assert np.array_equal(ref, got)

    def test_single_node(self):
        mat = CSRMatrix.from_edges(1, [])
        assert np.array_equal(rcm_vectorized(mat, 0), [0])


class TestGeneratorFamilies:
    """Every generator family, multiple start nodes each."""

    @pytest.mark.parametrize("maker", [
        lambda: g.grid2d(17, 23),
        lambda: g.delaunay_mesh(500, seed=11),
        lambda: g.random_geometric(400, k=5, seed=2),
        lambda: g.hub_matrix(300, n_hubs=3, hub_degree_frac=0.5, seed=9),
        lambda: mycielskian(8),
    ])
    @pytest.mark.parametrize("start_frac", [0.0, 0.37, 0.93])
    def test_families(self, maker, start_frac):
        mat = maker()
        start = int(start_frac * (mat.n - 1))
        ref, got = both(mat, start)
        assert_permutation(got, mat.n)
        assert np.array_equal(ref, got)

    def test_random_fuzz(self, random_graphs):
        for mat in random_graphs:
            ref = cuthill_mckee(mat, 0)
            got = cuthill_mckee_vectorized(mat, 0)
            assert np.array_equal(ref, got)


class TestCostModel:
    def test_vectorized_cycles_positive(self, medium_grid):
        cycles = vectorized_cycles(medium_grid, 0)
        assert cycles > 0

    def test_models_cross_over_with_size(self, medium_grid):
        # per-level dispatch overhead dominates on small graphs; on large
        # ones the amortized per-edge costs win — mirroring the measured
        # behaviour that motivates the ``method="auto"`` size threshold
        big = g.grid2d(80, 80)
        assert vectorized_cycles(medium_grid, 0) > serial_cycles(
            medium_grid, start=0
        )
        assert vectorized_cycles(big, 0) < serial_cycles(big, start=0)


class TestOrientation:
    def test_cm_is_reverse_of_rcm(self, small_grid):
        cm = cuthill_mckee_vectorized(small_grid, 0)
        rcm = rcm_vectorized(small_grid, 0)
        assert np.array_equal(rcm, cm[::-1])

    def test_returns_own_buffer(self, small_grid):
        a = rcm_vectorized(small_grid, 0)
        b = rcm_vectorized(small_grid, 0)
        a[0] = -1
        assert b[0] != -1


def test_large_sparse_fuzz():
    """Bigger random graphs than the fixture family, exact match required."""
    for seed in range(4):
        mat = random_symmetric(600, 0.01, seed + 100)
        assert np.array_equal(cuthill_mckee(mat, 0),
                              cuthill_mckee_vectorized(mat, 0))
