"""Tests for the run-history store and statistical trend verdicts.

Covers provenance stamping, results-directory ingestion, the robust
median/MAD verdict math (the acceptance bar: a 2x wall-time regression
FAILs while <=10% jitter PASSes), trend evaluation and rendering, the
``repro telemetry ingest`` / ``repro telemetry trend`` CLI, the
history-aware ``benchmarks/check_regressions.py`` gate, and the
single-location benchmark artifact contract of ``benchmarks/conftest.py``.
"""

import importlib.util
import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.telemetry import history

REPO = Path(__file__).resolve().parents[1]


def _bench_payload(name, wall_ms, **extra):
    payload = {"bench": name, "wall_ms": wall_ms, "counters": {}}
    payload.update(extra)
    return payload


def _seed_results(results_dir, benches):
    results_dir.mkdir(parents=True, exist_ok=True)
    for name, payload in benches.items():
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )


def _seed_history(path, walls, bench="kernel_bfs", sha_prefix="cafe"):
    """One stored run per wall-ms value, oldest first."""
    store = history.HistoryStore(path)
    for i, wall in enumerate(walls):
        store.append(history.stamp_provenance({
            "git_sha": f"{sha_prefix}{i:04d}",
            "benches": {bench: {"wall_ms": wall}},
            "counters": {"service.cache.hits": 3, "service.cache.misses": 1},
            "calibration": None,
        }))
    return store


class TestProvenance:
    def test_stamp_adds_all_fields(self):
        rec = history.stamp_provenance({"benches": {}}, unix_time=1700000000.0)
        assert rec["schema"] == history.HISTORY_SCHEMA
        assert rec["schema_version"] == history.SCHEMA_VERSION
        assert rec["unix_time"] == 1700000000.0
        assert rec["timestamp"] == "2023-11-14T22:13:20+00:00"
        for key in ("git_sha", "branch", "hostname"):
            assert rec[key]

    def test_stamp_never_overwrites_caller_values(self):
        rec = history.stamp_provenance(
            {"git_sha": "feedface", "hostname": "ci-box"}
        )
        assert rec["git_sha"] == "feedface"
        assert rec["hostname"] == "ci-box"


class TestBuildRunRecord:
    def test_ingests_every_bench_artifact(self, tmp_path):
        _seed_results(tmp_path, {
            "kernel_bfs": _bench_payload(
                "kernel_bfs", 12.5, matrix="bcspwr10", method="threads",
                counters={"threads.speculation.discovered": 10},
            ),
            "fig3_run": _bench_payload(
                "fig3_run", 80.0,
                counters={"threads.speculation.discovered": 5},
            ),
        })
        rec = history.build_run_record(tmp_path)
        assert rec["benches"]["kernel_bfs"] == {
            "wall_ms": 12.5, "matrix": "bcspwr10", "method": "threads",
        }
        assert rec["benches"]["fig3_run"]["wall_ms"] == 80.0
        # counters sum across payloads into one run-level aggregate
        assert rec["counters"]["threads.speculation.discovered"] == 15
        assert rec["calibration"] is None

    def test_skips_corrupt_artifacts(self, tmp_path):
        _seed_results(tmp_path, {"ok": _bench_payload("ok", 1.0)})
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        rec = history.build_run_record(tmp_path)
        assert list(rec["benches"]) == ["ok"]

    def test_folds_flight_calibration(self, tmp_path):
        from repro.telemetry import flight

        _seed_results(tmp_path, {"ok": _bench_payload("ok", 1.0)})
        rec = flight.FlightRecorder(tmp_path / "flight.jsonl")
        rec.record({
            "n": 1000, "nnz": 4000, "n_components": 1,
            "estimates": {"serial": 100.0, "vectorized": 120.0},
            "chosen": "serial", "actual_wall_ms": 1.0,
        })
        record = history.build_run_record(tmp_path)
        assert record["calibration"]["records"] == 1
        assert "mispick_rate" in record["calibration"]


class TestHistoryStore:
    def test_append_and_read_roundtrip(self, tmp_path):
        store = _seed_history(tmp_path / "h.jsonl", [100.0, 101.0])
        runs = store.read()
        assert len(runs) == 2
        assert runs[0]["git_sha"] == "cafe0000"
        assert len(store) == 2

    def test_read_skips_foreign_and_torn_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        _seed_history(path, [100.0])
        with path.open("a") as fh:
            fh.write('{"schema": "other/v1"}\n')
            fh.write('{"torn...\n')
        assert len(history.read_history(path)) == 1

    def test_runs_since_sha_prefix(self, tmp_path):
        store = _seed_history(tmp_path / "h.jsonl", [1.0, 2.0, 3.0])
        runs = store.read()
        tail = history.runs_since(runs, "cafe0001")
        assert [r["benches"]["kernel_bfs"]["wall_ms"] for r in tail] == [2.0, 3.0]
        # unknown sha keeps the whole trajectory
        assert len(history.runs_since(runs, "beef")) == 3


class TestRobustVerdict:
    JITTERY = [100.0, 98.0, 102.0, 101.0, 99.0]

    def test_skip_below_min_samples(self):
        v = history.robust_verdict(100.0, [100.0, 101.0], min_samples=5)
        assert v["status"] == "SKIP"
        assert v["z"] is None

    def test_small_jitter_passes(self):
        # <=10% excursion over a jittery window must not page anyone
        v = history.robust_verdict(108.0, self.JITTERY)
        assert v["status"] == "PASS"

    def test_doubling_fails(self):
        v = history.robust_verdict(200.0, self.JITTERY)
        assert v["status"] == "FAIL"
        assert v["ratio"] == pytest.approx(2.0)
        assert v["z"] > history.DEFAULT_Z_FAIL

    def test_zero_mad_window_needs_material_ratio(self):
        # a perfectly stable window (MAD 0) must not FAIL on an invisible
        # absolute wobble: the relative floor + ratio guard hold it to PASS
        v = history.robust_verdict(100.4, [100.0] * 8)
        assert v["status"] != "FAIL"

    def test_improvement_detected(self):
        v = history.robust_verdict(50.0, self.JITTERY)
        assert v["status"] == "IMPROVED"

    def test_warn_band(self):
        # z in (3.5, 6] or z > 6 with ratio under the guard -> WARN
        v = history.robust_verdict(112.0, self.JITTERY)
        assert v["status"] == "WARN"


class TestEvaluateTrends:
    def test_latest_run_judged_against_prior_window(self, tmp_path):
        store = _seed_history(
            tmp_path / "h.jsonl", [100.0, 98.0, 102.0, 101.0, 99.0, 200.0]
        )
        verdicts = history.evaluate_trends(store.read())
        (v,) = verdicts
        assert v.bench == "kernel_bfs"
        assert v.status == "FAIL"
        assert v.samples == 5
        assert v.series[-1] == 200.0

    def test_vanished_bench_reported_missing(self, tmp_path):
        store = _seed_history(tmp_path / "h.jsonl", [1.0, 2.0])
        store.append(history.stamp_provenance({
            "benches": {"other": {"wall_ms": 5.0}}, "counters": {},
        }))
        statuses = {
            v.bench: v.status
            for v in history.evaluate_trends(store.read())
        }
        assert statuses["kernel_bfs"] == "MISSING"
        assert statuses["other"] == "SKIP"

    def test_empty_history(self):
        assert history.evaluate_trends([]) == []


class TestRendering:
    def test_sparkline_shape(self):
        line = history.sparkline([1.0, 2.0, 3.0, 4.0], width=8)
        assert len(line) == 8
        assert line.endswith("█")
        assert history.sparkline([], width=4) == "    "

    def test_sparkline_flat_series(self):
        assert set(history.sparkline([5.0] * 4, width=4)) == {"▁"}

    def test_render_trends_table(self, tmp_path):
        store = _seed_history(tmp_path / "h.jsonl", [100.0] * 6)
        text = history.render_trends(history.evaluate_trends(store.read()))
        assert "kernel_bfs" in text
        assert "PASS" in text

    def test_verdict_document_summary(self, tmp_path):
        store = _seed_history(
            tmp_path / "h.jsonl", [100.0, 98.0, 102.0, 101.0, 99.0, 200.0]
        )
        doc = history.verdict_document(
            history.evaluate_trends(store.read()), history_path="h.jsonl"
        )
        assert doc["kind"] == "trend-verdict"
        assert doc["failed"] == ["kernel_bfs"]
        assert doc["ok"] is False
        assert doc["by_status"] == {"FAIL": 1}


class TestCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_ingest_appends_a_run(self, tmp_path, capsys):
        results = tmp_path / "results"
        _seed_results(results, {"kernel_bfs": _bench_payload("kernel_bfs", 10.0)})
        hist = tmp_path / "history.jsonl"
        assert self._run(
            "telemetry", "ingest",
            "--results-dir", str(results), "--history", str(hist),
        ) == 0
        assert "1 benches" in capsys.readouterr().out
        assert len(history.read_history(hist)) == 1

    def test_ingest_empty_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert self._run(
            "telemetry", "ingest",
            "--results-dir", str(tmp_path / "empty"),
            "--history", str(tmp_path / "h.jsonl"),
        ) == 2

    def test_trend_check_fails_on_regression(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        _seed_history(hist, [100.0, 98.0, 102.0, 101.0, 99.0, 200.0])
        assert self._run(
            "telemetry", "trend", "--history", str(hist), "--check"
        ) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "kernel_bfs" in captured.err

    def test_trend_check_passes_on_jitter(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        _seed_history(hist, [100.0, 98.0, 102.0, 101.0, 99.0, 108.0])
        assert self._run(
            "telemetry", "trend", "--history", str(hist), "--check"
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_trend_warn_only_never_fails(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        _seed_history(hist, [100.0, 98.0, 102.0, 101.0, 99.0, 200.0])
        assert self._run(
            "telemetry", "trend", "--history", str(hist),
            "--check", "--warn-only",
        ) == 0

    def test_trend_json_and_verdict_out(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        out = tmp_path / "verdict.json"
        _seed_history(hist, [100.0] * 6)
        assert self._run(
            "telemetry", "trend", "--history", str(hist),
            "--json", "--verdict-out", str(out),
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert json.loads(out.read_text())["kind"] == "trend-verdict"

    def test_trend_since_restricts_the_window(self, tmp_path, capsys):
        hist = tmp_path / "h.jsonl"
        _seed_history(hist, [1.0, 1.0, 100.0, 100.0, 100.0, 100.0, 100.0,
                             100.0, 101.0])
        # full history still passes (old fast runs fall out of the median)
        assert self._run(
            "telemetry", "trend", "--history", str(hist), "--check",
            "--since", "cafe0002",
        ) == 0
        out = capsys.readouterr().out
        assert "7 runs" in out

    def test_trend_missing_history_exits_2(self, tmp_path, capsys):
        assert self._run(
            "telemetry", "trend", "--history", str(tmp_path / "nope.jsonl"),
        ) == 2


def _load_check_regressions():
    spec = importlib.util.spec_from_file_location(
        "check_regressions", REPO / "benchmarks" / "check_regressions.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestCheckRegressionsGate:
    def test_history_engine_flags_doubling(self, tmp_path, capsys):
        mod = _load_check_regressions()
        results = tmp_path / "results"
        _seed_results(results, {
            "kernel_bfs": _bench_payload("kernel_bfs", 200.0),
        })
        _seed_history(results / "history.jsonl",
                      [100.0, 98.0, 102.0, 101.0, 99.0])
        rc = mod.main([
            "--results-dir", str(results),
            "--baselines", str(tmp_path / "baselines.json"),
            "--enforce", "kernel_*",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "history" in out
        assert "REGRESSION" in out

    def test_history_engine_passes_jitter(self, tmp_path, capsys):
        mod = _load_check_regressions()
        results = tmp_path / "results"
        _seed_results(results, {
            "kernel_bfs": _bench_payload("kernel_bfs", 108.0),
        })
        _seed_history(results / "history.jsonl",
                      [100.0, 98.0, 102.0, 101.0, 99.0])
        rc = mod.main([
            "--results-dir", str(results),
            "--baselines", str(tmp_path / "baselines.json"),
            "--enforce", "kernel_*",
        ])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_static_fallback_without_enough_history(self, tmp_path, capsys):
        mod = _load_check_regressions()
        results = tmp_path / "results"
        _seed_results(results, {
            "kernel_bfs": _bench_payload("kernel_bfs", 200.0),
        })
        _seed_history(results / "history.jsonl", [100.0, 101.0])  # < 5
        (tmp_path / "baselines.json").write_text(
            json.dumps({"kernel_bfs": {"wall_ms": 100.0}})
        )
        rc = mod.main([
            "--results-dir", str(results),
            "--baselines", str(tmp_path / "baselines.json"),
            "--enforce", "kernel_*",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "static" in out


class TestBenchArtifactContract:
    @pytest.mark.slow
    def test_bench_conftest_writes_only_to_results_dir(self, tmp_path):
        # run one trivial benchmark under a copy of the real bench conftest:
        # the artifact must land in results/ only, carrying the new stamps
        bench_dir = tmp_path / "benchcopy"
        bench_dir.mkdir()
        shutil.copy(REPO / "benchmarks" / "conftest.py",
                    bench_dir / "conftest.py")
        (bench_dir / "bench_tiny.py").write_text(
            "def test_noop():\n    assert True\n"
        )
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
             "bench_tiny.py"],
            cwd=bench_dir, capture_output=True, text=True,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(REPO / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        artifact = bench_dir / "results" / "BENCH_noop.json"
        assert artifact.exists()
        # single-location contract: nothing lands beside the conftest or
        # at the tmp "repo root"
        assert not list(bench_dir.glob("BENCH_*.json"))
        assert not list(tmp_path.glob("BENCH_*.json"))
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == 1
        assert payload["hostname"]
        assert payload["timestamp"].endswith("+00:00")
