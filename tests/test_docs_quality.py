"""Documentation quality gates.

Every public module, class and function in the library must carry a
docstring — deliverable (e) requires doc comments on every public item, and
this test keeps that true as the code evolves.  Also checks that the
repository-level documents reference each other consistently.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO = Path(repro.__file__).resolve().parents[2]


def public_modules():
    mods = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        mods.append(info.name)
    return sorted(mods)


@pytest.mark.parametrize("module_name", public_modules())
def test_module_docstrings(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__, f"module {module_name} lacks a docstring"
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) != module_name:
                continue  # re-export; documented at its home
            assert inspect.getdoc(obj), (
                f"{module_name}.{name} is public but undocumented"
            )
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(member):
                        continue
                    assert inspect.getdoc(member), (
                        f"{module_name}.{name}.{mname} is public but "
                        "undocumented"
                    )


class TestRepositoryDocs:
    def test_required_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/ALGORITHM.md", "docs/SIMULATOR.md"):
            assert (REPO / doc).is_file(), f"{doc} missing"

    def test_design_lists_every_experiment(self):
        text = (REPO / "DESIGN.md").read_text()
        for token in ("Table I", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6"):
            assert token in text

    def test_experiments_covers_every_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for token in ("Table I", "Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4",
                      "Fig. 5", "Fig. 6", "Reproduction verdict"):
            assert token in text

    def test_readme_quickstart_runs(self):
        """The README's quickstart snippet must actually work."""
        import numpy as np
        import repro
        from repro.matrices import grid2d

        mat = grid2d(20, 20)
        scrambled = mat.permute_symmetric(
            np.random.default_rng(0).permutation(mat.n)
        )
        res = repro.reorder(scrambled, start="peripheral")
        assert res.reordered_bandwidth < res.initial_bandwidth
        reordered = scrambled.permute_symmetric(res.permutation)
        assert reordered.nnz == mat.nnz

    def test_every_example_has_module_docstring(self):
        for ex in sorted((REPO / "examples").glob("*.py")):
            text = ex.read_text()
            assert text.lstrip().startswith(('#!', '"""')), ex.name
            assert '"""' in text, f"{ex.name} lacks a docstring"
