"""Tests for the CLI, trace visualization and spy plots."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.machine.tracing import ascii_gantt, to_chrome_tracing, stage_timeline
from repro.sparse.spy import spy, side_by_side
from repro.sparse.io import load_npz, read_matrix_market
from repro.matrices import generators as g


@pytest.fixture
def grid_file(tmp_path):
    from repro.sparse.io import save_npz

    mat = g.grid2d(10, 10)
    p = tmp_path / "grid.npz"
    save_npz(mat, p)
    return p


class TestCliInfo:
    def test_info_file(self, grid_file, capsys):
        assert cli_main(["info", str(grid_file), "--no-spy"]) == 0
        out = capsys.readouterr().out
        assert "n=100" in out
        assert "components=1" in out

    def test_info_named_matrix(self, capsys):
        assert cli_main(["info", "--matrix", "bcspwr10", "--no-spy"]) == 0
        assert "nnz=" in capsys.readouterr().out

    def test_info_spy_included(self, grid_file, capsys):
        cli_main(["info", str(grid_file)])
        assert "+----" in capsys.readouterr().out


class TestCliReorder:
    def test_reorder_roundtrip_npz(self, grid_file, tmp_path, capsys):
        out = tmp_path / "reordered.npz"
        code = cli_main([
            "reorder", str(grid_file), "-o", str(out),
            "--method", "batch-cpu", "--workers", "2",
        ])
        assert code == 0
        reordered = load_npz(out)
        assert reordered.nnz == g.grid2d(10, 10).nnz
        assert "bandwidth" in capsys.readouterr().out

    def test_reorder_writes_mtx(self, grid_file, tmp_path):
        out = tmp_path / "reordered.mtx"
        cli_main(["reorder", str(grid_file), "-o", str(out)])
        assert read_matrix_market(out).nnz == g.grid2d(10, 10).nnz

    def test_reorder_perm_output(self, grid_file, tmp_path):
        pf = tmp_path / "perm.txt"
        cli_main(["reorder", str(grid_file), "--perm-output", str(pf)])
        perm = np.loadtxt(pf, dtype=np.int64)
        assert sorted(perm.tolist()) == list(range(100))

    def test_reorder_spy_flag(self, grid_file, capsys):
        cli_main(["reorder", str(grid_file), "--spy"])
        assert "before" in capsys.readouterr().out

    def test_all_methods_via_cli(self, grid_file):
        for method in ("serial", "leveled", "unordered", "batch-cpu"):
            assert cli_main(["reorder", str(grid_file), "--method", method]) == 0


class TestCliGenerate:
    def test_list(self, capsys):
        assert cli_main(["generate", "--list"]) == 0
        assert "mycielskian18" in capsys.readouterr().out

    def test_generate_file(self, tmp_path):
        out = tmp_path / "eco.npz"
        assert cli_main(["generate", "ecology1", "-o", str(out)]) == 0
        assert load_npz(out).n == 12100


class TestCliTrace:
    def test_trace_outputs_gantt_and_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = cli_main([
            "trace", "--matrix", "benzene", "--workers", "2",
            "--width", "40", "-o", str(out),
        ])
        assert code == 0
        assert "Gantt" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) > 0


class TestTracing:
    def trace_of(self, workers=3):
        from repro.core.state import make_state
        from repro.core.batch import worker_loop
        from repro.core.batches import BatchConfig
        from repro.machine.engine import Engine
        from repro.machine.costmodel import CPUCostModel

        mat = g.grid2d(12, 12)
        state = make_state(mat, 0, n_workers=workers)
        model = CPUCostModel()
        engine = Engine(workers, state.stats, trace=True)
        engine.run([
            worker_loop(state, BatchConfig(), model, engine)
            for _ in range(workers)
        ])
        return engine.trace

    def test_gantt_one_lane_per_worker(self):
        trace = self.trace_of(workers=3)
        out = ascii_gantt(trace, width=50, n_workers=3)
        assert out.count("w0") == 1 and out.count("w2") == 1

    def test_gantt_empty(self):
        assert "empty" in ascii_gantt([])

    def test_chrome_tracing_format(self, tmp_path):
        trace = self.trace_of(workers=2)
        p = tmp_path / "t.json"
        to_chrome_tracing(trace, p)
        payload = json.loads(p.read_text())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(meta) + len(spans) == len(payload["traceEvents"])
        # one thread-name metadata record per worker lane
        assert {e["args"]["name"] for e in meta} == {"worker 0", "worker 1"}
        assert spans, "expected at least one complete event"
        assert all(set(e) >= {"name", "ph", "ts", "dur", "tid"} for e in spans)

    def test_stage_timeline_sorted(self):
        trace = self.trace_of()
        spans = stage_timeline(trace, "Discover")
        assert spans == sorted(spans)
        assert all(b >= a for a, b in spans)


class TestSpy:
    def test_spy_dimensions(self, small_grid):
        out = spy(small_grid, size=20)
        lines = out.splitlines()
        assert len(lines) == 22  # grid + two borders
        assert all(len(l) == 22 for l in lines)

    def test_spy_shows_band(self):
        band = g.banded(100, 2)
        out = spy(band, size=20)
        # densest cells on the diagonal
        rows = out.splitlines()[1:-1]
        assert rows[0][1] != " "
        assert rows[10][11] != " "
        assert rows[0][15] == " "

    def test_spy_empty_matrix(self):
        from repro.sparse.csr import coo_to_csr

        out = spy(coo_to_csr(5, [], []), size=8)
        assert "@" not in out

    def test_side_by_side(self, small_grid):
        out = side_by_side(small_grid, small_grid, size=10,
                           titles=("L", "R"))
        assert "L" in out and "R" in out


class TestCliCompare:
    def test_compare_runs(self, grid_file, capsys):
        assert cli_main(["compare", str(grid_file), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "RCM" in out and "Sloan" in out and "GPS" in out

    def test_compare_mindeg_flag(self, grid_file, capsys):
        assert cli_main(["compare", str(grid_file), "--mindeg"]) == 0
        assert "min-degree" in capsys.readouterr().out


class TestPaperDriver:
    def test_quick_report(self, tmp_path, capsys):
        from repro.bench.paper import main as paper_main

        out = tmp_path / "REPORT.md"
        path = paper_main(["--quick", "-o", str(out)])
        assert path == out
        text = out.read_text()
        assert "Table I" in text
        assert "Fig. 6" in text
        assert "Ablation" in text
