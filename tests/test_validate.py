"""Unit tests for structural validation helpers."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix, coo_to_csr
from repro.sparse.validate import (
    validate_csr,
    is_structurally_symmetric,
    assert_permutation,
    has_duplicates,
)


class TestSymmetryCheck:
    def test_symmetric(self, small_grid):
        assert is_structurally_symmetric(small_grid)

    def test_asymmetric(self):
        m = coo_to_csr(3, [0], [1])
        assert not is_structurally_symmetric(m)

    def test_diagonal_only_is_symmetric(self):
        m = coo_to_csr(3, [0, 1], [0, 1])
        assert is_structurally_symmetric(m)


class TestDuplicates:
    def test_clean(self, small_grid):
        assert not has_duplicates(small_grid)

    def test_detects_duplicate(self):
        m = CSRMatrix(
            indptr=np.array([0, 2]), indices=np.array([0, 0]), n=1
        )
        assert has_duplicates(m)


class TestValidateCsr:
    def test_passes_on_clean(self, small_grid):
        validate_csr(small_grid, require_symmetric=True)

    def test_unsorted_rejected(self):
        m = CSRMatrix(indptr=np.array([0, 2, 2]), indices=np.array([1, 0]), n=2)
        with pytest.raises(ValueError, match="sorted"):
            validate_csr(m)

    def test_duplicates_rejected(self):
        m = CSRMatrix(indptr=np.array([0, 2]), indices=np.array([0, 0]), n=1)
        with pytest.raises(ValueError, match="duplicate"):
            validate_csr(m)

    def test_asymmetric_rejected_when_required(self):
        m = coo_to_csr(3, [0], [1])
        with pytest.raises(ValueError, match="symmetric"):
            validate_csr(m, require_symmetric=True)

    def test_asymmetric_ok_when_not_required(self):
        m = coo_to_csr(3, [0], [1])
        validate_csr(m, require_symmetric=False)


class TestAssertPermutation:
    def test_valid(self):
        assert_permutation(np.array([2, 0, 1]))

    def test_repeats_rejected(self):
        with pytest.raises(AssertionError):
            assert_permutation(np.array([0, 0, 1]))

    def test_out_of_range_rejected(self):
        with pytest.raises(AssertionError):
            assert_permutation(np.array([0, 1, 3]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(AssertionError):
            assert_permutation(np.array([0, 1]), n=3)
