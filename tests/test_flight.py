"""Tests for the cost-model flight recorder (``repro.telemetry.flight``).

Covers the bounded ring file, the module-level recording switchboard
(configure / env var / disable), recording through the real ``auto``
pipeline, the calibration math (scale fitting, mispick detection, tie
epsilon), and the ``repro telemetry calibrate`` CLI.
"""

import json

import pytest

from repro import telemetry
from repro.telemetry import flight


@pytest.fixture(autouse=True)
def clean_recorder(monkeypatch):
    """No recorder and no env leakage around every test."""
    monkeypatch.delenv(flight.FLIGHT_ENV_VAR, raising=False)
    flight.disable_recording()
    telemetry.reset()
    telemetry.disable()
    yield
    flight.disable_recording()
    telemetry.reset()
    telemetry.disable()


def _record(rec, **over):
    base = {
        "n": 1000, "nnz": 4000, "n_components": 1,
        "estimates": {"serial": 100.0, "vectorized": 120.0},
        "chosen": "serial", "actual_wall_ms": 1.0,
    }
    base.update(over)
    rec.record(base)


class TestRingFile:
    def test_appends_records(self, tmp_path):
        rec = flight.FlightRecorder(tmp_path / "f.jsonl", limit=100)
        for i in range(5):
            _record(rec, n=i)
        records = flight.read_records(tmp_path / "f.jsonl")
        assert [r["n"] for r in records] == [0, 1, 2, 3, 4]
        assert all(r["schema"] == flight.RECORD_SCHEMA for r in records)

    def test_ring_stays_bounded(self, tmp_path):
        path = tmp_path / "f.jsonl"
        rec = flight.FlightRecorder(path, limit=10)
        for i in range(95):
            _record(rec, n=i)
        lines = path.read_text().strip().splitlines()
        assert len(lines) <= 2 * 10
        # newest records survive compaction
        records = flight.read_records(path)
        assert records[-1]["n"] == 94

    def test_limit_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            flight.FlightRecorder(tmp_path / "f.jsonl", limit=0)

    def test_concurrent_writers_never_corrupt_the_ring(self, tmp_path):
        # 8 threads hammering one recorder: every surviving line must
        # strict-parse and the ring bound must hold throughout
        import threading

        path = tmp_path / "f.jsonl"
        limit = 50
        rec = flight.FlightRecorder(path, limit=limit)
        n_threads, per_thread = 8, 100

        def writer(tid):
            for i in range(per_thread):
                _record(rec, n=tid * per_thread + i)

        threads = [
            threading.Thread(target=writer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        lines = path.read_text().strip().splitlines()
        assert lines, "no records survived"
        assert len(lines) <= 2 * limit
        for line in lines:
            parsed = json.loads(line)  # raises on a torn/interleaved write
            assert parsed["schema"] == flight.RECORD_SCHEMA
        records = flight.read_records(path)
        assert len(records) == len(lines)

    def test_read_records_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "f.jsonl"
        rec = flight.FlightRecorder(path)
        _record(rec)
        with path.open("a") as fh:
            fh.write('{"schema": "other/v9"}\n')
            fh.write("{truncated garbage\n")
        records = flight.read_records(path)
        assert len(records) == 1


class TestSwitchboard:
    def test_disabled_by_default(self, tmp_path):
        assert flight.get_recorder() is None
        flight.record_auto(
            n=1, nnz=1, n_components=1, estimates={"serial": 1.0},
            chosen="serial", actual_wall_ms=0.1,
        )  # must be a silent no-op

    def test_configure_and_disable(self, tmp_path):
        rec = flight.configure(tmp_path / "f.jsonl")
        assert flight.get_recorder() is rec
        flight.disable_recording()
        assert flight.get_recorder() is None

    def test_env_var_enables_lazily(self, tmp_path, monkeypatch):
        monkeypatch.setenv(flight.FLIGHT_ENV_VAR, str(tmp_path / "env.jsonl"))
        flight._ENV_CHECKED = False  # simulate fresh process
        rec = flight.get_recorder()
        assert rec is not None
        assert rec.path == tmp_path / "env.jsonl"

    def test_record_auto_computes_margin(self, tmp_path):
        flight.configure(tmp_path / "f.jsonl")
        flight.record_auto(
            n=10, nnz=40, n_components=2,
            estimates={"serial": 100.0, "vectorized": 80.0, "parallel": 90.0},
            chosen="vectorized", actual_wall_ms=0.5,
        )
        (rec,) = flight.read_records(tmp_path / "f.jsonl")
        assert rec["chosen"] == "vectorized"
        assert rec["mispick_margin"] == pytest.approx(10.0)
        assert rec["n_components"] == 2

    def test_auto_reorder_records_through_pipeline(self, tmp_path, medium_grid):
        from repro.core.api import _reorder_rcm

        flight.configure(tmp_path / "auto.jsonl")
        res = _reorder_rcm(medium_grid, method="auto")
        (rec,) = flight.read_records(tmp_path / "auto.jsonl")
        assert rec["chosen"] == res.method
        assert rec["n"] == medium_grid.n
        assert rec["nnz"] == medium_grid.nnz
        assert rec["actual_wall_ms"] > 0
        assert res.method in rec["estimates"]
        assert len(rec["estimates"]) >= 2

    def test_explicit_method_records_nothing(self, tmp_path, medium_grid):
        from repro.core.api import _reorder_rcm

        path = tmp_path / "none.jsonl"
        flight.configure(path)
        _reorder_rcm(medium_grid, method="serial")
        assert not path.exists()


class TestCalibrate:
    def test_empty_report(self):
        report = flight.calibrate([])
        assert report["records"] == 0
        assert report["mispick_rate"] == 0.0
        assert report["backends"] == {}

    def _mk(self, chosen, estimates, actual):
        return {
            "chosen": chosen, "estimates": estimates,
            "actual_wall_ms": actual, "n": 1, "nnz": 4, "n_components": 1,
        }

    def test_perfect_model_has_zero_mispicks(self):
        records = [
            self._mk("serial", {"serial": 100.0, "vectorized": 200.0}, 1.0),
            self._mk("serial", {"serial": 100.0, "vectorized": 200.0}, 1.0),
        ]
        report = flight.calibrate(records)
        assert report["mispicks"] == 0
        stats = report["backends"]["serial"]
        assert stats["picks"] == 2
        assert stats["mean_actual_ms"] == pytest.approx(1.0)
        assert stats["scale_ms_per_cycle"] == pytest.approx(0.01)

    def test_mispick_detected_via_calibrated_scales(self):
        # serial's picks cost 10x what its estimate scale suggests elsewhere:
        # vectorized runs 1ms per 100 cycles, serial 10ms per 100 cycles, so
        # on the contested record the rejected candidate was truly cheaper
        records = [
            self._mk("vectorized", {"vectorized": 100.0}, 1.0),
            self._mk("serial", {"serial": 100.0}, 10.0),
            self._mk(
                "serial", {"serial": 100.0, "vectorized": 110.0}, 10.0
            ),
        ]
        report = flight.calibrate(records)
        assert report["mispicks"] == 1
        assert report["backends"]["serial"]["mispicks"] == 1
        assert report["mispick_rate"] == pytest.approx(1 / 3)

    def test_tie_epsilon_suppresses_close_calls(self):
        records = [
            self._mk("vectorized", {"vectorized": 100.0}, 1.0),
            self._mk("serial", {"serial": 100.0}, 1.0),
            self._mk(
                "serial", {"serial": 100.0, "vectorized": 98.0}, 1.0
            ),
        ]
        strict = flight.calibrate(records, tie_epsilon=0.0)
        lax = flight.calibrate(records, tie_epsilon=0.05)
        assert strict["mispicks"] == 1
        assert lax["mispicks"] == 0

    def test_format_report_renders(self):
        records = [
            self._mk("serial", {"serial": 100.0, "vectorized": 150.0}, 2.0),
        ]
        text = flight.format_report(flight.calibrate(records))
        assert "serial" in text
        assert "mispick" in text

    def test_per_scenario_breakdown(self):
        """The hub-dominated calibration case: a pool pick on a giant
        component shows up as a mispick *in its own scenario bucket*, not
        diluted into the aggregate by well-behaved mesh picks."""
        mesh = [
            dict(self._mk(
                "vectorized", {"vectorized": 100.0, "parallel": 400.0}, 1.0
            ), scenario="mesh")
            for _ in range(8)
        ]
        # the regression shape: auto chose the pool for one giant
        # component; the calibrated vectorized prediction undercuts it
        hub = [
            dict(self._mk(
                "parallel", {"parallel": 400.0, "vectorized": 100.0}, 40.0
            ), scenario="hub-dominated", max_component=999),
            dict(self._mk("parallel", {"parallel": 400.0}, 40.0),
                 scenario="hub-dominated"),
        ]
        report = flight.calibrate(mesh + hub)
        assert report["scenarios"]["mesh"]["mispicks"] == 0
        assert report["scenarios"]["hub-dominated"]["mispicks"] == 1
        assert report["scenarios"]["hub-dominated"]["mispick_rate"] == \
            pytest.approx(0.5)
        text = flight.format_report(report)
        assert "hub-dominated" in text
        assert "scenario" in text

    def test_records_without_scenario_skip_breakdown(self):
        records = [
            self._mk("serial", {"serial": 100.0}, 1.0),
        ]
        report = flight.calibrate(records)
        assert report["scenarios"] == {}
        assert "scenario" not in flight.format_report(report)


class TestCli:
    def _run(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_calibrate_prints_report(self, tmp_path, capsys):
        rec = flight.FlightRecorder(tmp_path / "f.jsonl")
        _record(rec)
        assert self._run("telemetry", "calibrate", str(tmp_path / "f.jsonl")) == 0
        out = capsys.readouterr().out
        assert "flight records : 1" in out
        assert "serial" in out

    def test_calibrate_json(self, tmp_path, capsys):
        rec = flight.FlightRecorder(tmp_path / "f.jsonl")
        _record(rec)
        assert self._run(
            "telemetry", "calibrate", str(tmp_path / "f.jsonl"), "--json"
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["records"] == 1
        assert "serial" in doc["backends"]

    def test_calibrate_missing_file_is_clean_no_data(self, tmp_path, capsys):
        # CI runs calibrate unconditionally after serve smoke tests, so
        # an absent or empty flight log must not fail the build
        assert self._run(
            "telemetry", "calibrate", str(tmp_path / "missing.jsonl")
        ) == 0
        assert "no flight data" in capsys.readouterr().out

    def test_calibrate_empty_file_is_clean_no_data(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert self._run("telemetry", "calibrate", str(path)) == 0
        assert "no flight data" in capsys.readouterr().out

    def test_calibrate_threshold_gate(self, tmp_path, capsys):
        rec = flight.FlightRecorder(tmp_path / "f.jsonl")
        # construct a guaranteed mispick (see TestCalibrate)
        for entry in (
            {"chosen": "vectorized", "estimates": {"vectorized": 100.0},
             "actual_wall_ms": 1.0},
            {"chosen": "serial", "estimates": {"serial": 100.0},
             "actual_wall_ms": 10.0},
            {"chosen": "serial",
             "estimates": {"serial": 100.0, "vectorized": 110.0},
             "actual_wall_ms": 10.0},
        ):
            rec.record({"n": 1, "nnz": 4, "n_components": 1, **entry})
        assert self._run(
            "telemetry", "calibrate", str(tmp_path / "f.jsonl"),
            "--max-mispick-rate", "0.1",
        ) == 1

    def test_inventory_prints_table(self, capsys):
        assert self._run("telemetry", "inventory") == 0
        out = capsys.readouterr().out
        assert "service_requests_total" in out
