"""Wall-clock benchmarks of the execution layer (real time, not simulated).

Times ``repro.reorder`` per method on the largest generator matrix and
regenerates the speedup/throughput artifacts (``BENCH_rcm_speedup.json``,
``BENCH_rcm_throughput.json``) that the benchmark regression gate
(``benchmarks/check_regressions.py``) compares against committed baselines.
"""

import pytest

from repro.bench import speedup as speedup_mod
from repro.bench import throughput as throughput_mod
from repro.facade import reorder
from repro.matrices import get_matrix


@pytest.fixture(scope="module")
def largest_name() -> str:
    return speedup_mod.largest_matrix_name()


@pytest.mark.parametrize("method", ["serial", "vectorized", "parallel"])
def test_rcm_wallclock(benchmark, method, largest_name):
    mat = get_matrix(largest_name)
    benchmark.pedantic(
        reorder, args=(mat,), kwargs={"method": method},
        rounds=2, iterations=1,
    )


def test_regenerate_speedup(benchmark, results_dir):
    rows = benchmark.pedantic(
        speedup_mod.main,
        args=([
            "--json", str(results_dir / "BENCH_rcm_speedup.json"),
            "--csv", str(results_dir / "speedup.csv"),
        ],),
        rounds=1, iterations=1,
    )
    by_method = {r["method"]: r for r in rows}
    # the headline acceptance number: the NumPy frontier kernel must beat
    # the pure-Python serial loop on the largest generator matrix
    assert by_method["vectorized"]["speedup_vs_serial"] > 1.0


def test_regenerate_throughput(benchmark, results_dir):
    rows = benchmark.pedantic(
        throughput_mod.main,
        args=([
            "--quick",
            "--json", str(results_dir / "BENCH_rcm_throughput.json"),
            "--csv", str(results_dir / "throughput.csv"),
        ],),
        rounds=1, iterations=1,
    )
    assert all(r["matrices_per_s"] > 0 for r in rows)
