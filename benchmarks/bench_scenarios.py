"""Scenario-family battery: per-family floors + transform level economics.

Writes the canonical ``BENCH_scenario_matrix.json`` artifact (consumed by
``check_regressions.py``'s ``check_scenario_floors`` gate) with one row
per scenario family:

* ``bandwidth_reduction`` — the worst (smallest) RCM recovery across the
  family's registered scenarios, measured from a seeded random relabeling
  (:func:`repro.matrices.scenarios.shuffled` — families like ``banded``
  ship in near-optimal natural order, so floors are recovery floors);
* ``floor`` — the family's committed floor from
  :data:`repro.matrices.scenarios.FAMILY_FLOORS`, embedded in the
  artifact so the gate script needs no repro import;
* ``levels_plain`` / ``levels_transformed`` — the giant component's BFS
  level count from the start each path uses (min-valence vs the
  power-law transform's hub start): the transform must never deepen the
  level structure and must strictly shallow it on the heavy-tailed
  families.

All numbers are structural permutation facts — noise-immune, so
``check_scenario_floors`` is always enforced.  The benchmark's own
``wall_ms`` rides through the autouse ``bench_record`` fixture under a
different artifact name (the test is deliberately not named
``test_scenario_matrix``, so the fixture cannot overwrite the canonical
artifact written here).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.api import _components_by_min_node
from repro.core.transform import plan_powerlaw
from repro.facade import reorder
from repro.matrices.scenarios import FAMILY_FLOORS, SCENARIOS, shuffled
from repro.sparse.bandwidth import bandwidth
from repro.sparse.graph import bfs_levels
from repro.telemetry.events import SCHEMA, host_info

SIZE = "small"

#: the families whose level count the transform must strictly reduce
HEAVY_TAILED = ("power-law", "hub-dominated")


def _giant_levels(mat, *, hub_start: bool) -> int:
    """BFS level count of the largest component, from the start node the
    plain (min-valence) or transformed (hub / max-valence) path picks."""
    comps = _components_by_min_node(mat)
    giant = max(comps, key=len)
    valence = np.diff(mat.indptr)
    pick = np.argmax if hub_start else np.argmin
    start = int(giant[pick(valence[giant])])
    return int(bfs_levels(mat, start)[giant].max()) + 1


def _family_rows() -> dict:
    rows: dict = {}
    for spec in SCENARIOS:
        mat = spec.build(SIZE)

        # recovery floor: scramble, reorder, compare to the scrambled bw
        scrambled = shuffled(mat)
        bw0 = bandwidth(scrambled)
        res = reorder(scrambled, method="serial")
        bw1 = bandwidth(scrambled.permute_symmetric(res.permutation))
        reduction = 1.0 - bw1 / bw0 if bw0 else 0.0

        # transform economics: giant-component level count, plain vs
        # hub-first (identical when the pass is a no-op on this shape)
        levels_plain = _giant_levels(mat, hub_start=False)
        plan = plan_powerlaw(mat)
        if plan is None:
            levels_transformed = levels_plain
        else:
            levels_transformed = _giant_levels(
                mat.permute_symmetric(plan.relabel), hub_start=True
            )

        # one auto pick per scenario feeds the session flight recorder a
        # scenario-tagged record, so the nightly calibrate step can report
        # the mispick rate per family
        auto = reorder(mat, method="auto")

        row = rows.get(spec.family)
        if row is None or reduction < row["bandwidth_reduction"]:
            rows[spec.family] = {
                "scenario": spec.name,
                "bandwidth_reduction": reduction,
                "floor": FAMILY_FLOORS[spec.family],
                "levels_plain": levels_plain,
                "levels_transformed": levels_transformed,
                "transform_applied": plan is not None,
                "auto_choice": auto.method,
                "n": mat.n,
                "nnz": mat.nnz,
            }
    return rows


def test_scenario_family_battery(results_dir):
    t0 = time.perf_counter_ns()
    families = _family_rows()
    wall_ms = (time.perf_counter_ns() - t0) / 1e6

    payload = {
        "schema": SCHEMA,
        "bench": "scenario_matrix",
        "matrix": None,
        "method": "serial",
        "size": SIZE,
        "wall_ms": wall_ms,
        "families": families,
        "host": host_info(),
        "unix_time": time.time(),
    }
    out = results_dir / "BENCH_scenario_matrix.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # acceptance invariants, also enforced by check_regressions.py
    for family, row in sorted(families.items()):
        assert row["bandwidth_reduction"] >= row["floor"], (
            f"{family} recovery {row['bandwidth_reduction']:.1%} below its "
            f"floor {row['floor']:.1%} ({row['scenario']})"
        )
        assert row["levels_transformed"] <= row["levels_plain"], (
            f"{family}: transform deepened the level structure "
            f"({row['levels_plain']} -> {row['levels_transformed']})"
        )
        if family in HEAVY_TAILED:
            assert row["levels_transformed"] < row["levels_plain"], (
                f"{family}: transform must strictly reduce the level "
                f"count ({row['levels_plain']} -> "
                f"{row['levels_transformed']} on {row['scenario']})"
            )
