"""Fig. 3 benchmark: GPU-BATCH queue-slot fates (early termination)."""

from repro.bench.fig3 import collect_queue_stats, HEADERS
from repro.bench.report import render_table, write_csv
from conftest import BENCH_MATRICES


def test_regenerate_fig3(benchmark, results_dir):
    rows = benchmark.pedantic(
        collect_queue_stats, args=(BENCH_MATRICES,), rounds=1, iterations=1
    )
    print()
    print(render_table(HEADERS, rows, title="Fig. 3 — queue-slot fates", float_fmt="{:.1f}"))
    write_csv(results_dir / "fig3.csv", HEADERS, rows)

    by_name = {r[0]: r for r in rows}
    # the paper's outliers: hub and Mycielski matrices discard most batches
    assert by_name["mycielskian18"][4] < 25.0   # dequeued% tiny
    assert by_name["gupta3"][4] < 50.0
    assert by_name["ecology1"][4] > 90.0        # regular grids consume ~all
