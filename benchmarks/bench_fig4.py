"""Fig. 4 benchmark: overall runtime decomposition (core+peripheral+transfer)."""

from repro.bench.fig4 import collect_overall, FIG4_MATRICES
from repro.bench.report import render_table, write_csv


def test_regenerate_fig4(benchmark, results_dir):
    def run():
        rows = []
        for name in FIG4_MATRICES:
            for s in collect_overall(name):
                rows.append([name, s.approach, s.core_ms, s.peripheral_ms,
                             s.transfer_ms, s.total_ms])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Matrix", "Approach", "core ms", "peripheral ms", "transfer ms", "total ms"]
    print()
    print(render_table(headers, rows, title="Fig. 4 — overall runtime", float_fmt="{:.3f}"))
    write_csv(results_dir / "fig4.csv", headers, rows)

    # shape: cuSolver is the distant last on every matrix (paper Fig. 4)
    for name in FIG4_MATRICES:
        per = {r[1]: r[5] for r in rows if r[0] == name}
        assert per["cuSolver"] == max(per.values())
        # our parallel core beats MATLAB overall
        assert per["CPU-BATCH"] < per["MATLAB"]
