"""Shared benchmark fixtures.

``pytest benchmarks/ --benchmark-only`` times the *real* execution of every
experiment driver (the simulator and kernels are genuine computations), and
each driver also prints/saves the regenerated table or figure data, so one
run reproduces the paper's evaluation artifacts.  CSVs land in
``benchmarks/results/``.

Every benchmark additionally emits a standardized ``BENCH_<name>.json``
into ``benchmarks/results/`` — the single machine-readable perf artifact
that ``repro telemetry ingest`` folds into the run-history store and that
``check_regressions.py`` gates on, so it is written unconditionally — even
when the benchmark body raises: matrix/method (when parametrized), wall
milliseconds, wall-clock phase breakdown and the full telemetry counter
snapshot, plus provenance (``schema_version``, ISO ``timestamp``,
``hostname``, host info, git SHA).  A session-scoped flight recorder
captures every ``method="auto"`` resolution to
``benchmarks/results/flight.jsonl`` for ``repro telemetry calibrate``.
"""

from __future__ import annotations

import datetime
import json
import platform
import re
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.telemetry import flight
from repro.telemetry.events import SCHEMA, git_sha, host_info

RESULTS_DIR = Path(__file__).parent / "results"

#: bumped whenever the BENCH_*.json payload layout changes incompatibly
BENCH_SCHEMA_VERSION = 1

#: matrices used by per-matrix kernel benchmarks — one per structural regime
BENCH_MATRICES = ["bcspwr10", "benzene", "gupta3", "ecology1", "mycielskian18", "nlpkkt160"]

#: method-ish parameter names recognized in parametrized benchmark ids
_METHOD_KEYS = ("method", "approach", "variant", "kernel")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def flight_recorder(results_dir) -> None:
    """Record every auto resolution of the bench session for calibration."""
    flight.configure(results_dir / "flight.jsonl")
    yield
    flight.disable_recording()


def _bench_name(nodeid: str) -> str:
    """``bench_fig3.py::test_x[gupta3]`` -> ``fig3_x_gupta3``."""
    name = nodeid.split("::", 1)[-1]
    name = re.sub(r"^test_", "", name)
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


@pytest.fixture(autouse=True)
def bench_record(request, results_dir):
    """Wrap every benchmark in telemetry and dump ``BENCH_<name>.json``."""
    tel = telemetry.get()
    tel.reset()
    was_enabled = tel.enabled
    tel.enable()
    t0 = time.perf_counter_ns()
    try:
        yield
    finally:
        # the artifact must exist even when the benchmark body fails —
        # a missing BENCH_*.json reads as "never ran" downstream
        wall_ms = (time.perf_counter_ns() - t0) / 1e6
        if not was_enabled:
            tel.disable()

        params = dict(
            getattr(getattr(request.node, "callspec", None), "params", {})
        )
        matrix = params.get("name") or params.get("matrix")
        method = next((params[k] for k in _METHOD_KEYS if k in params), None)
        snap = tel.snapshot()
        now = time.time()
        payload = {
            "schema": SCHEMA,
            "schema_version": BENCH_SCHEMA_VERSION,
            "bench": _bench_name(request.node.nodeid),
            "matrix": matrix,
            "method": method,
            "wall_ms": wall_ms,
            "phases_ms": {
                name: ns / 1e6
                for name, ns in sorted(snap["phases_ns"].items())
            },
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "host": host_info(),
            "hostname": platform.node() or "unknown",
            "git_sha": git_sha(),
            "unix_time": now,
            "timestamp": datetime.datetime.fromtimestamp(
                now, tz=datetime.timezone.utc
            ).isoformat(timespec="seconds"),
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        fname = f"BENCH_{payload['bench']}.json"
        (results_dir / fname).write_text(text)
