"""Shared benchmark fixtures.

``pytest benchmarks/ --benchmark-only`` times the *real* execution of every
experiment driver (the simulator and kernels are genuine computations), and
each driver also prints/saves the regenerated table or figure data, so one
run reproduces the paper's evaluation artifacts.  CSVs land in
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: matrices used by per-matrix kernel benchmarks — one per structural regime
BENCH_MATRICES = ["bcspwr10", "benzene", "gupta3", "ecology1", "mycielskian18", "nlpkkt160"]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
