"""GPU scratchpad-limit benchmark (Sec. V-B histogram chunking).

Times GPU-BATCH on hub matrices whose maximum valence exceeds the
scratchpad, and regenerates a small table of chunking statistics across
scratchpad sizes — the ablation DESIGN.md lists for the memory-limit
handling.
"""

import numpy as np
import pytest

from repro.matrices import generators as g
from repro.core.batch_gpu import run_batch_rcm_gpu, chunk_plan
from repro.core.serial import rcm_serial
from repro.machine.costmodel import GPUCostModel
from repro.bench.report import render_table, write_csv


@pytest.mark.parametrize("hub_frac", [0.5, 0.9])
def test_gpu_hub_matrix(benchmark, hub_frac):
    mat = g.hub_matrix(1800, n_hubs=1, hub_degree_frac=hub_frac, seed=1)
    ref = rcm_serial(mat, 0)
    res = benchmark(run_batch_rcm_gpu, mat, 0)
    assert np.array_equal(res.permutation, ref)


def test_regenerate_chunking_table(benchmark, results_dir):
    def run():
        rows = []
        mat = g.hub_matrix(2500, n_hubs=2, hub_degree_frac=0.9, seed=2)
        for temp in (256, 512, 1024, 2048):
            model = GPUCostModel(temp_limit=temp)
            res = run_batch_rcm_gpu(mat, 0, model=model)
            st = res.stats
            rows.append([temp, st.chunked_batches, st.histogram_refinements,
                         res.milliseconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["scratchpad", "chunked batches", "refinements", "ms"]
    print()
    print(render_table(headers, rows, title="GPU scratchpad-limit ablation",
                       float_fmt="{:.3f}"))
    write_csv(results_dir / "gpu_limits.csv", headers, rows)
    # smaller scratchpad -> at least as much chunking
    chunked = [r[1] for r in rows]
    assert chunked[0] >= chunked[-1]
