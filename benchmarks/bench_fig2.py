"""Fig. 2 benchmark: speed-ups vs HSL (regenerates the figure's series)."""

from repro.bench.fig2 import speedups, PLOT_APPROACHES
from repro.bench.table1 import collect, QUICK_SET
from repro.bench.report import render_table, write_csv


def test_regenerate_fig2(benchmark, results_dir):
    def run():
        return speedups(collect(QUICK_SET, thread_counts=(1, 2, 4, 8, 12, 24)))

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Name"] + PLOT_APPROACHES
    print()
    print(render_table(headers, table, title="Fig. 2 — speed-up vs HSL", float_fmt="{:.2f}"))
    write_csv(results_dir / "fig2.csv", headers, table)

    # shape assertions mirroring the paper
    for row in table:
        by = dict(zip(headers[1:], row[1:]))
        assert by["CPU-RCM"] > 1.0, "CPU-RCM must beat HSL (paper: 5.8x avg)"
