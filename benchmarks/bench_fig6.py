"""Fig. 6 benchmark: relative cycles per stage vs thread count."""

from repro.bench.fig6 import stage_profile
from repro.bench.report import render_table, write_csv
from repro.machine.stats import STAGE_ORDER
from conftest import BENCH_MATRICES

THREADS = (1, 2, 4, 8, 12, 24)


def test_regenerate_fig6(benchmark, results_dir):
    rows = benchmark.pedantic(
        stage_profile, args=(BENCH_MATRICES, THREADS), rounds=1, iterations=1
    )
    headers = ["threads"] + [st.value for st in STAGE_ORDER] + ["cycles/thread"]
    table = [[r["threads"]] + [f"{100*r[st.value]:.1f}%" for st in STAGE_ORDER]
             + [f"{r['cycles_per_thread']:.2e}"] for r in rows]
    print()
    print(render_table(headers, table, title="Fig. 6 — stage shares"))
    write_csv(results_dir / "fig6.csv", headers,
              [[r["threads"]] + [r[st.value] for st in STAGE_ORDER]
               + [r["cycles_per_thread"]] for r in rows])

    by_tc = {r["threads"]: r for r in rows}
    # paper shapes: Discover dominates compute at low thread counts ...
    assert by_tc[1]["Discover"] > 0.5
    # ... Stall grows monotonically toward ~half at 12+ threads ...
    assert by_tc[24]["Stall"] > by_tc[12]["Stall"] > by_tc[2]["Stall"]
    assert by_tc[12]["Stall"] > 0.3
    # ... Rediscover and Signal stay marginal throughout
    for tc in THREADS:
        assert by_tc[tc]["Rediscover"] < 0.05
        assert by_tc[tc]["Signal"] < 0.05
