"""Ordering-quality benchmark: RCM vs Sloan, GPS, minimum degree, spectral.

The paper's related work: "studies have shown that hybrid approaches using
RCM or Sloan achieve the best results", while "in practice RCM is still the
go-to method, due to its good reordering and simplicity".  This benchmark
quantifies that on the test-set analogues: bandwidth, envelope and RMS
wavefront per heuristic — expect RCM/GPS to dominate bandwidth, Sloan to be
competitive on profile, minimum degree to lose badly on both (it optimizes
fill), and spectral in between at much higher cost.
"""

import numpy as np
import pytest

from repro.matrices import get_matrix
from repro import reorder
from repro.orderings import sloan, gibbs_poole_stockmeyer, spectral_ordering
from repro.sparse.bandwidth import bandwidth_after, envelope_size, rms_wavefront
from repro.bench.report import render_table, write_csv

MATRICES = ["bcspwr10", "bodyy4", "ecology1", "delaunay_n23"]

HEURISTICS = {
    "RCM": lambda m: reorder(m, start="peripheral").permutation,
    "Sloan": sloan,
    "GPS": gibbs_poole_stockmeyer,
    "spectral": spectral_ordering,
}


@pytest.mark.parametrize("name", ["bcspwr10", "bodyy4"])
@pytest.mark.parametrize("heuristic", list(HEURISTICS))
def test_ordering_speed(benchmark, name, heuristic):
    mat = get_matrix(name)
    benchmark.pedantic(HEURISTICS[heuristic], args=(mat,), rounds=1, iterations=1)


def test_regenerate_quality_table(benchmark, results_dir):
    def run():
        rows = []
        for name in MATRICES:
            mat = get_matrix(name)
            for label, fn in HEURISTICS.items():
                perm = fn(mat)
                after = mat.permute_symmetric(perm)
                rows.append([
                    name, label,
                    bandwidth_after(mat, perm),
                    envelope_size(after),
                    round(rms_wavefront(after), 1),
                ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["Matrix", "Heuristic", "bandwidth", "envelope", "RMS wavefront"]
    print()
    print(render_table(headers, rows, title="Ordering quality comparison"))
    write_csv(results_dir / "orderings.csv", headers, rows)

    # shape: on every matrix, RCM's bandwidth beats (or matches) Sloan's
    # and spectral's — the reason it remains the default
    for name in MATRICES:
        per = {r[1]: r[2] for r in rows if r[0] == name}
        assert per["RCM"] <= 1.5 * min(per.values()) + 10
