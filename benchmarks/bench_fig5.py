"""Fig. 5 benchmark: CPU-BATCH thread-scaling heatmaps."""

import numpy as np

from repro.bench.fig5 import scaling_matrix, normalized
from repro.bench.report import render_heatmap, write_csv
from conftest import BENCH_MATRICES

THREADS = (1, 2, 4, 8, 12, 16, 24)


def test_regenerate_fig5(benchmark, results_dir):
    names, grid = benchmark.pedantic(
        scaling_matrix, args=(BENCH_MATRICES, THREADS), rounds=1, iterations=1
    )
    cols = [str(t) for t in THREADS]
    print()
    print(render_heatmap(names, cols, grid,
                         title="Fig. 5a — speed-up over CPU-RCM", cell_fmt="{:.1f}"))
    print()
    print(render_heatmap(names, cols, normalized(grid),
                         title="Fig. 5b — normalized", cell_fmt="{:.2f}"))
    write_csv(results_dir / "fig5.csv", ["Name"] + cols,
              [[n] + list(r) for n, r in zip(names, grid)])

    by = {n: grid[i] for i, n in enumerate(names)}
    # paper shapes: tiny matrices never profit; wide large ones scale
    assert by["bcspwr10"].max() < 1.0
    assert by["nlpkkt160"].max() > 3.0
    # scaling improves from 1 to 8 threads on the wide matrix
    assert by["nlpkkt160"][3] > by["nlpkkt160"][0]
    # mycielskian's early-stop superlinearity
    assert by["mycielskian18"].max() > 10.0
