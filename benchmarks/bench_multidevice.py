"""Multi-device extension benchmark (the paper's Sec. VII outlook).

Sweeps device counts and interconnect latencies for a fixed total worker
budget: the signal chain crosses devices, so higher link latency stretches
the critical path — quantifying how far "transmitting signals across
devices/nodes" can go before the chain dominates.
"""

import numpy as np
import pytest

from repro.matrices import get_matrix
from repro.core.batch import run_batch_rcm
from repro.core.batches import BatchConfig
from repro.core.serial import rcm_serial
from repro.machine.costmodel import CPUCostModel
from repro.machine.multidevice import DeviceTopology
from repro.bench.runner import pick_start
from repro.bench.report import render_table, write_csv

MODEL = CPUCostModel()
CFG = BatchConfig(batch_size=32)


@pytest.mark.parametrize("devices", [1, 2, 4])
def test_multidevice_run(benchmark, devices):
    mat = get_matrix("nlpkkt160")
    start, total = pick_start(mat)
    topo = DeviceTopology(
        n_devices=devices, workers_per_device=24 // devices,
        cross_signal_cycles=8_000.0,
    )
    res = benchmark(
        run_batch_rcm, mat, start, model=MODEL, n_workers=24,
        topology=topo, config=CFG, total=total,
    )
    assert np.array_equal(res.permutation, rcm_serial(mat, start))


def test_regenerate_multidevice_table(benchmark, results_dir):
    def run():
        mat = get_matrix("nlpkkt160")
        start, total = pick_start(mat)
        rows = []
        for devices in (1, 2, 4):
            for latency in (2_000.0, 8_000.0, 120_000.0):
                topo = DeviceTopology(
                    n_devices=devices,
                    workers_per_device=24 // devices,
                    cross_signal_cycles=latency,
                )
                res = run_batch_rcm(
                    mat, start, model=MODEL, n_workers=24,
                    topology=topo, config=CFG, total=total,
                )
                rows.append([devices, latency, res.milliseconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["devices", "link latency (cycles)", "ms"]
    print()
    print(render_table(headers, rows, title="Multi-device signal-chain sweep",
                       float_fmt="{:.3f}"))
    write_csv(results_dir / "multidevice.csv", headers, rows)

    by = {(r[0], r[1]): r[2] for r in rows}
    # single device ignores the link; more devices + slower links cost more
    assert by[(1, 2_000.0)] == pytest.approx(by[(1, 120_000.0)])
    assert by[(4, 120_000.0)] > by[(4, 2_000.0)]
    assert by[(2, 120_000.0)] > by[(1, 120_000.0)]
