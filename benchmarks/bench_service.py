"""Service-layer throughput: cold compute vs warm cache serving.

Writes the canonical ``BENCH_service_throughput.json`` artifact (consumed
by ``check_regressions.py``'s hit-speedup invariant) with the cold
computation time, the per-request warm cache-hit time and their ratio.
The acceptance bar: serving a warm hit must be at least **10x** faster
than the cold compute — the whole point of content-hash caching is that a
repeated pattern costs a digest plus an array copy, not a BFS.

The test is intentionally *not* named ``test_service_throughput``: the
autouse ``bench_record`` fixture derives its own ``BENCH_<name>.json``
from the test name, and must not overwrite the canonical artifact written
here.
"""

from __future__ import annotations

import json
import time

from repro.matrices import get_matrix
from repro.service import ReorderService, ServiceConfig
from repro.telemetry.events import SCHEMA, host_info

MATRIX = "bcspwr10"
WARM_ROUNDS = 30
MIN_HIT_SPEEDUP = 10.0


def test_service_cache_serving(benchmark, results_dir):
    mat = get_matrix(MATRIX)
    with ReorderService(ServiceConfig(n_workers=2)) as svc:
        t0 = time.perf_counter_ns()
        cold = svc.reorder(mat)
        cold_ms = (time.perf_counter_ns() - t0) / 1e6

        # manual warm timing for the artifact (pedantic reports separately)
        t0 = time.perf_counter_ns()
        for _ in range(WARM_ROUNDS):
            warm = svc.reorder(mat)
        warm_ms = (time.perf_counter_ns() - t0) / 1e6 / WARM_ROUNDS

        benchmark.pedantic(svc.reorder, args=(mat,), rounds=5, iterations=3)
        stats = svc.stats()

    assert warm.permutation.tobytes() == cold.permutation.tobytes()
    hit_speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")

    payload = {
        "schema": SCHEMA,
        "bench": "service_throughput",
        "matrix": MATRIX,
        "method": None,
        "n": mat.n,
        "nnz": mat.nnz,
        "wall_ms": cold_ms,
        "cold_ms": cold_ms,
        "warm_ms_per_request": warm_ms,
        "hit_speedup": hit_speedup,
        "warm_requests_per_s": 1000.0 / warm_ms if warm_ms > 0 else None,
        "service_stats": stats,
        "host": host_info(),
        "unix_time": time.time(),
    }
    out = results_dir / "BENCH_service_throughput.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # acceptance invariant, also enforced by check_regressions.py
    assert hit_speedup >= MIN_HIT_SPEEDUP, (
        f"warm cache hit only {hit_speedup:.1f}x faster than cold compute "
        f"(cold {cold_ms:.2f}ms, warm {warm_ms:.4f}ms)"
    )


def test_service_coalesced_fanout(benchmark):
    """Concurrent duplicate fan-out: N submissions, one computation."""
    mat = get_matrix(MATRIX)

    def fanout():
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            futs = [svc.submit(mat) for _ in range(8)]
            for f in futs:
                f.result(timeout=60)
            return svc
    svc = benchmark.pedantic(fanout, rounds=3, iterations=1)
    assert svc.counters["computed"] == 1
    assert svc.counters["coalesced"] == 7
