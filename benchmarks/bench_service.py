"""Service-layer throughput: cold compute, warm cache serving, batching.

Writes the canonical ``BENCH_service_throughput.json`` artifact (consumed
by ``check_regressions.py``'s ratio invariants) with:

* the cold computation time, the per-request warm cache-hit time and
  their ratio — serving a warm hit must be at least **10x** faster than
  the cold compute (content-hash caching's acceptance bar);
* the batched-admission rate vs the per-request dispatch rate over the
  same concurrent workload of distinct patterns — batching must win
  (``batch_speedup``), because grouped dispatch amortizes the validate
  phase across the whole batch and collapses N pool hops into one;
* the wall time of one shared-memory ``map_matrices`` dispatch
  (``shm_dispatch_ms``, ``None`` where shm is unavailable);
* the warm-path cost of the continuous sampling profiler at its default
  rate (``profiler_overhead_pct``: best-of-reps per-request time with the
  profiler on vs off — budget ≤3%, enforced by check_regressions.py);
* the sharded-service numbers: the 16-thread warm-path hammer rate at
  N=1 and N=4 shards (``sharded_requests_per_s`` — honest wall clock,
  which on a single-core runner *cannot* exceed the unsharded rate
  because the warm path is GIL-bound Python either way), the per-shard
  **capacity** sum (``shard_capacity_requests_per_s`` — each shard
  driven alone, so the metric scales with shard count independently of
  the runner's core count; this carries the ≥1.5× acceptance floor) and
  ``shard_balance`` (max/mean per-shard request load over the hammer
  workload, ≤2.0).  ``host.cpus`` rides in the artifact so the gate can
  condition the wall-clock floor on machines that actually have the
  cores.

The test is intentionally *not* named ``test_service_throughput``: the
autouse ``bench_record`` fixture derives its own ``BENCH_<name>.json``
from the test name, and must not overwrite the canonical artifact written
here.
"""

from __future__ import annotations

import json
import threading
import time

from repro.matrices import get_matrix
from repro.matrices.generators import delaunay_mesh
from repro.service import (
    ReorderService,
    ServiceConfig,
    ShardedService,
    cache_key,
)
from repro.telemetry import profiler
from repro.telemetry.events import SCHEMA, host_info

MATRIX = "bcspwr10"
WARM_ROUNDS = 30
MIN_HIT_SPEEDUP = 10.0
#: best-of reps for the profiler on/off warm comparison — both sides take
#: their floor, so an unlucky sample tick in one rep cannot fail the gate
PROFILER_REPS = 7
#: acceptance budget mirrored by check_regressions.py
MAX_PROFILER_OVERHEAD_PCT = 3.0

#: batched-admission workload: distinct small patterns (no cache hits, no
#: coalescing — every request really computes)
BATCH_N = 96
BATCH_WINDOW_MS = 10.0
BATCH_ROUNDS = 3
#: bench-level sanity floor; check_regressions.py enforces its own
MIN_BATCH_SPEEDUP = 1.2

#: sharded warm-path workload: distinct keys spanning every shard slot
SHARD_N = 4
SHARD_KEYS = 64
SHARD_HAMMER_THREADS = 16
SHARD_HAMMER_ROUNDS = 3
#: acceptance floors mirrored by check_regressions.py
MIN_SHARDED_CAPACITY_SPEEDUP = 1.5
MAX_SHARD_BALANCE = 2.0


def _batch_workload():
    return [delaunay_mesh(20, seed=i) for i in range(BATCH_N)]


def _concurrent_requests_per_s(mats, window_ms, max_batch):
    """Best-of-rounds rate for the same concurrent submit-all workload,
    per-request dispatch (``window_ms=0``) or batched admission."""
    best = 0.0
    for _ in range(BATCH_ROUNDS):
        cfg = ServiceConfig(
            n_workers=2, max_pending=2 * len(mats),
            batch_window_ms=window_ms, max_batch=max_batch,
        )
        with ReorderService(cfg) as svc:
            t0 = time.perf_counter()
            futs = [svc.submit(m) for m in mats]
            for f in futs:
                f.result(timeout=60)
            best = max(best, len(mats) / (time.perf_counter() - t0))
    return best


def _shard_workload():
    """Distinct warm-path keys; 64 keys spread over a 128-vnode ring land
    on every slot of a 4-shard service."""
    return [delaunay_mesh(10, seed=1000 + i) for i in range(SHARD_KEYS)]


def _hammer_requests_per_s(svc, mats, n_threads):
    """Wall-clock warm rate: ``n_threads`` concurrent clients each sweep
    the whole (pre-warmed) key population ``SHARD_HAMMER_ROUNDS`` times."""
    barrier = threading.Barrier(n_threads + 1)
    errors = []

    def worker():
        barrier.wait()
        try:
            for _ in range(SHARD_HAMMER_ROUNDS):
                for m in mats:
                    svc.reorder(m, timeout=60)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors[0]
    total = n_threads * SHARD_HAMMER_ROUNDS * len(mats)
    return total / elapsed


def _shard_capacity_requests_per_s(svc, by_shard):
    """Core-count-independent capacity: each shard's warm rate measured
    with that shard driven **alone** (single caller, only its own keys),
    summed.  This is the throughput N shards deliver once each has a core
    of its own — the metric the ≥1.5× sharding floor is enforced on,
    because a 16-thread wall-clock hammer on a 1-CPU runner measures the
    GIL, not the architecture."""
    capacity = 0.0
    for mats in by_shard.values():
        reps = max(1, 256 // len(mats))
        t0 = time.perf_counter()
        for _ in range(reps):
            for m in mats:
                svc.reorder(m, timeout=60)
        capacity += (reps * len(mats)) / (time.perf_counter() - t0)
    return capacity


def _sharded_measurements(mats):
    """Warm-path hammer rate, capacity sum and load balance at N=1/N=4."""
    out = {}
    for n_shards in (1, SHARD_N):
        cfg = ServiceConfig(n_workers=2, max_pending=4 * len(mats))
        with ShardedService(cfg, shards=n_shards) as svc:
            for m in mats:  # cold pass populates every shard's cache
                svc.reorder(m, timeout=120)
            by_shard = {}
            for m in mats:
                by_shard.setdefault(svc.route(cache_key(m)), []).append(m)
            assert len(by_shard) == n_shards, (
                f"{SHARD_KEYS} keys only reached {len(by_shard)} of "
                f"{n_shards} shards — enlarge SHARD_KEYS"
            )
            wall_rps = _hammer_requests_per_s(
                svc, mats, SHARD_HAMMER_THREADS
            )
            capacity = _shard_capacity_requests_per_s(svc, by_shard)
            loads = [
                s["service.requests"] for s in svc.stats()["shards"]
            ]
            balance = max(loads) / (sum(loads) / len(loads))
        out[n_shards] = {
            "wall_rps": wall_rps,
            "capacity": capacity,
            "loads": loads,
            "balance": balance,
        }
    return out


def _shm_dispatch_ms(mats):
    """Wall ms of one forced-pool ``map_matrices`` dispatch over the
    shared-memory transport (``None`` when shm/fork is unavailable)."""
    from repro.parallel import ParallelConfig, map_matrices
    from repro.parallel import shm
    from repro.parallel.executor import fork_available

    if not (shm.shm_available() and fork_available()):
        return None
    cfg = ParallelConfig(n_workers=2, force_processes=True)
    map_matrices(mats, method="serial", config=cfg)  # fork + warm once
    t0 = time.perf_counter()
    out = map_matrices(mats, method="serial", config=cfg)
    ms = (time.perf_counter() - t0) * 1e3
    assert len(out) == len(mats)
    return ms


def test_service_cache_serving(benchmark, results_dir):
    mat = get_matrix(MATRIX)
    with ReorderService(ServiceConfig(n_workers=2)) as svc:
        t0 = time.perf_counter_ns()
        cold = svc.reorder(mat)
        cold_ms = (time.perf_counter_ns() - t0) / 1e6

        # manual warm timing for the artifact (pedantic reports separately);
        # best-of-reps shields the floor check from scheduler noise
        warm_ms = float("inf")
        for _ in range(PROFILER_REPS):
            t0 = time.perf_counter_ns()
            for _ in range(WARM_ROUNDS):
                warm = svc.reorder(mat)
            warm_ms = min(
                warm_ms, (time.perf_counter_ns() - t0) / 1e6 / WARM_ROUNDS
            )

        # the same warm loop with the sampling profiler running at its
        # default rate; best-of-reps on both sides makes the comparison a
        # floor-vs-floor one, which is what the <=3% overhead budget gates
        prof = profiler.start_profiler()
        try:
            warm_prof_ms = float("inf")
            for _ in range(PROFILER_REPS):
                t0 = time.perf_counter_ns()
                for _ in range(WARM_ROUNDS):
                    svc.reorder(mat)
                warm_prof_ms = min(
                    warm_prof_ms,
                    (time.perf_counter_ns() - t0) / 1e6 / WARM_ROUNDS,
                )
        finally:
            prof = profiler.stop_profiler()
        profiler_overhead_pct = (
            max(0.0, (warm_prof_ms - warm_ms) / warm_ms * 100.0)
            if warm_ms > 0 else 0.0
        )

        benchmark.pedantic(svc.reorder, args=(mat,), rounds=5, iterations=3)
        stats = svc.stats()

    assert warm.permutation.tobytes() == cold.permutation.tobytes()
    hit_speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")

    # batched admission vs per-request dispatch, same concurrent workload
    batch_mats = _batch_workload()
    single_rps = _concurrent_requests_per_s(batch_mats, 0.0, 16)
    batched_rps = _concurrent_requests_per_s(
        batch_mats, BATCH_WINDOW_MS, BATCH_N
    )
    batch_speedup = batched_rps / single_rps if single_rps > 0 else None
    shm_ms = _shm_dispatch_ms(batch_mats)

    # sharded warm path: N=1 vs N=4 over a key set spanning every shard
    sharded = _sharded_measurements(_shard_workload())
    one, many = sharded[1], sharded[SHARD_N]
    capacity_speedup = (
        many["capacity"] / one["capacity"] if one["capacity"] > 0 else None
    )
    wallclock_speedup = (
        many["wall_rps"] / one["wall_rps"] if one["wall_rps"] > 0 else None
    )

    payload = {
        "schema": SCHEMA,
        "bench": "service_throughput",
        "matrix": MATRIX,
        "method": None,
        "n": mat.n,
        "nnz": mat.nnz,
        "wall_ms": cold_ms,
        "cold_ms": cold_ms,
        "warm_ms_per_request": warm_ms,
        "hit_speedup": hit_speedup,
        "warm_requests_per_s": 1000.0 / warm_ms if warm_ms > 0 else None,
        "warm_ms_per_request_profiled": warm_prof_ms,
        "profiler_overhead_pct": profiler_overhead_pct,
        "profiler_hz": prof.hz if prof is not None else None,
        "profiler_samples": prof.sample_count if prof is not None else 0,
        "single_requests_per_s": single_rps,
        "batched_requests_per_s": batched_rps,
        "batch_speedup": batch_speedup,
        "batch_size": BATCH_N,
        "batch_window_ms": BATCH_WINDOW_MS,
        "shm_dispatch_ms": shm_ms,
        "n_shards": SHARD_N,
        "shard_keys": SHARD_KEYS,
        "shard_hammer_threads": SHARD_HAMMER_THREADS,
        "sharded_requests_per_s": many["wall_rps"],
        "single_shard_requests_per_s": one["wall_rps"],
        "sharded_wallclock_speedup": wallclock_speedup,
        "shard_capacity_requests_per_s": many["capacity"],
        "single_shard_capacity_requests_per_s": one["capacity"],
        "sharded_capacity_speedup": capacity_speedup,
        "shard_balance": many["balance"],
        "shard_loads": many["loads"],
        "service_stats": stats,
        "host": host_info(),
        "unix_time": time.time(),
    }
    out = results_dir / "BENCH_service_throughput.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # acceptance invariants, also enforced by check_regressions.py
    assert hit_speedup >= MIN_HIT_SPEEDUP, (
        f"warm cache hit only {hit_speedup:.1f}x faster than cold compute "
        f"(cold {cold_ms:.2f}ms, warm {warm_ms:.4f}ms)"
    )
    assert batch_speedup is not None and batch_speedup >= MIN_BATCH_SPEEDUP, (
        f"batched admission only {batch_speedup:.2f}x the per-request "
        f"dispatch rate (batched {batched_rps:.0f}/s, single "
        f"{single_rps:.0f}/s over {BATCH_N} distinct patterns)"
    )
    assert (
        capacity_speedup is not None
        and capacity_speedup >= MIN_SHARDED_CAPACITY_SPEEDUP
    ), (
        f"sharded (N={SHARD_N}) warm capacity only "
        f"{capacity_speedup:.2f}x single-shard "
        f"(must stay >= {MIN_SHARDED_CAPACITY_SPEEDUP}x; "
        f"{many['capacity']:.0f}/s vs {one['capacity']:.0f}/s)"
    )
    assert many["balance"] <= MAX_SHARD_BALANCE, (
        f"shard load balance {many['balance']:.2f} exceeds "
        f"{MAX_SHARD_BALANCE} (per-shard loads {many['loads']})"
    )
    assert profiler_overhead_pct <= MAX_PROFILER_OVERHEAD_PCT, (
        f"sampling profiler degrades the warm path by "
        f"{profiler_overhead_pct:.2f}% "
        f"(profiler-on {warm_prof_ms:.4f}ms vs off {warm_ms:.4f}ms per "
        f"request; budget {MAX_PROFILER_OVERHEAD_PCT}%)"
    )


def test_service_coalesced_fanout(benchmark):
    """Concurrent duplicate fan-out: N submissions, one computation."""
    mat = get_matrix(MATRIX)

    def fanout():
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            futs = [svc.submit(mat) for _ in range(8)]
            for f in futs:
                f.result(timeout=60)
            return svc
    svc = benchmark.pedantic(fanout, rounds=3, iterations=1)
    assert svc.counters["computed"] == 1
    assert svc.counters["coalesced"] == 7
