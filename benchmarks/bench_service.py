"""Service-layer throughput: cold compute, warm cache serving, batching.

Writes the canonical ``BENCH_service_throughput.json`` artifact (consumed
by ``check_regressions.py``'s ratio invariants) with:

* the cold computation time, the per-request warm cache-hit time and
  their ratio — serving a warm hit must be at least **10x** faster than
  the cold compute (content-hash caching's acceptance bar);
* the batched-admission rate vs the per-request dispatch rate over the
  same concurrent workload of distinct patterns — batching must win
  (``batch_speedup``), because grouped dispatch amortizes the validate
  phase across the whole batch and collapses N pool hops into one;
* the wall time of one shared-memory ``map_matrices`` dispatch
  (``shm_dispatch_ms``, ``None`` where shm is unavailable).

The test is intentionally *not* named ``test_service_throughput``: the
autouse ``bench_record`` fixture derives its own ``BENCH_<name>.json``
from the test name, and must not overwrite the canonical artifact written
here.
"""

from __future__ import annotations

import json
import time

from repro.matrices import get_matrix
from repro.matrices.generators import delaunay_mesh
from repro.service import ReorderService, ServiceConfig
from repro.telemetry.events import SCHEMA, host_info

MATRIX = "bcspwr10"
WARM_ROUNDS = 30
MIN_HIT_SPEEDUP = 10.0

#: batched-admission workload: distinct small patterns (no cache hits, no
#: coalescing — every request really computes)
BATCH_N = 96
BATCH_WINDOW_MS = 10.0
BATCH_ROUNDS = 3
#: bench-level sanity floor; check_regressions.py enforces its own
MIN_BATCH_SPEEDUP = 1.2


def _batch_workload():
    return [delaunay_mesh(20, seed=i) for i in range(BATCH_N)]


def _concurrent_requests_per_s(mats, window_ms, max_batch):
    """Best-of-rounds rate for the same concurrent submit-all workload,
    per-request dispatch (``window_ms=0``) or batched admission."""
    best = 0.0
    for _ in range(BATCH_ROUNDS):
        cfg = ServiceConfig(
            n_workers=2, max_pending=2 * len(mats),
            batch_window_ms=window_ms, max_batch=max_batch,
        )
        with ReorderService(cfg) as svc:
            t0 = time.perf_counter()
            futs = [svc.submit(m) for m in mats]
            for f in futs:
                f.result(timeout=60)
            best = max(best, len(mats) / (time.perf_counter() - t0))
    return best


def _shm_dispatch_ms(mats):
    """Wall ms of one forced-pool ``map_matrices`` dispatch over the
    shared-memory transport (``None`` when shm/fork is unavailable)."""
    from repro.parallel import ParallelConfig, map_matrices
    from repro.parallel import shm
    from repro.parallel.executor import fork_available

    if not (shm.shm_available() and fork_available()):
        return None
    cfg = ParallelConfig(n_workers=2, force_processes=True)
    map_matrices(mats, method="serial", config=cfg)  # fork + warm once
    t0 = time.perf_counter()
    out = map_matrices(mats, method="serial", config=cfg)
    ms = (time.perf_counter() - t0) * 1e3
    assert len(out) == len(mats)
    return ms


def test_service_cache_serving(benchmark, results_dir):
    mat = get_matrix(MATRIX)
    with ReorderService(ServiceConfig(n_workers=2)) as svc:
        t0 = time.perf_counter_ns()
        cold = svc.reorder(mat)
        cold_ms = (time.perf_counter_ns() - t0) / 1e6

        # manual warm timing for the artifact (pedantic reports separately);
        # best-of-reps shields the floor check from scheduler noise
        warm_ms = float("inf")
        for _ in range(5):
            t0 = time.perf_counter_ns()
            for _ in range(WARM_ROUNDS):
                warm = svc.reorder(mat)
            warm_ms = min(
                warm_ms, (time.perf_counter_ns() - t0) / 1e6 / WARM_ROUNDS
            )

        benchmark.pedantic(svc.reorder, args=(mat,), rounds=5, iterations=3)
        stats = svc.stats()

    assert warm.permutation.tobytes() == cold.permutation.tobytes()
    hit_speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")

    # batched admission vs per-request dispatch, same concurrent workload
    batch_mats = _batch_workload()
    single_rps = _concurrent_requests_per_s(batch_mats, 0.0, 16)
    batched_rps = _concurrent_requests_per_s(
        batch_mats, BATCH_WINDOW_MS, BATCH_N
    )
    batch_speedup = batched_rps / single_rps if single_rps > 0 else None
    shm_ms = _shm_dispatch_ms(batch_mats)

    payload = {
        "schema": SCHEMA,
        "bench": "service_throughput",
        "matrix": MATRIX,
        "method": None,
        "n": mat.n,
        "nnz": mat.nnz,
        "wall_ms": cold_ms,
        "cold_ms": cold_ms,
        "warm_ms_per_request": warm_ms,
        "hit_speedup": hit_speedup,
        "warm_requests_per_s": 1000.0 / warm_ms if warm_ms > 0 else None,
        "single_requests_per_s": single_rps,
        "batched_requests_per_s": batched_rps,
        "batch_speedup": batch_speedup,
        "batch_size": BATCH_N,
        "batch_window_ms": BATCH_WINDOW_MS,
        "shm_dispatch_ms": shm_ms,
        "service_stats": stats,
        "host": host_info(),
        "unix_time": time.time(),
    }
    out = results_dir / "BENCH_service_throughput.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # acceptance invariants, also enforced by check_regressions.py
    assert hit_speedup >= MIN_HIT_SPEEDUP, (
        f"warm cache hit only {hit_speedup:.1f}x faster than cold compute "
        f"(cold {cold_ms:.2f}ms, warm {warm_ms:.4f}ms)"
    )
    assert batch_speedup is not None and batch_speedup >= MIN_BATCH_SPEEDUP, (
        f"batched admission only {batch_speedup:.2f}x the per-request "
        f"dispatch rate (batched {batched_rps:.0f}/s, single "
        f"{single_rps:.0f}/s over {BATCH_N} distinct patterns)"
    )


def test_service_coalesced_fanout(benchmark):
    """Concurrent duplicate fan-out: N submissions, one computation."""
    mat = get_matrix(MATRIX)

    def fanout():
        with ReorderService(ServiceConfig(n_workers=2)) as svc:
            futs = [svc.submit(mat) for _ in range(8)]
            for f in futs:
                f.result(timeout=60)
            return svc
    svc = benchmark.pedantic(fanout, rounds=3, iterations=1)
    assert svc.counters["computed"] == 1
    assert svc.counters["coalesced"] == 7
