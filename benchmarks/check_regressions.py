#!/usr/bin/env python
"""Benchmark regression gate: statistical verdicts over the run history.

Usage (after ``pytest benchmarks/ --benchmark-only`` refreshed
``benchmarks/results/``)::

    python benchmarks/check_regressions.py              # gate (exit 1 on regression)
    python benchmarks/check_regressions.py --warn-only  # report, always exit 0
    python benchmarks/check_regressions.py --update     # rewrite baselines.json

When the history store (``benchmarks/results/history.jsonl``, maintained by
``repro telemetry ingest``) holds at least ``--min-samples`` prior runs for
a benchmark, its fresh ``wall_ms`` is judged by the noise-aware engine in
:mod:`repro.telemetry.history`: a robust z-score against the median/MAD of
the last ``--window`` runs, failing only when the excursion is both
statistically extreme *and* materially slower (ratio guard).  Benchmarks
without enough history fall back to the static comparison against the
committed entry in ``benchmarks/baselines.json``: a benchmark regresses
when it is more than ``--tolerance`` (default 0.75 = 75%) slower than its
baseline.  Wall time on shared CI runners is noisy, so most benches run
``--warn-only`` in CI — but benches matching an ``--enforce`` glob (default
``kernel_*``: single-kernel microbenches, the least noise-sensitive
artifacts) fail the build even under ``--warn-only``.  Pass ``--enforce ''``
to disable enforcement entirely.

Several checks are noise-immune (same-machine ratios, or floors with wide
slack) and therefore always enforced:

* ``speedups_vs_serial["vectorized"]`` in the speedup artifact must stay
  above ``--min-speedup`` (default 1.0) — the vectorized kernel beating the
  serial loop is an acceptance invariant, not a tuning number;
* ``hit_speedup`` in the service artifact must stay above
  ``--min-hit-speedup`` (default 10.0) — serving a warm cache hit an order
  of magnitude faster than a cold compute is the service layer's acceptance
  bar (``benchmarks/bench_service.py``);
* ``batch_speedup`` in the service artifact must stay above
  ``--min-batch-speedup`` (default 1.3) — batched admission beating
  per-request dispatch over the same concurrent workload is the batch
  API's acceptance bar;
* ``warm_requests_per_s`` must not fall below ``1 - --max-warm-slowdown``
  (default 0.5) of its committed baseline — a generous floor that catches
  a wrecked warm path, not runner noise;
* ``profiler_overhead_pct`` in the service artifact must stay below
  ``--max-profiler-overhead-pct`` (default 3.0) — the continuous sampling
  profiler's warm-path cost budget, measured as back-to-back best-of-reps
  floors with the profiler on vs off;
* the sharded-service invariants: ``sharded_capacity_speedup`` (the sum
  of per-shard warm rates, each shard driven alone — core-count
  independent) must stay above ``--min-sharded-speedup`` (default 1.5)
  and ``shard_balance`` (max/mean per-shard load under the concurrent
  hammer) must stay below ``--max-shard-balance`` (default 2.0).  The
  honest wall-clock ratio ``sharded_wallclock_speedup`` is additionally
  floored at parity — but only on hosts whose recorded ``host.cpus``
  covers the shard count, because a 16-thread hammer on a 1-CPU runner
  measures the GIL, not the sharded architecture;
* the scenario-matrix artifact (``benchmarks/bench_scenarios.py``) must
  clear its per-family bandwidth-reduction floors, and the power-law
  transformation must reduce the BFS level count on the heavy-tailed
  families — structural permutation facts, no wall clock involved.

When a flight-recorder file is present (``<results-dir>/flight.jsonl`` or
``--flight``), the ``method="auto"`` cost model is additionally gated: a
calibrated mispick rate above ``--max-mispick-rate`` (default 0.25) —
overall or on any scenario family with enough picks — is reported as a
problem (warning-level under ``--warn-only`` — close calls flip under
scheduler noise).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
DEFAULT_RESULTS = HERE / "results"
DEFAULT_BASELINES = HERE / "baselines.json"


def load_results(results_dir: Path) -> dict:
    """``{bench_name: payload}`` for every BENCH_*.json in the directory."""
    out = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path.name}: {exc}")
            continue
        name = payload.get("bench") or path.stem[len("BENCH_"):]
        out[name] = payload
    return out


def load_history(history_path: Path) -> list:
    """Prior run records from the history store (empty without repro)."""
    if not history_path.exists():
        return []
    try:
        from repro.telemetry import history
    except ImportError:
        print(f"warning: {history_path} present but repro is not importable; "
              "falling back to static baselines")
        return []
    return history.read_history(history_path)


def compare(results: dict, baselines: dict, tolerance: float,
            runs: list = (), window: int = 20, min_samples: int = 5) -> list:
    """One row per benchmark:
    ``(name, reference_ms, current_ms, ratio, status, source)``.

    ``source`` is ``history`` when the statistical engine judged the bench
    (reference = rolling-window median) and ``static`` when the committed
    baseline did (reference = baseline ``wall_ms``).  A statistical ``FAIL``
    is reported as ``REGRESSION`` so downstream handling is uniform;
    ``WARN`` / ``IMPROVED`` / ``PASS`` pass the gate.
    """
    engine = None
    if runs:
        try:
            from repro.telemetry import history as engine
        except ImportError:
            engine = None
    rows = []
    for name in sorted(set(results) | set(baselines)):
        base = baselines.get(name, {}).get("wall_ms")
        cur = results.get(name, {}).get("wall_ms")
        if cur is None:
            rows.append((name, base, None, None, "MISSING", "static"))
            continue
        if engine is not None:
            series = engine.metric_series(runs, name)[-window:]
            if len(series) >= min_samples:
                v = engine.robust_verdict(
                    float(cur), series, min_samples=min_samples
                )
                status = "REGRESSION" if v["status"] == "FAIL" else v["status"]
                rows.append(
                    (name, v["median"], cur, v["ratio"], status, "history")
                )
                continue
        if base is None:
            rows.append((name, None, cur, None, "NEW", "static"))
        else:
            ratio = cur / base if base else float("inf")
            status = "REGRESSION" if ratio > 1.0 + tolerance else "OK"
            rows.append((name, base, cur, ratio, status, "static"))
    return rows


def is_enforced(name: str, patterns: list) -> bool:
    """Whether a bench name falls under the always-failing enforce globs."""
    return any(p and fnmatch.fnmatch(name, p) for p in patterns)


def check_service_invariant(results: dict, min_hit_speedup: float) -> list:
    """The cache-hit-beats-cold-compute ratio check (hardware-noise immune)."""
    problems = []
    payload = results.get("service_throughput")
    if payload is None:
        return problems
    hit = payload.get("hit_speedup")
    if hit is None:
        problems.append("service_throughput artifact lacks 'hit_speedup'")
    elif hit < min_hit_speedup:
        problems.append(
            f"service cache-hit speedup is {hit:.1f}x vs cold compute "
            f"(must stay >= {min_hit_speedup:.1f}x) on {payload.get('matrix')}"
        )
    return problems


def check_batch_invariant(results: dict, min_batch_speedup: float) -> list:
    """Batched admission must beat per-request dispatch (noise immune:
    both rates are measured back-to-back on the same machine)."""
    problems = []
    payload = results.get("service_throughput")
    if payload is None:
        return problems
    ratio = payload.get("batch_speedup")
    if ratio is None:
        problems.append("service_throughput artifact lacks 'batch_speedup'")
    elif ratio < min_batch_speedup:
        problems.append(
            f"batched admission is only {ratio:.2f}x the per-request "
            f"dispatch rate (must stay >= {min_batch_speedup:.2f}x; "
            f"batched {payload.get('batched_requests_per_s', 0):.0f}/s, "
            f"single {payload.get('single_requests_per_s', 0):.0f}/s)"
        )
    return problems


def check_profiler_overhead(results: dict, max_overhead_pct: float) -> list:
    """The sampling profiler's warm-path cost budget (noise immune: both
    per-request times are best-of-reps floors measured back-to-back on
    the same machine — see ``bench_service.py``)."""
    problems = []
    payload = results.get("service_throughput")
    if payload is None:
        return problems
    pct = payload.get("profiler_overhead_pct")
    if pct is None:
        problems.append(
            "service_throughput artifact lacks 'profiler_overhead_pct'"
        )
    elif pct > max_overhead_pct:
        problems.append(
            f"sampling profiler degrades the warm path by {pct:.2f}% "
            f"(must stay <= {max_overhead_pct:.2f}%; profiler-on "
            f"{payload.get('warm_ms_per_request_profiled', 0):.4f}ms vs "
            f"off {payload.get('warm_ms_per_request', 0):.4f}ms per "
            f"request)"
        )
    return problems


def check_sharded_invariant(results: dict, min_sharded_speedup: float,
                            max_shard_balance: float) -> list:
    """Sharded warm throughput and load-balance floors.

    The enforced speedup metric is the *capacity* ratio: the sum of each
    shard's warm rate with that shard driven alone, over the same sum for
    a single shard.  Both sides are measured back-to-back on the same
    machine and neither needs more than one busy core at a time, so the
    ratio reflects the sharded architecture (per-request overhead, routing
    cost, cache partitioning) rather than the runner's core budget.  The
    wall-clock hammer ratio is enforced at parity only when the recorded
    ``host.cpus`` covers the shard count — on smaller hosts all shards
    time-slice one GIL and the ratio is reported, not gated.
    """
    problems = []
    payload = results.get("service_throughput")
    if payload is None:
        return problems
    ratio = payload.get("sharded_capacity_speedup")
    n_shards = payload.get("n_shards") or 4
    if ratio is None:
        problems.append(
            "service_throughput artifact lacks 'sharded_capacity_speedup'"
        )
    elif ratio < min_sharded_speedup:
        problems.append(
            f"sharded (N={n_shards}) warm capacity is only {ratio:.2f}x "
            f"single-shard (must stay >= {min_sharded_speedup:.2f}x; "
            f"{payload.get('shard_capacity_requests_per_s', 0):.0f}/s vs "
            f"{payload.get('single_shard_capacity_requests_per_s', 0):.0f}/s)"
        )
    balance = payload.get("shard_balance")
    if balance is None:
        problems.append("service_throughput artifact lacks 'shard_balance'")
    elif balance > max_shard_balance:
        problems.append(
            f"shard load balance {balance:.2f} (max/mean) exceeds "
            f"{max_shard_balance:.2f} "
            f"(per-shard loads {payload.get('shard_loads')})"
        )
    wall = payload.get("sharded_wallclock_speedup")
    cpus = (payload.get("host") or {}).get("cpus") or 1
    if wall is not None:
        if cpus >= n_shards and wall < 1.0:
            problems.append(
                f"sharded (N={n_shards}) wall-clock hammer rate is only "
                f"{wall:.2f}x single-shard on a {cpus}-cpu host — sharding "
                "must not lose to the unsharded service when the cores "
                "exist"
            )
        elif cpus < n_shards:
            print(
                f"note: sharded wall-clock ratio {wall:.2f}x reported but "
                f"not gated (host has {cpus} cpu(s) for {n_shards} shards; "
                "capacity ratio carries the floor)"
            )
    return problems


def check_warm_rate_floor(results: dict, baselines: dict,
                          max_warm_slowdown: float) -> list:
    """The warm cache-hit rate must not collapse vs the committed baseline.

    Absolute rates vary across machines, so the floor is generous: fail
    only when the current rate drops below ``(1 - max_warm_slowdown)`` of
    the baseline ``warm_requests_per_s`` — catching a wrecked warm path
    (e.g. admission batching leaking into cache hits), not runner noise.
    Silently passes when the baseline predates the field.
    """
    payload = results.get("service_throughput")
    base = baselines.get("service_throughput", {}).get("warm_requests_per_s")
    if payload is None or base is None:
        return []
    cur = payload.get("warm_requests_per_s")
    if cur is None:
        return ["service_throughput artifact lacks 'warm_requests_per_s'"]
    floor = base * (1.0 - max_warm_slowdown)
    if cur < floor:
        return [
            f"warm cache-hit rate {cur:.0f}/s fell below {floor:.0f}/s "
            f"({1.0 - max_warm_slowdown:.0%} of the {base:.0f}/s baseline)"
        ]
    return []


def check_speedup_invariant(results: dict, min_speedup: float) -> list:
    """The vectorized-beats-serial ratio check (hardware-noise immune)."""
    problems = []
    payload = results.get("rcm_speedup")
    if payload is None:
        return problems
    speedups = payload.get("speedups_vs_serial", {})
    vec = speedups.get("vectorized")
    if vec is None:
        problems.append("rcm_speedup artifact lacks a 'vectorized' entry")
    elif vec < min_speedup:
        problems.append(
            f"vectorized speedup vs serial is {vec:.2f}x "
            f"(must stay >= {min_speedup:.2f}x) on {payload.get('matrix')}"
        )
    return problems


def check_flight_mispick(flight_path: Path, max_rate: float) -> list:
    """The auto cost-model mispick gate over a flight-recorder file.

    Uses :func:`repro.telemetry.flight.calibrate` when the package is
    importable (benchmarks run with ``PYTHONPATH=src``); silently passes
    when the flight file is absent — recording is opt-in.
    """
    if not flight_path.exists():
        return []
    try:
        from repro.telemetry import flight
    except ImportError:
        print(f"warning: {flight_path} present but repro is not importable; "
              "skipping mispick check")
        return []
    records = flight.read_records(flight_path)
    if not records:
        return []
    report = flight.calibrate(records)
    print(f"\nflight recorder: {report['records']} auto resolutions, "
          f"mispick rate {report['mispick_rate']:.1%} "
          f"(threshold {max_rate:.1%})")
    problems = []
    if report["mispick_rate"] > max_rate:
        worst = {
            b: s["mispick_rate"] for b, s in report["backends"].items()
            if s["mispicks"]
        }
        problems.append(
            f"auto cost-model mispick rate {report['mispick_rate']:.1%} "
            f"exceeds {max_rate:.1%} over {report['records']} resolutions "
            f"(per-backend: {worst})"
        )
    # the per-scenario breakdown catches a cost model that is well
    # calibrated on meshes but systematically wrong on one hostile family
    # — an error the aggregate rate dilutes away
    scenarios = report.get("scenarios", {})
    if scenarios:
        shown = ", ".join(
            f"{fam}: {s['mispicks']}/{s['picks']}"
            for fam, s in sorted(scenarios.items())
        )
        print(f"per-scenario mispicks: {shown}")
    for fam, s in sorted(scenarios.items()):
        if s["picks"] >= 4 and s["mispick_rate"] > max_rate:
            problems.append(
                f"auto mispick rate on {fam!r} scenarios is "
                f"{s['mispick_rate']:.1%} ({s['mispicks']}/{s['picks']}) — "
                f"exceeds {max_rate:.1%}"
            )
    return problems


def check_scenario_floors(results: dict) -> list:
    """Per-family structural floors from the scenario-matrix artifact.

    ``benchmarks/bench_scenarios.py`` embeds each family's
    bandwidth-reduction floor (from
    ``repro.matrices.scenarios.FAMILY_FLOORS``) in the artifact next to
    the measured reduction, so this gate needs no repro import.  Two
    checks per family, both noise-immune (permutation structure, no wall
    clock):

    * the RCM bandwidth reduction (recovery from a seeded shuffle) must
      clear the family floor;
    * the power-law transformation must not deepen the BFS level
      structure anywhere, and must strictly shallow it on the
      heavy-tailed families (power-law / hub-dominated) — the transform's
      entire reason to exist.
    """
    payload = results.get("scenario_matrix")
    if payload is None:
        return []
    problems = []
    for family, row in sorted(payload.get("families", {}).items()):
        red = row.get("bandwidth_reduction")
        floor = row.get("floor")
        if red is None or floor is None:
            problems.append(
                f"scenario_matrix family {family!r} lacks "
                "bandwidth_reduction/floor fields"
            )
            continue
        if red < floor:
            problems.append(
                f"{family} bandwidth reduction {red:.1%} fell below its "
                f"floor {floor:.1%} (scenario {row.get('scenario')})"
            )
        plain = row.get("levels_plain")
        transformed = row.get("levels_transformed")
        if plain is None or transformed is None:
            continue
        if transformed > plain:
            problems.append(
                f"{family}: power-law transform deepened the level "
                f"structure ({plain} -> {transformed} levels on "
                f"{row.get('scenario')})"
            )
        elif family in ("power-law", "hub-dominated") and transformed >= plain:
            problems.append(
                f"{family}: power-law transform did not reduce the level "
                f"count ({plain} -> {transformed} levels on "
                f"{row.get('scenario')}) — its acceptance criterion"
            )
    return problems


def render(rows: list) -> str:
    lines = [f"{'benchmark':40s} {'reference ms':>12s} {'current ms':>12s} "
             f"{'ratio':>7s} {'source':>8s}  status"]
    for name, base, cur, ratio, status, source in rows:
        lines.append(
            f"{name:40s} "
            f"{'-' if base is None else format(base, '12.2f'):>12s} "
            f"{'-' if cur is None else format(cur, '12.2f'):>12s} "
            f"{'-' if ratio is None else format(ratio, '7.2f'):>7s} "
            f"{source:>8s}  {status}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINES)
    parser.add_argument("--tolerance", type=float, default=0.75,
                        help="allowed slowdown fraction before failing "
                             "(static-baseline fallback path)")
    parser.add_argument("--history", type=Path, default=None,
                        metavar="HISTORY.jsonl",
                        help="run-history store for statistical verdicts "
                             "(default: <results-dir>/history.jsonl)")
    parser.add_argument("--window", type=int, default=20,
                        help="rolling window of prior runs per verdict")
    parser.add_argument("--min-samples", type=int, default=5,
                        help="prior history samples required before the "
                             "statistical engine replaces the static "
                             "baseline for a bench")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required vectorized-vs-serial speedup ratio")
    parser.add_argument("--min-hit-speedup", type=float, default=10.0,
                        help="required service cache-hit vs cold-compute ratio")
    parser.add_argument("--min-batch-speedup", type=float, default=1.3,
                        help="required batched-admission vs per-request "
                             "dispatch rate ratio")
    parser.add_argument("--min-sharded-speedup", type=float, default=1.5,
                        help="required sharded-vs-single-shard warm "
                             "capacity ratio (per-shard rates summed, "
                             "each shard driven alone)")
    parser.add_argument("--max-shard-balance", type=float, default=2.0,
                        help="allowed max/mean per-shard load ratio under "
                             "the concurrent hammer workload")
    parser.add_argument("--max-profiler-overhead-pct", type=float,
                        default=3.0,
                        help="always-enforced budget for the sampling "
                             "profiler's warm-path degradation "
                             "(profiler_overhead_pct in the service "
                             "artifact; default 3.0)")
    parser.add_argument("--max-warm-slowdown", type=float, default=0.5,
                        help="allowed fractional drop of warm_requests_per_s "
                             "below its committed baseline before failing")
    parser.add_argument("--flight", type=Path, default=None,
                        metavar="FLIGHT.jsonl",
                        help="flight-recorder file to gate on (default: "
                             "<results-dir>/flight.jsonl when present)")
    parser.add_argument("--max-mispick-rate", type=float, default=0.25,
                        help="allowed auto cost-model mispick fraction "
                             "before the flight gate fails")
    parser.add_argument("--warn-only", action="store_true",
                        help="report wall-clock regressions without failing "
                             "(enforced globs and ratio invariants still fail)")
    parser.add_argument("--enforce", action="append", metavar="GLOB",
                        default=None,
                        help="bench-name glob whose regressions fail even "
                             "under --warn-only (repeatable; default "
                             "'kernel_*'; pass '' to disable)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines file from current results")
    args = parser.parse_args(argv)

    results = load_results(args.results_dir)
    if not results:
        print(f"no BENCH_*.json artifacts found in {args.results_dir}")
        return 0 if args.warn_only else 1

    if args.update:
        baselines = {
            name: {
                "wall_ms": payload.get("wall_ms"),
                "matrix": payload.get("matrix"),
                "method": payload.get("method"),
                **(
                    {"warm_requests_per_s": payload["warm_requests_per_s"]}
                    if payload.get("warm_requests_per_s") is not None
                    else {}
                ),
            }
            for name, payload in results.items()
            if payload.get("wall_ms") is not None
        }
        args.baselines.write_text(
            json.dumps(baselines, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {len(baselines)} baselines to {args.baselines}")
        return 0

    baselines = {}
    if args.baselines.exists():
        baselines = json.loads(args.baselines.read_text())
    else:
        print(f"note: no baselines file at {args.baselines}; "
              "all benchmarks reported as NEW")

    history_path = args.history or (args.results_dir / "history.jsonl")
    runs = load_history(history_path)
    if runs:
        print(f"history: {len(runs)} prior runs in {history_path}\n")
    rows = compare(results, baselines, args.tolerance,
                   runs=runs, window=args.window,
                   min_samples=args.min_samples)
    print(render(rows))

    enforce = args.enforce if args.enforce is not None else ["kernel_*"]
    warnings, enforced = [], []
    for name, _, _, ratio, status, source in rows:
        if status != "REGRESSION":
            continue
        ref = ("rolling-window median" if source == "history"
               else "baseline")
        msg = f"{name}: {ratio:.2f}x slower than {ref}"
        (enforced if is_enforced(name, enforce) else warnings).append(msg)
    # ratio invariants are noise-immune: always enforced
    enforced += check_speedup_invariant(results, args.min_speedup)
    enforced += check_service_invariant(results, args.min_hit_speedup)
    enforced += check_batch_invariant(results, args.min_batch_speedup)
    enforced += check_sharded_invariant(results, args.min_sharded_speedup,
                                        args.max_shard_balance)
    enforced += check_warm_rate_floor(results, baselines,
                                      args.max_warm_slowdown)
    enforced += check_profiler_overhead(results,
                                        args.max_profiler_overhead_pct)
    enforced += check_scenario_floors(results)
    flight_path = args.flight or (args.results_dir / "flight.jsonl")
    mispick_problems = check_flight_mispick(flight_path,
                                            args.max_mispick_rate)
    # scheduling noise can flip close calls, so the flight gate warns
    # under --warn-only rather than failing outright
    warnings += mispick_problems

    for msg in warnings:
        print(f"\nPROBLEM: {msg}")
    for msg in enforced:
        print(f"\nENFORCED PROBLEM: {msg}")

    if enforced:
        return 1
    if warnings:
        if args.warn_only:
            print("(--warn-only: not failing the build)")
            return 0
        return 1
    print("\nall benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
