"""Linear-algebra RCM benchmark (the Sec. VI-B textual comparison).

Regenerates the paper's comparison against Azad et al. [14]: the semiring-
SpMV formulation pays per-level collectives, so it needs far more parallel
resources than batch RCM for comparable time — at 54 processes it sits a
few-fold behind CPU-BATCH at 24 workers, and piling on processes runs into
the latency floor.
"""

import numpy as np
import pytest

from repro.matrices import get_matrix
from repro.bench.runner import pick_start
from repro.core.algebraic import rcm_algebraic, algebraic_cycles, DistributedModel
from repro.core.batch import run_batch_rcm
from repro.core.serial import rcm_serial
from repro.machine.costmodel import CPUCostModel
from repro.bench.report import render_table, write_csv

PROCESS_COUNTS = (1, 24, 54, 256, 1024, 4096)


def test_algebraic_kernel(benchmark):
    mat = get_matrix("nlpkkt160")
    start, _ = pick_start(mat)
    res = benchmark(rcm_algebraic, mat, start)
    assert np.array_equal(res.permutation, rcm_serial(mat, start))


def test_regenerate_algebraic_table(benchmark, results_dir):
    def run():
        mat = get_matrix("nlpkkt240")
        start, total = pick_start(mat)
        res = rcm_algebraic(mat, start)
        batch = run_batch_rcm(
            mat, start, model=CPUCostModel(), n_workers=24, total=total
        )
        clock = DistributedModel().clock_ghz * 1e6
        rows = [["CPU-BATCH", 24, batch.milliseconds, 1.0]]
        for p in PROCESS_COUNTS:
            ms = algebraic_cycles(res, p) / clock
            rows.append(["algebraic [14]", p, ms, ms / batch.milliseconds])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["approach", "processes", "ms", "vs CPU-BATCH"]
    print()
    print(render_table(headers, rows,
                       title="Sec. VI-B — algebraic RCM vs batch (nlpkkt240 analogue)",
                       float_fmt="{:.3f}"))
    write_csv(results_dir / "algebraic.csv", headers, rows)

    by_p = {r[1]: r[2] for r in rows if r[0] != "CPU-BATCH"}
    batch_ms = rows[0][2]
    # paper shape: a few-fold slower at 54 cores than batch at 24 threads
    assert 1.5 < by_p[54] / batch_ms < 10.0
    # collectives floor: 4096 processes do not beat 24
    assert by_p[4096] >= 0.5 * by_p[24]
