"""Table I benchmark: per-approach core-RCM timings on the test set.

Each benchmark runs one approach on one representative matrix (real work on
the simulated machine); ``test_regenerate_table1`` sweeps the quick set and
writes the regenerated table to ``benchmarks/results/table1.csv``.  Use
``python -m repro.bench.table1`` for the full 26-matrix table.
"""

import pytest

from repro.bench.runner import bench_matrix, pick_start
from repro.bench.table1 import collect, rows, HEADERS, QUICK_SET
from repro.bench.report import render_table, write_csv
from repro.matrices import get_matrix
from repro.core.serial import rcm_serial
from repro.core.batch import run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu
from repro.core.batches import BatchConfig
from repro.machine.costmodel import CPUCostModel

from conftest import BENCH_MATRICES

MODEL = CPUCostModel()


@pytest.mark.parametrize("name", BENCH_MATRICES)
def test_serial_rcm(benchmark, name):
    mat = get_matrix(name)
    start, _ = pick_start(mat)
    benchmark(rcm_serial, mat, start)


@pytest.mark.parametrize("name", BENCH_MATRICES)
def test_cpu_batch(benchmark, name):
    mat = get_matrix(name)
    start, total = pick_start(mat)
    benchmark(
        run_batch_rcm, mat, start, model=MODEL, n_workers=8, total=total
    )


@pytest.mark.parametrize("name", BENCH_MATRICES)
def test_cpu_batch_basic(benchmark, name):
    mat = get_matrix(name)
    start, total = pick_start(mat)
    cfg = BatchConfig(early_signaling=False, overhang=False, multibatch=1)
    benchmark(
        run_batch_rcm, mat, start, model=MODEL, n_workers=8, config=cfg, total=total
    )


@pytest.mark.parametrize("name", BENCH_MATRICES)
def test_gpu_batch(benchmark, name):
    mat = get_matrix(name)
    start, total = pick_start(mat)
    benchmark(run_batch_rcm_gpu, mat, start, total=total)


def test_regenerate_table1(benchmark, results_dir):
    """Regenerate the Table I quick set and save it."""

    def run():
        benches = collect(QUICK_SET, thread_counts=(1, 2, 4, 8, 12, 24))
        return rows(benches)

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(HEADERS, table, title="Table I (quick set)", float_fmt="{:.3f}"))
    write_csv(results_dir / "table1.csv", HEADERS, table)
