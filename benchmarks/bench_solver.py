"""Solver-substrate benchmark: the paper's fill-in motivation, quantified.

Envelope Cholesky cost is an exact function of the profile, so this bench
turns the paper's opening claim into a measured table: factor storage and
flops on scrambled vs RCM-reordered systems, plus CG iteration invariance
with improved gather locality.
"""

import numpy as np
import pytest

from repro.matrices import generators as g
from repro import reorder
from repro.solver.envelope import SkylineMatrix, envelope_cholesky, cholesky_flops, solve_cholesky
from repro.solver.cg import conjugate_gradient
from repro.apps.cachemodel import CacheModel
from repro.apps.spmv import spmv_cache_stats
from repro.sparse.csr import coo_to_csr
from repro.bench.report import render_table, write_csv


def spd_laplacian(pattern, shift=1.0):
    n = pattern.n
    deg = pattern.degrees().astype(np.float64)
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(pattern.indptr))
    rows = np.concatenate([row_of, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([pattern.indices, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([-np.ones(pattern.nnz), deg + shift])
    return coo_to_csr(n, rows, cols, vals)


@pytest.fixture(scope="module")
def mesh_system():
    pattern = g.delaunay_mesh(900, seed=4)
    rng = np.random.default_rng(0)
    scrambled = pattern.permute_symmetric(rng.permutation(pattern.n))
    res = reorder(scrambled, start="peripheral")
    reordered = scrambled.permute_symmetric(res.permutation)
    return scrambled, reordered


def test_factorize_scrambled(benchmark, mesh_system):
    scrambled, _ = mesh_system
    sky = SkylineMatrix.from_csr(spd_laplacian(scrambled))
    benchmark.pedantic(envelope_cholesky, args=(sky,), rounds=1, iterations=1)


def test_factorize_reordered(benchmark, mesh_system):
    _, reordered = mesh_system
    sky = SkylineMatrix.from_csr(spd_laplacian(reordered))
    benchmark.pedantic(envelope_cholesky, args=(sky,), rounds=1, iterations=1)


def test_regenerate_solver_table(benchmark, results_dir):
    def run():
        rows = []
        for n_pts, seed in ((400, 1), (900, 2), (1600, 3)):
            pattern = g.delaunay_mesh(n_pts, seed=seed)
            rng = np.random.default_rng(seed)
            scrambled = pattern.permute_symmetric(rng.permutation(pattern.n))
            res = reorder(scrambled, start="peripheral")
            reordered = scrambled.permute_symmetric(res.permutation)
            sky_b = SkylineMatrix.from_csr(spd_laplacian(scrambled))
            sky_a = SkylineMatrix.from_csr(spd_laplacian(reordered))
            cache = CacheModel(sets=16, ways=2)
            rows.append([
                f"mesh-{n_pts}",
                sky_b.storage, sky_a.storage,
                f"{cholesky_flops(sky_b):.2e}", f"{cholesky_flops(sky_a):.2e}",
                spmv_cache_stats(scrambled, cache).misses,
                spmv_cache_stats(reordered, cache).misses,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["system", "envelope before", "after", "chol flops before",
               "after", "SpMV misses before", "after"]
    print()
    print(render_table(headers, rows, title="Solver cost: scrambled vs RCM"))
    write_csv(results_dir / "solver.csv", headers, rows)
    for r in rows:
        assert r[2] < r[1] / 2, "RCM must at least halve the envelope"
        assert r[6] < r[5], "RCM must reduce SpMV cache misses"


def test_cg_iteration_invariance(benchmark, mesh_system):
    scrambled, reordered = mesh_system
    b = np.random.default_rng(1).random(scrambled.n)

    def run():
        a = conjugate_gradient(spd_laplacian(scrambled), b, tol=1e-8)
        c = conjugate_gradient(spd_laplacian(reordered), b, tol=1e-8)
        return a, c

    a, c = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a.converged and c.converged
    assert abs(a.iterations - c.iterations) <= 3
