"""Real-thread backend benchmark: the GIL tax, measured.

The `threads` method exists for correctness witnessing, not speed — on
CPython its fine-grained locking and the GIL make it slower than serial
(the calibration note: "GIL hinders fine-grained speculation").  This bench
records the real wall-time ratio so the claim is a measured number, and
verifies the permutation across thread counts along the way.
"""

import numpy as np
import pytest

from repro.matrices import get_matrix
from repro.core.serial import rcm_serial
from repro.core.threads import rcm_threads
from repro.bench.runner import pick_start


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_threads_wall_time(benchmark, threads):
    mat = get_matrix("benzene")
    start, total = pick_start(mat)
    ref = rcm_serial(mat, start)
    got = benchmark.pedantic(
        rcm_threads, args=(mat, start),
        kwargs=dict(n_threads=threads, total=total),
        rounds=3, iterations=1,
    )
    assert np.array_equal(got, ref)


def test_serial_reference_wall_time(benchmark):
    mat = get_matrix("benzene")
    start, _ = pick_start(mat)
    benchmark(rcm_serial, mat, start)
