"""Ablation benchmark: the design-choice sweep from DESIGN.md.

Includes the paper's BASIC-vs-full signaling comparison (Sec. VI-B: "the
improved signaling mechanism ... results in an average speed-up of 1.14x
and up to 1.53x for large matrices").
"""

from repro.bench.ablation import ablate, VARIANTS, DEFAULT_MATRICES
from repro.bench.report import render_table, write_csv


def test_regenerate_ablation(benchmark, results_dir):
    rows = benchmark.pedantic(
        ablate, args=(DEFAULT_MATRICES,), kwargs=dict(n_workers=8),
        rounds=1, iterations=1,
    )
    headers = ["variant"] + DEFAULT_MATRICES
    print()
    print(render_table(headers, rows, title="Ablation (8 workers)", float_fmt="{:.3f}"))
    write_csv(results_dir / "ablation.csv", headers, rows)

    by = {r[0]: dict(zip(DEFAULT_MATRICES, r[1:])) for r in rows}
    # full signaling is competitive-to-better vs basic on the wide KKT
    # matrix (paper Sec. VI-B reports 1.14x avg, up to 1.53x; at 8 workers
    # the two are close, so allow a small tolerance)
    assert by["full (default)"]["nlpkkt160"] <= 1.1 * by["basic (Alg.4)"]["nlpkkt160"]
    # disabling speculation serializes discovery: clearly slower than full
    assert by["no speculation"]["nlpkkt160"] > 1.5 * by["full (default)"]["nlpkkt160"]
