"""Micro-benchmarks of the library's real computational kernels.

These time actual Python/NumPy execution (not simulated cycles): the serial
RCM kernel, BFS, speculative discovery+sort, batch planning and bandwidth
metrics — the pieces a downstream user pays for.
"""

import numpy as np
import pytest

from repro.matrices import get_matrix, generators as g
from repro.core.serial import rcm_serial, cuthill_mckee
from repro.core.leveled import rcm_leveled
from repro.core.vectorized import rcm_vectorized
from repro.core.peripheral import find_pseudo_peripheral
from repro.core.batches import BatchConfig, clamped_valences, estimate_batch_count, plan_ranges
from repro.sparse.graph import bfs_levels, front_statistics
from repro.sparse.bandwidth import bandwidth, envelope_size, rms_wavefront
from repro.baselines.scipy_ref import scipy_rcm


@pytest.fixture(scope="module")
def mesh():
    return g.delaunay_mesh(8000, seed=3)


def test_kernel_serial_rcm(benchmark, mesh):
    benchmark(rcm_serial, mesh, 0)


def test_kernel_leveled_rcm(benchmark, mesh):
    benchmark(rcm_leveled, mesh, 0)


def test_kernel_vectorized_rcm(benchmark, mesh):
    benchmark(rcm_vectorized, mesh, 0)


def test_kernel_scipy_rcm(benchmark, mesh):
    """External reference point: SciPy's Cython RCM."""
    benchmark(scipy_rcm, mesh)


def test_kernel_bfs(benchmark, mesh):
    benchmark(bfs_levels, mesh, 0)


def test_kernel_front_statistics(benchmark, mesh):
    benchmark(front_statistics, mesh, 0)


def test_kernel_peripheral(benchmark, mesh):
    benchmark(find_pseudo_peripheral, mesh, 0)


def test_kernel_bandwidth(benchmark, mesh):
    benchmark(bandwidth, mesh)


def test_kernel_envelope(benchmark, mesh):
    benchmark(envelope_size, mesh)


def test_kernel_wavefront(benchmark, mesh):
    benchmark(rms_wavefront, mesh)


def test_kernel_planner(benchmark):
    rng = np.random.default_rng(0)
    vals = rng.integers(1, 60, size=20_000).astype(np.int64)
    cfg = BatchConfig(batch_size=64, temp_limit=1024)

    def run():
        cv = clamped_valences(vals, cfg.temp_limit)
        k = estimate_batch_count(vals.size, int(cv.sum()), cfg)
        return plan_ranges(cv, k, cfg)

    benchmark(run)


def test_kernel_permute(benchmark, mesh):
    rng = np.random.default_rng(1)
    perm = rng.permutation(mesh.n)
    benchmark(mesh.permute_symmetric, perm)
