# Convenience targets for the reproduction workflow.

.PHONY: install test bench examples paper report clean

install:
	pip install -e .[test]

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -q

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null && echo OK; done

# regenerate every table and figure into benchmarks/results/REPORT.md
paper:
	python -m repro.bench.paper

report:
	python -m repro.bench.paper --quick

clean:
	rm -rf benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
