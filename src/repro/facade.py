"""``repro.reorder()`` — the single public entry point for every ordering.

One facade unifies what used to be two APIs (``core.api.reverse_cuthill_mckee``
for RCM, ``orderings.api.order`` for everything else): every algorithm —
{algorithms} —
goes through the same validated, telemetry-instrumented pipeline and returns
a full :class:`~repro.core.api.ReorderResult` (permutation, bandwidth
before/after, wall-clock phase breakdown).  The RCM execution methods are
{methods}.

All parameters are keyword-only and validated centrally
(:mod:`repro.validation`): unknown ``algorithm``/``method``/``start`` values
raise one uniform ``ValueError`` listing the valid choices.  The choice
lists above are substituted from :data:`ALGORITHMS` and the execution-backend
registry (:mod:`repro.backends`) at import time — each method name is
spelled exactly once, at its ``register()`` call, and
``tests/test_doc_drift.py`` holds this file to it.

For RCM, ``method="auto"`` (the default) asks every auto-candidate backend
to price the pattern through its ``cost_estimate(n, nnz, n_components)``
hook and runs the cheapest — the pure-Python reference on small patterns,
the level-synchronous NumPy kernel once its per-level dispatch overhead
amortizes, the per-component process pool when a huge pattern splits into
enough components to feed it (see
:func:`repro.backends.resolve_auto_method`).  Every RCM method returns the
identical permutation.

Passing ``cache=`` (a :class:`repro.service.PermutationCache`, a
:class:`repro.service.ShardedCache`, or a disk-tier directory path) makes
the call content-addressed: a pattern + options seen before is served from
the cache without recomputation.  With ``shards=N`` a path spec
materializes as an N-way :class:`~repro.service.ShardedCache` (per-shard
``shard-<i>`` disk directories behind a consistent-hash ring — the same
layout :class:`repro.service.ShardedService` serves from).
:class:`repro.service.ReorderService` builds coalescing and admission
control on top of the same path.

Batches are first-class: :func:`reorder_many` reorders a whole list of
matrices as **one dispatch** — matrices grouped by resolved backend, shipped
through the zero-copy shared-memory transport to the persistent process
pool (:func:`repro.parallel.map_matrices`), ``method="auto"`` priced with
the batch-aware cost term (``setup_cycles`` amortized over the batch; see
:meth:`repro.backends.Backend.estimate`).  Results are byte-identical to
calling :func:`reorder` per matrix.  Set ``REPRO_NO_SHM=1`` to opt out of
shared memory (the legacy pickle transport runs instead).

Errors: everything either entry point raises on purpose derives from
:class:`repro.errors.ReproError` — :class:`repro.errors.ValidationError`
(a ``ValueError``) for bad arguments, :class:`repro.errors.BackendUnavailableError`
for unknown methods; the service layer adds
:class:`repro.errors.ServiceOverloadedError` /
:class:`repro.errors.ServiceTimeoutError`.  See :mod:`repro.errors` for
the full hierarchy.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth, bandwidth_after
from repro.sparse.validate import validate_csr, is_structurally_symmetric
from repro import backends
from repro.core.api import METHODS, PHASES, ReorderResult, _reorder_rcm
from repro.core.batches import BatchConfig
from repro.errors import ValidationError
from repro.validation import check_choice, check_min, check_start, choices_text
from repro import telemetry
from repro.telemetry import context as tctx

__all__ = ["reorder", "reorder_many", "ALGORITHMS", "METHODS"]

#: every ordering heuristic the facade dispatches to
ALGORITHMS = ("rcm", "sloan", "gps", "king", "minimum-degree", "spectral")

#: methods valid for algorithms other than ``"rcm"`` (they have exactly one
#: execution strategy, so only the default resolution is accepted)
_DIRECT_METHODS = ("auto", "direct")

# single source of truth: the module docstring enumerates the choice lists
# from ALGORITHMS and the backend registry, never by hand (guarded by
# tests/test_doc_drift)
if __doc__ is not None:  # pragma: no branch - absent only under -OO
    __doc__ = __doc__.format(
        algorithms=choices_text(ALGORITHMS),
        methods=choices_text(backends.names()),
    )


def _resolve_cache(cache, shards: int):
    """Materialize the ``cache=``/``shards=`` spec into a cache object.

    A cache *object* (``PermutationCache``/``ShardedCache`` — anything
    with ``get``/``put``) passes through unchanged; a ``str``/``Path``
    names a disk-tier root and builds a :class:`PermutationCache` at
    ``shards=1`` or an N-way :class:`ShardedCache` (``shard-<i>``
    subdirectories) above that.  ``shards`` only shapes how a path spec
    materializes — with ``cache=None`` there is nothing to shard.
    """
    check_min("shards", shards, 1)
    if cache is None or not isinstance(cache, (str, Path)):
        return cache
    if shards > 1:
        from repro.service.router import ShardedCache

        return ShardedCache(cache, shards)
    from repro.service.cache import PermutationCache

    return PermutationCache(disk_dir=cache)


def _algorithm_fn(algorithm: str):
    """Resolve a non-RCM ordering heuristic lazily (import cost on use)."""
    if algorithm == "sloan":
        from repro.orderings.sloan import sloan

        return sloan
    if algorithm == "gps":
        from repro.orderings.gps import gibbs_poole_stockmeyer

        return gibbs_poole_stockmeyer
    if algorithm == "king":
        from repro.orderings.king import king

        return king
    if algorithm == "minimum-degree":
        from repro.orderings.mindeg import minimum_degree

        return minimum_degree
    if algorithm == "spectral":
        from repro.orderings.spectral import spectral_ordering

        return spectral_ordering
    raise AssertionError(algorithm)  # pragma: no cover - validated upstream


def reorder(
    mat: CSRMatrix,
    *,
    algorithm: str = "rcm",
    method: str = "auto",
    start: Union[int, str] = "min-valence",
    n_workers: int = 4,
    config: Optional[BatchConfig] = None,
    symmetrize: bool = False,
    seed: int = 0,
    transform: Optional[str] = None,
    cache=None,
    shards: int = 1,
) -> ReorderResult:
    """Reorder a symmetric sparse pattern to reduce its bandwidth.

    Parameters
    ----------
    mat:
        square :class:`CSRMatrix`; must be structurally symmetric unless
        ``symmetrize`` is set (then ``A | A^T`` is reordered).
    algorithm:
        one of :data:`ALGORITHMS`.  ``"rcm"`` runs the paper's pipeline
        (components, start selection, any execution method); the classical
        heuristics (``sloan``, ``gps``, ``king``, ``minimum-degree``,
        ``spectral``) run directly on the whole matrix.
    method:
        RCM execution strategy, one of
        :func:`repro.backends.method_choices`.  ``"auto"`` (default) runs
        the cost-model selector over the registered auto candidates
        (weighing node count, nnz and component count).  All methods
        return the **identical** permutation (the paper's headline
        invariant); they differ in execution strategy and in the
        statistics attached — see the capability table in
        ``docs/api.md``.  For non-RCM algorithms only ``"auto"``/
        ``"direct"`` are accepted.
    start:
        an explicit node id (single-component matrices only), or a strategy:
        ``"min-valence"`` (default — deterministic and cheap) or
        ``"peripheral"`` (the paper's pseudo-peripheral search).  RCM only.
    n_workers:
        worker count for the parallel methods — simulated workers for the
        ``batch-*`` methods, OS threads for ``"threads"``, worker
        *processes* for ``"parallel"``.
    config:
        optional :class:`BatchConfig` override for the batch methods.
    seed:
        interleaving jitter seed for the simulated methods (0 = canonical
        deterministic schedule).
    transform:
        optional pre-pass in front of the BFS kernels (RCM only).
        ``"powerlaw"`` applies the Jiang-style hub extraction: hub
        vertices are relabeled to the front and the traversal starts
        from them, keeping the level structure shallow on heavy-tailed
        patterns (the returned permutation still indexes the original
        matrix).  ``"auto"`` applies it exactly when the scenario
        classifier calls the pattern heavy-tailed (see
        :mod:`repro.matrices.scenarios`), and ``None`` (default)
        preserves the classical pipeline — only the untransformed path
        carries the byte-identical-across-methods invariant.
        Incompatible with an explicit integer ``start``.
    cache:
        optional :class:`repro.service.PermutationCache`, N-way
        :class:`repro.service.ShardedCache`, or a ``str``/``Path`` naming
        a disk-tier directory (materialized per ``shards``).  When given,
        the request is keyed on the content hash of the pattern plus the
        permutation-relevant options; a hit returns the cached result
        (permutation bit-identical to recomputation) with
        ``phase_ns={"cache": <lookup ns>}``, a miss computes and
        populates the cache.
    shards:
        how a ``str``/``Path`` ``cache`` spec materializes: ``1``
        (default) builds one :class:`~repro.service.PermutationCache`,
        ``N > 1`` an N-way consistent-hash
        :class:`~repro.service.ShardedCache` with per-shard ``shard-<i>``
        disk directories.  Ignored for a cache object (it already knows
        its sharding) and meaningless without ``cache``.

    Returns
    -------
    ReorderResult
        permutation, bandwidth before/after, wall-clock phase timings and
        (for simulated methods) per-component run statistics.
    """
    check_choice("algorithm", algorithm, ALGORITHMS)
    check_min("n_workers", n_workers, 1)
    cache = _resolve_cache(cache, shards)

    def compute() -> ReorderResult:
        if algorithm == "rcm":
            return _reorder_rcm(
                mat, method=method, start=start, n_workers=n_workers,
                config=config, symmetrize=symmetrize, seed=seed,
                transform=transform,
            )
        check_choice("method", method, _DIRECT_METHODS)
        check_start(start, max(mat.n, 1))
        if transform is not None:
            raise ValidationError(
                "transform is an RCM-only option; "
                f"algorithm {algorithm!r} does not support it"
            )
        return _reorder_direct(mat, algorithm, symmetrize=symmetrize)

    # every spontaneous call gets a trace identity (service requests
    # arrive with one already active and inherit it unchanged)
    trace_scope = (
        tctx.ensure_context() if telemetry.get().enabled
        else tctx.activate(None)
    )
    with trace_scope:
        if cache is None:
            return compute()

        from repro.service.keys import cache_key

        key = cache_key(
            mat, algorithm=algorithm, method=method, start=start,
            symmetrize=symmetrize, transform=transform,
        )
        t0 = time.perf_counter_ns()
        hit = cache.get(key)
        if hit is not None:
            hit.phase_ns = {"cache": time.perf_counter_ns() - t0}
            return hit
        res = compute()
        cache.put(key, res)
        return res


def reorder_many(
    mats: Sequence[CSRMatrix],
    *,
    algorithm: str = "rcm",
    method: str = "auto",
    start: Union[int, str] = "min-valence",
    n_workers: int = 4,
    config: Optional[BatchConfig] = None,
    symmetrize: bool = False,
    seed: int = 0,
    transform: Optional[str] = None,
    cache=None,
    shards: int = 1,
) -> List[ReorderResult]:
    """Reorder a batch of patterns as one amortized dispatch.

    The batch counterpart of :func:`reorder`: same keyword surface, one
    :class:`~repro.core.api.ReorderResult` per input matrix, in order, each
    **byte-identical** to the corresponding single :func:`reorder` call.
    What changes is the execution economics:

    * ``method="auto"`` prices every backend with the batch-aware cost
      term — each backend's one-time ``setup_cycles`` (pool fork/warm-up)
      is amortized over the whole batch
      (:func:`repro.backends.resolve_auto_method` with ``batch=len(mats)``)
      — so a 64-matrix batch can justify the process pool where a
      singleton cannot;
    * matrices are grouped by resolved backend and each group runs as
      **one** executor dispatch (:func:`repro.parallel.map_matrices`):
      CSR payloads travel via the zero-copy shared-memory transport, the
      persistent pool is warmed once and reused (``REPRO_NO_SHM=1`` opts
      back into the pickle transport);
    * with ``cache=`` given (cache object or disk-tier path, sharded per
      ``shards`` exactly as in :func:`reorder`), hits are served per
      matrix up front (``phase_ns={"cache": <ns>}``) and only the misses
      are dispatched; every computed result is cached on the way out.

    Requests that need per-call machinery a grouped dispatch cannot carry
    (non-RCM algorithms, an explicit simulated-machine ``config``, a
    nonzero ``seed``, a ``transform`` pass, or ``method="parallel"``,
    which manages its own pool) fall back to a per-matrix loop over the
    same pipeline — results are identical either way.
    """
    check_choice("algorithm", algorithm, ALGORITHMS)
    check_min("n_workers", n_workers, 1)
    if algorithm == "rcm":
        check_choice("method", method, backends.method_choices())
    cache = _resolve_cache(cache, shards)
    mats = list(mats)
    results: List[Optional[ReorderResult]] = [None] * len(mats)
    if not mats:
        return []

    trace_scope = (
        tctx.ensure_context() if telemetry.get().enabled
        else tctx.activate(None)
    )
    with trace_scope:
        # cache tier first: serve hits, dispatch only the misses
        keys: List[Optional[object]] = [None] * len(mats)
        pend: List[int] = []
        if cache is not None:
            from repro.service.keys import cache_key

            for i, m in enumerate(mats):
                keys[i] = cache_key(
                    m, algorithm=algorithm, method=method, start=start,
                    symmetrize=symmetrize, transform=transform,
                )
                t0 = time.perf_counter_ns()
                hit = cache.get(keys[i])
                if hit is not None:
                    hit.phase_ns = {"cache": time.perf_counter_ns() - t0}
                    results[i] = hit
                else:
                    pend.append(i)
        else:
            pend = list(range(len(mats)))

        if pend:
            computed = _compute_many(
                [mats[i] for i in pend], algorithm=algorithm, method=method,
                start=start, n_workers=n_workers, config=config,
                symmetrize=symmetrize, seed=seed, transform=transform,
            )
            for i, res in zip(pend, computed):
                results[i] = res
                if cache is not None:
                    cache.put(keys[i], res)
    return results  # type: ignore[return-value]


def _compute_many(
    mats: List[CSRMatrix], *, algorithm: str, method: str,
    start: Union[int, str], n_workers: int, config, symmetrize: bool,
    seed: int, transform: Optional[str] = None,
) -> List[ReorderResult]:
    """Grouped batch execution (no cache tier) — the one code path behind
    both :func:`reorder_many` and the service's batched admission, so the
    two surfaces cannot drift apart."""
    from repro.parallel import ParallelConfig, map_matrices

    one_by_one = (
        algorithm != "rcm" or config is not None or seed != 0
        or transform is not None
    )
    if one_by_one:
        return [
            reorder(
                m, algorithm=algorithm, method=method, start=start,
                n_workers=n_workers, config=config, symmetrize=symmetrize,
                seed=seed, transform=transform,
            )
            for m in mats
        ]

    # group by the backend that will actually run; "auto" resolves with
    # the dispatch-amortized batch term
    groups: Dict[str, List[int]] = {}
    for i, m in enumerate(mats):
        resolved = method
        if resolved == "auto":
            resolved = backends.resolve_auto_method(
                m.n, m.nnz, 1, batch=len(mats)
            )
        groups.setdefault(resolved, []).append(i)

    results: List[Optional[ReorderResult]] = [None] * len(mats)
    tel = telemetry.get()
    with tel.span(
        "reorder_many", category="api",
        n_matrices=len(mats), n_groups=len(groups),
    ):
        for resolved, idxs in groups.items():
            if resolved == "parallel" or len(idxs) == 1:
                # the process backend schedules components itself (and a
                # pool inside a pool worker cannot fork) — run per matrix
                for i in idxs:
                    results[i] = _reorder_rcm(
                        mats[i], method=resolved, start=start,
                        n_workers=n_workers, symmetrize=symmetrize,
                    )
            else:
                out = map_matrices(
                    [mats[i] for i in idxs], method=resolved, start=start,
                    symmetrize=symmetrize,
                    config=ParallelConfig(n_workers=n_workers),
                )
                for i, res in zip(idxs, out):
                    results[i] = res
    return results  # type: ignore[return-value]


def _reorder_direct(
    mat: CSRMatrix, algorithm: str, *, symmetrize: bool
) -> ReorderResult:
    """Run a whole-matrix heuristic through the same result pipeline."""
    tel = telemetry.get()
    phase_ns = {p: 0 for p in PHASES}

    t_phase = time.perf_counter_ns()
    with tel.span("validate", category="api", n=mat.n, nnz=mat.nnz):
        if symmetrize:
            mat = mat.symmetrize()
        validate_csr(mat, require_sorted=True)
        if not is_structurally_symmetric(mat):
            raise ValueError(
                "matrix pattern is not symmetric; pass symmetrize=True or "
                "call CSRMatrix.symmetrize() first"
            )
    phase_ns["validate"] = time.perf_counter_ns() - t_phase

    t_phase = time.perf_counter_ns()
    with tel.span("ordering", category="api", method=algorithm, size=mat.n):
        perm = np.asarray(_algorithm_fn(algorithm)(mat), dtype=np.int64)
    phase_ns["ordering"] = time.perf_counter_ns() - t_phase

    t_phase = time.perf_counter_ns()
    with tel.span("assembly", category="api"):
        init_bw = bandwidth(mat)
        reord_bw = bandwidth_after(mat, perm)
    phase_ns["assembly"] = time.perf_counter_ns() - t_phase

    return ReorderResult(
        permutation=perm,
        method="direct",
        start_nodes=[],
        component_sizes=[],
        initial_bandwidth=init_bw,
        reordered_bandwidth=reord_bw,
        stats=[],
        phase_ns=phase_ns,
        algorithm=algorithm,
    )
