"""``repro.reorder()`` — the single public entry point for every ordering.

One facade unifies what used to be two APIs (``core.api.reverse_cuthill_mckee``
for RCM, ``orderings.api.order`` for everything else): every algorithm —
{algorithms} —
goes through the same validated, telemetry-instrumented pipeline and returns
a full :class:`~repro.core.api.ReorderResult` (permutation, bandwidth
before/after, wall-clock phase breakdown).  The RCM execution methods are
{methods}.

All parameters are keyword-only and validated centrally
(:mod:`repro.validation`): unknown ``algorithm``/``method``/``start`` values
raise one uniform ``ValueError`` listing the valid choices.  The choice
lists above are substituted from :data:`ALGORITHMS` and the execution-backend
registry (:mod:`repro.backends`) at import time — each method name is
spelled exactly once, at its ``register()`` call, and
``tests/test_doc_drift.py`` holds this file to it.

For RCM, ``method="auto"`` (the default) asks every auto-candidate backend
to price the pattern through its ``cost_estimate(n, nnz, n_components)``
hook and runs the cheapest — the pure-Python reference on small patterns,
the level-synchronous NumPy kernel once its per-level dispatch overhead
amortizes, the per-component process pool when a huge pattern splits into
enough components to feed it (see
:func:`repro.backends.resolve_auto_method`).  Every RCM method returns the
identical permutation.

Passing ``cache=`` (a :class:`repro.service.PermutationCache`) makes the
call content-addressed: a pattern + options seen before is served from the
cache without recomputation.  :class:`repro.service.ReorderService` builds
coalescing and admission control on top of the same path.
"""

from __future__ import annotations

import time
from typing import Optional, Union

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth, bandwidth_after
from repro.sparse.validate import validate_csr, is_structurally_symmetric
from repro import backends
from repro.core.api import METHODS, PHASES, ReorderResult, _reorder_rcm
from repro.core.batches import BatchConfig
from repro.validation import check_choice, check_min, check_start, choices_text
from repro import telemetry
from repro.telemetry import context as tctx

__all__ = ["reorder", "ALGORITHMS", "METHODS"]

#: every ordering heuristic the facade dispatches to
ALGORITHMS = ("rcm", "sloan", "gps", "king", "minimum-degree", "spectral")

#: methods valid for algorithms other than ``"rcm"`` (they have exactly one
#: execution strategy, so only the default resolution is accepted)
_DIRECT_METHODS = ("auto", "direct")

# single source of truth: the module docstring enumerates the choice lists
# from ALGORITHMS and the backend registry, never by hand (guarded by
# tests/test_doc_drift)
if __doc__ is not None:  # pragma: no branch - absent only under -OO
    __doc__ = __doc__.format(
        algorithms=choices_text(ALGORITHMS),
        methods=choices_text(backends.names()),
    )


def _algorithm_fn(algorithm: str):
    """Resolve a non-RCM ordering heuristic lazily (import cost on use)."""
    if algorithm == "sloan":
        from repro.orderings.sloan import sloan

        return sloan
    if algorithm == "gps":
        from repro.orderings.gps import gibbs_poole_stockmeyer

        return gibbs_poole_stockmeyer
    if algorithm == "king":
        from repro.orderings.king import king

        return king
    if algorithm == "minimum-degree":
        from repro.orderings.mindeg import minimum_degree

        return minimum_degree
    if algorithm == "spectral":
        from repro.orderings.spectral import spectral_ordering

        return spectral_ordering
    raise AssertionError(algorithm)  # pragma: no cover - validated upstream


def reorder(
    mat: CSRMatrix,
    *,
    algorithm: str = "rcm",
    method: str = "auto",
    start: Union[int, str] = "min-valence",
    n_workers: int = 4,
    config: Optional[BatchConfig] = None,
    symmetrize: bool = False,
    seed: int = 0,
    cache=None,
) -> ReorderResult:
    """Reorder a symmetric sparse pattern to reduce its bandwidth.

    Parameters
    ----------
    mat:
        square :class:`CSRMatrix`; must be structurally symmetric unless
        ``symmetrize`` is set (then ``A | A^T`` is reordered).
    algorithm:
        one of :data:`ALGORITHMS`.  ``"rcm"`` runs the paper's pipeline
        (components, start selection, any execution method); the classical
        heuristics (``sloan``, ``gps``, ``king``, ``minimum-degree``,
        ``spectral``) run directly on the whole matrix.
    method:
        RCM execution strategy, one of
        :func:`repro.backends.method_choices`.  ``"auto"`` (default) runs
        the cost-model selector over the registered auto candidates
        (weighing node count, nnz and component count).  All methods
        return the **identical** permutation (the paper's headline
        invariant); they differ in execution strategy and in the
        statistics attached — see the capability table in
        ``docs/api.md``.  For non-RCM algorithms only ``"auto"``/
        ``"direct"`` are accepted.
    start:
        an explicit node id (single-component matrices only), or a strategy:
        ``"min-valence"`` (default — deterministic and cheap) or
        ``"peripheral"`` (the paper's pseudo-peripheral search).  RCM only.
    n_workers:
        worker count for the parallel methods — simulated workers for the
        ``batch-*`` methods, OS threads for ``"threads"``, worker
        *processes* for ``"parallel"``.
    config:
        optional :class:`BatchConfig` override for the batch methods.
    seed:
        interleaving jitter seed for the simulated methods (0 = canonical
        deterministic schedule).
    cache:
        optional :class:`repro.service.PermutationCache`.  When given, the
        request is keyed on the content hash of the pattern plus the
        permutation-relevant options; a hit returns the cached result
        (permutation bit-identical to recomputation) with
        ``phase_ns={"cache": <lookup ns>}``, a miss computes and
        populates the cache.

    Returns
    -------
    ReorderResult
        permutation, bandwidth before/after, wall-clock phase timings and
        (for simulated methods) per-component run statistics.
    """
    check_choice("algorithm", algorithm, ALGORITHMS)
    check_min("n_workers", n_workers, 1)

    def compute() -> ReorderResult:
        if algorithm == "rcm":
            return _reorder_rcm(
                mat, method=method, start=start, n_workers=n_workers,
                config=config, symmetrize=symmetrize, seed=seed,
            )
        check_choice("method", method, _DIRECT_METHODS)
        check_start(start, max(mat.n, 1))
        return _reorder_direct(mat, algorithm, symmetrize=symmetrize)

    # every spontaneous call gets a trace identity (service requests
    # arrive with one already active and inherit it unchanged)
    trace_scope = (
        tctx.ensure_context() if telemetry.get().enabled
        else tctx.activate(None)
    )
    with trace_scope:
        if cache is None:
            return compute()

        from repro.service.keys import cache_key

        key = cache_key(
            mat, algorithm=algorithm, method=method, start=start,
            symmetrize=symmetrize,
        )
        t0 = time.perf_counter_ns()
        hit = cache.get(key)
        if hit is not None:
            hit.phase_ns = {"cache": time.perf_counter_ns() - t0}
            return hit
        res = compute()
        cache.put(key, res)
        return res


def _reorder_direct(
    mat: CSRMatrix, algorithm: str, *, symmetrize: bool
) -> ReorderResult:
    """Run a whole-matrix heuristic through the same result pipeline."""
    tel = telemetry.get()
    phase_ns = {p: 0 for p in PHASES}

    t_phase = time.perf_counter_ns()
    with tel.span("validate", category="api", n=mat.n, nnz=mat.nnz):
        if symmetrize:
            mat = mat.symmetrize()
        validate_csr(mat, require_sorted=True)
        if not is_structurally_symmetric(mat):
            raise ValueError(
                "matrix pattern is not symmetric; pass symmetrize=True or "
                "call CSRMatrix.symmetrize() first"
            )
    phase_ns["validate"] = time.perf_counter_ns() - t_phase

    t_phase = time.perf_counter_ns()
    with tel.span("ordering", category="api", method=algorithm, size=mat.n):
        perm = np.asarray(_algorithm_fn(algorithm)(mat), dtype=np.int64)
    phase_ns["ordering"] = time.perf_counter_ns() - t_phase

    t_phase = time.perf_counter_ns()
    with tel.span("assembly", category="api"):
        init_bw = bandwidth(mat)
        reord_bw = bandwidth_after(mat, perm)
    phase_ns["assembly"] = time.perf_counter_ns() - t_phase

    return ReorderResult(
        permutation=perm,
        method="direct",
        start_nodes=[],
        component_sizes=[],
        initial_bandwidth=init_bw,
        reordered_bandwidth=reord_bw,
        stats=[],
        phase_ns=phase_ns,
        algorithm=algorithm,
    )
