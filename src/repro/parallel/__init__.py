"""Process-parallel execution: per-component RCM and multi-matrix batches.

Every RCM variant in :mod:`repro.core` is bounded by one interpreter; this
subsystem sidesteps the GIL with a :class:`concurrent.futures`
process pool.  Two work shapes are covered:

* **per-component partitioning** — independent connected components of one
  matrix are ordered concurrently (:func:`rcm_components`), largest first so
  the pool drains evenly;
* **chunked multi-matrix throughput** — many matrices are reordered as
  chunks of whole pipelines (:func:`map_matrices`), the CLI/bench batch
  path.

Workers receive the CSR arrays once (pool initializer), are warmed up before
real work is submitted, and every entry point degrades gracefully to
in-process execution when ``fork`` is unavailable, the pool cannot start, or
the input is too small to amortize process startup.  Results are
**bit-identical** to the serial path in all cases.
"""

from repro.parallel.executor import (
    ParallelConfig,
    fork_available,
    map_matrices,
    rcm_components,
    record_fallback,
    resolve_workers,
)

__all__ = [
    "ParallelConfig",
    "fork_available",
    "map_matrices",
    "rcm_components",
    "record_fallback",
    "resolve_workers",
]
