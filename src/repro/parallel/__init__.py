"""Process-parallel execution: per-component RCM and multi-matrix batches.

Every RCM variant in :mod:`repro.core` is bounded by one interpreter; this
subsystem sidesteps the GIL with a :class:`concurrent.futures`
process pool.  Two work shapes are covered:

* **per-component partitioning** — independent connected components of one
  matrix are ordered concurrently (:func:`rcm_components`), largest first so
  the pool drains evenly;
* **chunked multi-matrix throughput** — many matrices are reordered as
  chunks of whole pipelines (:func:`map_matrices`), the batch path behind
  :func:`repro.reorder_many` and the service's batched admission.

Matrix payloads travel through the zero-copy shared-memory transport
(:mod:`repro.parallel.shm`): published once into
``multiprocessing.shared_memory`` segments, attached by workers as
read-only views, permutations written in place into a shared result arena
— no CSR bytes cross the pipe.  The fork pool is persistent and warmed
once per lifetime (``parallel.pool.reused`` counts reuse).  Every entry
point degrades gracefully — to the legacy pickle transport when shared
memory is unavailable or opted out (``REPRO_NO_SHM``), and to in-process
execution when ``fork`` is unavailable, the pool cannot start, or the
input is too small to amortize dispatch.  Results are **bit-identical**
to the serial path in all cases.
"""

from repro.parallel import shm
from repro.parallel.executor import (
    ParallelConfig,
    fork_available,
    map_matrices,
    rcm_components,
    record_fallback,
    reset_pools,
    resolve_workers,
)

__all__ = [
    "ParallelConfig",
    "fork_available",
    "map_matrices",
    "rcm_components",
    "record_fallback",
    "reset_pools",
    "resolve_workers",
    "shm",
]
