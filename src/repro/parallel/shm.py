"""Zero-copy shared-memory CSR transport for the process pool.

The fork-pool hot path used to ship every CSR payload (``indptr`` +
``indices``) into workers and every permutation back out through
``ForkingPickler`` — a full serialize/copy/deserialize round trip per
dispatch that grows linearly with ``nnz``.  This module replaces both
directions with POSIX shared memory (:mod:`multiprocessing.shared_memory`):

* :meth:`ShmBatch.publish_csr` writes a matrix's pattern **once** into one
  shared segment (``[indptr | indices]``, little-endian int64) and returns
  a tiny picklable :class:`CSRHandle` (segment name + shape) — the only
  thing that crosses the pipe;
* workers attach read-only NumPy views over the same physical pages
  (:func:`attach_csr`, memoized per worker via a small LRU) — no copy, no
  deserialization;
* permutation outputs are written **in place** into a preallocated shared
  :class:`ResultArena` (:meth:`ShmBatch.result_arena`), one int64 slot per
  node, so results come home without pickling either.

Lifecycle is guaranteed-unlink: every segment a :class:`ShmBatch` creates
is unlinked when the batch context exits — success, worker crash or
timeout alike — and a module ``atexit`` hook sweeps anything that somehow
survived, bumping the ``parallel.shm.leaked`` counter per swept segment so
leaks are observable, not silent.  Counters ``parallel.shm.published`` /
``parallel.shm.bytes`` record transport volume.

Set ``REPRO_NO_SHM=1`` (or any non-empty value) to disable the transport;
every caller then falls back to the legacy pickle path.  The transport also
disables itself when :mod:`multiprocessing.shared_memory` is unusable on
the platform (:func:`shm_available` probes once per process).
"""

from __future__ import annotations

import atexit
import os
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro import telemetry

__all__ = [
    "CSRHandle",
    "ArenaHandle",
    "ResultArena",
    "ShmBatch",
    "shm_available",
    "ensure_tracker",
    "attach_csr",
    "attach_arena",
    "active_segments",
    "sweep_leaked",
]

_ITEM = np.dtype("<i8").itemsize  # every payload is little-endian int64


def _new_segment_name() -> str:
    """A collision-proof segment name carrying our prefix for sweeps."""
    return f"repro_{os.getpid():x}_{secrets.token_hex(6)}"


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def ensure_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    Must run in the parent before the fork pool is created, so every
    worker inherits the same tracker — attach-side registrations then
    collapse into the parent's (set semantics) instead of spawning
    per-worker trackers that would try to clean segments they don't own.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker impl detail
        pass


_AVAILABLE: Optional[bool] = None


def shm_available() -> bool:
    """Whether the shared-memory transport is usable and not opted out.

    ``REPRO_NO_SHM`` wins over everything (checked per call, so tests can
    flip it); platform support is probed once per process by creating and
    unlinking a minimal segment.
    """
    if os.environ.get("REPRO_NO_SHM"):
        return False
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            seg = _shared_memory().SharedMemory(
                create=True, size=_ITEM, name=_new_segment_name()
            )
            seg.close()
            seg.unlink()
            _AVAILABLE = True
        except (ImportError, OSError, ValueError):
            _AVAILABLE = False
    return _AVAILABLE


@dataclass(frozen=True)
class CSRHandle:
    """Picklable pointer to one published CSR pattern (bytes stay behind).

    ``offset`` is in int64 *elements* from the start of the segment, so a
    whole batch of matrices can share one packed segment
    (:meth:`ShmBatch.publish_many`)."""

    name: str
    n: int
    nnz: int
    offset: int = 0


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable pointer to a shared int64 result arena."""

    name: str
    size: int


# ----------------------------------------------------------------------
# parent side: publishing + guaranteed-unlink registry
# ----------------------------------------------------------------------

#: process-wide registry of segments this process created and has not yet
#: unlinked — the atexit sweep target.  Values are ``(segment, creator
#: pid)``: fork-pool workers inherit this dict at fork time, and the pid
#: guard keeps a worker's interpreter exit from unlinking segments the
#: *parent* still serves to its siblings.
_ACTIVE: Dict[str, Tuple[object, int]] = {}


def active_segments() -> Tuple[str, ...]:
    """Names of segments created by *this* process and not yet unlinked."""
    pid = os.getpid()
    return tuple(n for n, (_, p) in _ACTIVE.items() if p == pid)


def _unlink(name: str) -> None:
    entry = _ACTIVE.pop(name, None)
    if entry is None:
        return
    seg, _ = entry
    try:
        seg.close()
    except BufferError:
        # a NumPy view over seg.buf is still alive (e.g. an arena view the
        # caller kept); the mapping lingers until that view dies, but the
        # name must go away *now* — unlink below regardless.
        pass
    try:
        seg.unlink()
    except OSError:  # pragma: no cover - already gone (double sweep)
        pass


def sweep_leaked() -> int:
    """Unlink every segment this process still owns; returns the count.

    Runs at interpreter exit as the last line of defence.  A non-zero
    return means some dispatch path dropped its :class:`ShmBatch` without
    closing it — counted on ``parallel.shm.leaked`` so the leak shows up
    in metrics instead of as orphaned ``/dev/shm`` files.  Entries created
    by a different pid (inherited across ``fork``) are left alone: their
    creator owns them.
    """
    pid = os.getpid()
    mine = [n for n, (_, p) in _ACTIVE.items() if p == pid]
    for name in mine:
        _unlink(name)
    if mine:
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("parallel.shm.leaked").add(len(mine))
    return len(mine)


atexit.register(sweep_leaked)


class ResultArena:
    """A preallocated shared int64 array that workers fill in place.

    The parent allocates one slot per node of the dispatch; each worker
    writes its permutation block at the offset the task names.  ``view``
    is writable on both sides — the parent copies blocks out after the
    futures resolve, before the segment is unlinked.
    """

    def __init__(self, seg, size: int) -> None:
        self._seg = seg
        self.size = size
        self.view: Optional[np.ndarray] = np.ndarray(
            (size,), dtype="<i8", buffer=seg.buf
        )

    @property
    def handle(self) -> ArenaHandle:
        return ArenaHandle(name=self._seg.name, size=self.size)

    def block(self, offset: int, length: int) -> np.ndarray:
        """An owned copy of one block (safe to keep past unlink)."""
        assert self.view is not None, "arena already released"
        return np.array(self.view[offset:offset + length], dtype=np.int64)

    def release(self) -> None:
        """Drop the parent-side view so the segment can unmap cleanly."""
        self.view = None


class ShmBatch:
    """Context-managed owner of every segment of one dispatch.

    ::

        with ShmBatch() as batch:
            handle = batch.publish_csr(mat)
            arena = batch.result_arena(mat.n)
            ... submit tasks carrying (handle, arena.handle, ...) ...
            perm = arena.block(0, mat.n)
        # <- segments are unlinked here, success or raise alike

    Exiting the context unlinks every segment the batch created —
    including the error path out of a broken pool or a timed-out batch —
    which is what makes the transport's lifecycle testable: after the
    ``with`` block, :func:`active_segments` must not contain them.
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._arenas: List[ResultArena] = []
        self._published = 0
        self._bytes = 0

    # -- allocation ----------------------------------------------------
    def _create(self, size: int):
        seg = _shared_memory().SharedMemory(
            create=True, size=max(size, _ITEM), name=_new_segment_name()
        )
        _ACTIVE[seg.name] = (seg, os.getpid())
        self._names.append(seg.name)
        self._bytes += size
        return seg

    def publish_csr(self, mat: CSRMatrix) -> CSRHandle:
        """Write one matrix's pattern into a fresh segment.

        Layout: ``indptr`` (n+1 int64) immediately followed by ``indices``
        (nnz int64).  Returns the handle workers attach through.
        """
        n, nnz = mat.n, mat.nnz
        seg = self._create((n + 1 + nnz) * _ITEM)
        buf = np.ndarray((n + 1 + nnz,), dtype="<i8", buffer=seg.buf)
        buf[:n + 1] = mat.indptr
        buf[n + 1:] = mat.indices
        del buf
        self._published += 1
        return CSRHandle(name=seg.name, n=n, nnz=nnz)

    def publish_many(self, mats: "Sequence[CSRMatrix]") -> List[CSRHandle]:
        """Pack a whole batch of patterns into *one* segment.

        One allocation + one attach per worker for the entire batch — the
        per-matrix cost of the transport drops to two ``memcpy`` calls,
        which is what lets small-matrix batches beat the pickle path.
        """
        if not mats:
            return []
        lengths = [m.n + 1 + m.nnz for m in mats]
        seg = self._create(sum(lengths) * _ITEM)
        buf = np.ndarray((sum(lengths),), dtype="<i8", buffer=seg.buf)
        handles: List[CSRHandle] = []
        at = 0
        for mat, length in zip(mats, lengths):
            buf[at:at + mat.n + 1] = mat.indptr
            buf[at + mat.n + 1:at + length] = mat.indices
            handles.append(
                CSRHandle(name=seg.name, n=mat.n, nnz=mat.nnz, offset=at)
            )
            at += length
        del buf
        self._published += len(mats)
        return handles

    def result_arena(self, size: int) -> ResultArena:
        """Allocate the shared output array (one int64 per node)."""
        arena = ResultArena(self._create(size * _ITEM), size)
        self._arenas.append(arena)
        return arena

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Unlink every segment this batch created (idempotent)."""
        for arena in self._arenas:
            arena.release()
        self._arenas.clear()
        for name in self._names:
            _unlink(name)
        self._names.clear()
        if self._published:
            tel = telemetry.get()
            if tel.enabled:
                tel.counter("parallel.shm.published").add(self._published)
                tel.counter("parallel.shm.bytes").add(self._bytes)
            self._published = 0
            self._bytes = 0

    def __enter__(self) -> "ShmBatch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# worker side: memoized zero-copy attachment
# ----------------------------------------------------------------------

#: per-worker LRU of attached segments — a pool worker serves many tasks
#: against the same matrix, so the attach (an mmap) happens once, not per
#: task; evicted entries are closed (the parent owns unlinking)
_ATTACH_LRU_CAP = 16
_ATTACHED: "OrderedDict[str, object]" = OrderedDict()


def _attach(name: str):
    seg = _ATTACHED.get(name)
    if seg is not None:
        _ATTACHED.move_to_end(name)
        return seg
    # NOTE on the resource tracker: Python < 3.13 registers attach-side
    # handles too.  Fork-pool workers share the parent's tracker process,
    # where re-registering an existing name is a set no-op and the parent's
    # ``unlink()`` unregisters exactly once — so no correction is needed
    # here (an attach-side ``unregister`` would instead *steal* the
    # parent's registration).  :func:`ensure_tracker` keeps the
    # shared-tracker precondition true.
    seg = _shared_memory().SharedMemory(name=name)
    _ATTACHED[name] = seg
    while len(_ATTACHED) > _ATTACH_LRU_CAP:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except (OSError, BufferError):  # pragma: no cover - view alive
            pass
    return seg


def attach_csr(handle: CSRHandle) -> CSRMatrix:
    """A read-only zero-copy :class:`CSRMatrix` view of a published segment.

    The returned arrays alias the shared pages directly; they are marked
    non-writable so a kernel bug cannot corrupt the matrix under every
    other worker's feet.
    """
    seg = _attach(handle.name)
    buf = np.ndarray(
        (handle.n + 1 + handle.nnz,),
        dtype="<i8",
        buffer=seg.buf,
        offset=handle.offset * _ITEM,
    )
    indptr = buf[:handle.n + 1]
    indices = buf[handle.n + 1:]
    indptr.flags.writeable = False
    indices.flags.writeable = False
    return CSRMatrix(
        indptr=indptr, indices=indices, data=None, n=handle.n
    )


def attach_arena(handle: ArenaHandle) -> np.ndarray:
    """The writable shared output array, as seen from a worker."""
    seg = _attach(handle.name)
    return np.ndarray((handle.size,), dtype="<i8", buffer=seg.buf)
