"""Process-pool executor with partitioning, warm-up and graceful fallback.

The pool is built on ``fork`` so workers inherit the parent's modules and
the CSR arrays are shipped exactly once per worker (pool initializer), not
once per task.  When ``fork`` is not available (e.g. Windows / some macOS
configurations), when the pool fails to start, or when the input is too
small to pay for process startup, every entry point silently executes the
same code path in-process — the caller always gets the identical result.
The in-process target comes from the backend registry's degradation chain
(:func:`repro.backends.in_process_fallback`), the same declaration the
service layer's fallback chain derives from.

Telemetry: spans ``parallel.components`` / ``parallel.map`` wrap the
dispatch, and counters ``parallel.tasks``, ``parallel.chunks`` and
``parallel.fallbacks`` record what actually ran where.  When telemetry is
enabled the pool switches to *traced* task functions: each worker resets
its forked-in telemetry, records spans/counters locally under the
request's :class:`~repro.telemetry.context.TraceContext`, and ships a
:class:`~repro.telemetry.context.WorkerReport` back with its result; the
parent merges every report under the dispatch span with a stable lane per
worker pid, so one request produces one coherent cross-process trace.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro import telemetry
from repro.telemetry.spans import current_trace

__all__ = [
    "ParallelConfig",
    "fork_available",
    "rcm_components",
    "record_fallback",
    "map_matrices",
    "resolve_workers",
]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the process-parallel execution layer.

    ``n_workers=None`` sizes the pool to ``os.cpu_count()``.  Inputs with
    fewer than ``min_parallel_nodes`` total nodes (or a single task) run
    in-process: process startup costs milliseconds, which a small matrix
    never wins back.  ``force_processes`` overrides that heuristic (tests,
    benchmarks).
    """

    n_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    warmup: bool = True
    min_parallel_nodes: int = 2048
    force_processes: bool = False


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(n_workers: Optional[int]) -> int:
    """Effective pool size: requested count, capped at 1 minimum."""
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    return max(int(n_workers), 1)


# ----------------------------------------------------------------------
# worker-side globals (populated by the pool initializer after fork)
# ----------------------------------------------------------------------
_WORKER_MAT: Optional[CSRMatrix] = None


def _init_matrix_worker(indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
    global _WORKER_MAT
    _WORKER_MAT = CSRMatrix(indptr=indptr, indices=indices, data=None, n=n)


def _component_task(start: int) -> np.ndarray:
    from repro.core.vectorized import rcm_vectorized

    assert _WORKER_MAT is not None, "pool initializer did not run"
    return rcm_vectorized(_WORKER_MAT, start)


def _component_task_traced(start: int, ctx, epoch_ns: int):
    """Traced variant: returns ``(permutation, WorkerReport)``.

    The worker re-bases its (forked) telemetry on the parent's epoch,
    activates the request's trace context and wraps the kernel in a
    ``parallel.worker`` span, so the parent can merge a self-consistent
    sub-trace (see :mod:`repro.telemetry.context`).
    """
    from repro.core.vectorized import rcm_vectorized
    from repro.telemetry import context as tctx

    assert _WORKER_MAT is not None, "pool initializer did not run"
    tctx.begin_worker_capture(epoch_ns)
    tel = telemetry.get()
    with tctx.activate(ctx):
        with tel.span("parallel.worker", category="parallel",
                      start_node=int(start)):
            perm = rcm_vectorized(_WORKER_MAT, start)
    return perm, tctx.collect_worker_report()


def _warmup_task(token: int) -> int:
    return token


def _chunk_task(
    payload: Sequence[Tuple[np.ndarray, np.ndarray, int]], kwargs: dict
) -> list:
    from repro.core.api import _reorder_rcm

    out = []
    for indptr, indices, n in payload:
        mat = CSRMatrix(indptr=indptr, indices=indices, data=None, n=n)
        out.append(_reorder_rcm(mat, **kwargs))
    return out


def _chunk_task_traced(
    payload: Sequence[Tuple[np.ndarray, np.ndarray, int]], kwargs: dict,
    ctx, epoch_ns: int,
):
    """Traced variant of :func:`_chunk_task`: ``(results, WorkerReport)``."""
    from repro.core.api import _reorder_rcm
    from repro.telemetry import context as tctx

    tctx.begin_worker_capture(epoch_ns)
    tel = telemetry.get()
    out = []
    with tctx.activate(ctx):
        with tel.span("parallel.worker", category="parallel",
                      n_matrices=len(payload)):
            for indptr, indices, n in payload:
                mat = CSRMatrix(indptr=indptr, indices=indices, data=None, n=n)
                out.append(_reorder_rcm(mat, **kwargs))
    return out, tctx.collect_worker_report()


def _merge_reports(tel, reports, *, parent_span_id, trace_id) -> None:
    """Fold worker reports into the parent, one stable lane per pid."""
    from repro.telemetry import context as tctx

    lanes: dict = {}
    for report in reports:
        lane = lanes.setdefault(report.pid, len(lanes))
        tctx.merge_worker_report(
            tel, report, parent_span_id=parent_span_id,
            lane=lane, trace_id=trace_id,
        )


def _warm_pool(pool: ProcessPoolExecutor, workers: int) -> None:
    """Spin up every worker process before real work is timed."""
    for fut in [pool.submit(_warmup_task, i) for i in range(workers)]:
        fut.result()


def record_fallback(reason: str, *, prefix: str = "parallel") -> None:
    """Bump the ``<prefix>.fallbacks`` counters for one degradation event.

    The shared convention across execution layers: a total under
    ``<prefix>.fallbacks`` plus one ``<prefix>.fallbacks.<reason>`` counter
    per cause.  The process-pool layer records under ``parallel``; the
    service layer reuses the same shape under ``service``.
    """
    tel = telemetry.get()
    if tel.enabled:
        tel.counter(f"{prefix}.fallbacks").add(1)
        tel.counter(f"{prefix}.fallbacks.{reason}").add(1)


# ----------------------------------------------------------------------
# per-component partitioning
# ----------------------------------------------------------------------
def rcm_components(
    mat: CSRMatrix,
    starts: Sequence[int],
    *,
    sizes: Optional[Sequence[int]] = None,
    config: Optional[ParallelConfig] = None,
) -> List[np.ndarray]:
    """RCM permutation block of each component, computed concurrently.

    ``starts[i]`` is the start node of component ``i``; ``sizes`` (when
    known) drives largest-first scheduling so the pool drains evenly.
    Blocks come back in input order and are bit-identical to running
    :func:`repro.core.vectorized.rcm_vectorized` per start in sequence.
    """
    from repro import backends

    cfg = config or ParallelConfig()
    workers = resolve_workers(cfg.n_workers)
    tel = telemetry.get()

    def in_process(reason: str) -> List[np.ndarray]:
        record_fallback(reason)
        target = backends.get(backends.in_process_fallback("parallel"))
        return [
            target.run_component(
                mat, int(s), total=total, n_workers=1, config=None, seed=0,
            )[0]
            for s, total in zip(
                starts, sizes if sizes is not None else [None] * len(starts)
            )
        ]

    if not starts:
        return []
    if not cfg.force_processes and (
        len(starts) == 1 or workers == 1 or mat.n < cfg.min_parallel_nodes
    ):
        return in_process("small-input")
    if not fork_available():
        return in_process("no-fork")

    # largest component first (LPT scheduling) so stragglers don't tail
    order = np.arange(len(starts))
    if sizes is not None:
        order = order[np.argsort(np.asarray(sizes))[::-1]]

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(starts)),
            mp_context=ctx,
            initializer=_init_matrix_worker,
            initargs=(mat.indptr, mat.indices, mat.n),
        ) as pool:
            if cfg.warmup:
                _warm_pool(pool, min(workers, len(starts)))
            traced = tel.enabled
            req_ctx = current_trace() if traced else None
            with tel.span(
                "parallel.components", category="parallel",
                n_tasks=len(starts), workers=workers,
            ) as sp:
                if traced:
                    futures = {
                        int(i): pool.submit(
                            _component_task_traced, int(starts[i]),
                            req_ctx, tel.tracer.epoch_ns,
                        )
                        for i in order
                    }
                    pairs = [futures[i].result() for i in range(len(starts))]
                    parts = [perm for perm, _ in pairs]
                    _merge_reports(
                        tel, [rep for _, rep in pairs],
                        parent_span_id=sp.span_id,
                        trace_id=req_ctx.trace_id if req_ctx else None,
                    )
                else:
                    futures = {
                        int(i): pool.submit(_component_task, int(starts[i]))
                        for i in order
                    }
                    parts = [futures[i].result() for i in range(len(starts))]
        if tel.enabled:
            tel.counter("parallel.tasks").add(len(starts))
        return parts
    except (BrokenProcessPool, OSError, RuntimeError):
        return in_process("pool-error")


# ----------------------------------------------------------------------
# chunked multi-matrix throughput
# ----------------------------------------------------------------------
def map_matrices(
    mats: Sequence[CSRMatrix],
    *,
    method: str = "vectorized",
    start="min-valence",
    symmetrize: bool = False,
    config: Optional[ParallelConfig] = None,
) -> list:
    """Reorder many matrices through worker processes, chunked.

    The CLI/bench throughput path: each chunk of matrices runs the full
    :func:`repro.core.api._reorder_rcm` pipeline in one worker, so per-task
    IPC overhead is amortized over ``chunk_size`` matrices.  Returns one
    :class:`~repro.core.api.ReorderResult` per input matrix, in order.
    """
    from repro.core.api import _reorder_rcm

    cfg = config or ParallelConfig()
    workers = resolve_workers(cfg.n_workers)
    tel = telemetry.get()
    kwargs = dict(method=method, start=start, symmetrize=symmetrize)

    def in_process(reason: str) -> list:
        record_fallback(reason)
        return [_reorder_rcm(m, **kwargs) for m in mats]

    if not mats:
        return []
    total_nodes = sum(m.n for m in mats)
    if not cfg.force_processes and (
        len(mats) == 1 or workers == 1 or total_nodes < cfg.min_parallel_nodes
    ):
        return in_process("small-input")
    if not fork_available():
        return in_process("no-fork")

    chunk = cfg.chunk_size or max(1, -(-len(mats) // (workers * 4)))
    payloads = [
        [(m.indptr, m.indices, m.n) for m in mats[i : i + chunk]]
        for i in range(0, len(mats), chunk)
    ]

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(payloads)), mp_context=ctx
        ) as pool:
            if cfg.warmup:
                _warm_pool(pool, min(workers, len(payloads)))
            traced = tel.enabled
            req_ctx = current_trace() if traced else None
            with tel.span(
                "parallel.map", category="parallel",
                n_matrices=len(mats), n_chunks=len(payloads), workers=workers,
            ) as sp:
                results: list = []
                if traced:
                    futures = [
                        pool.submit(_chunk_task_traced, p, kwargs,
                                    req_ctx, tel.tracer.epoch_ns)
                        for p in payloads
                    ]
                    reports = []
                    for fut in futures:
                        chunk_results, report = fut.result()
                        results.extend(chunk_results)
                        reports.append(report)
                    _merge_reports(
                        tel, reports, parent_span_id=sp.span_id,
                        trace_id=req_ctx.trace_id if req_ctx else None,
                    )
                else:
                    futures = [
                        pool.submit(_chunk_task, p, kwargs) for p in payloads
                    ]
                    for fut in futures:
                        results.extend(fut.result())
        if tel.enabled:
            tel.counter("parallel.matrices").add(len(mats))
            tel.counter("parallel.chunks").add(len(payloads))
        return results
    except (BrokenProcessPool, OSError, RuntimeError):
        return in_process("pool-error")
