"""Process-pool executor with shared-memory transport, pool reuse and
graceful fallback.

The pool is built on ``fork`` and is **persistent**: the first dispatch
creates and warms it, every later dispatch reuses it (counter
``parallel.pool.reused``), so process startup and warm-up are paid once
per executor lifetime instead of once per call.  Matrix payloads travel
through the zero-copy shared-memory transport (:mod:`repro.parallel.shm`):
the parent publishes ``indptr``/``indices`` into shared segments, workers
attach read-only views, and permutations come back through a shared result
arena — no CSR bytes ever cross the pipe on this path.

When ``fork`` is not available (e.g. Windows / some macOS configurations),
when shared memory is unusable or opted out (``REPRO_NO_SHM``), when the
pool fails to start, or when the input is too small to pay for dispatch,
every entry point silently executes the same code path in-process (or over
the legacy pickle transport) — the caller always gets the identical
result.  The in-process target comes from the backend registry's
degradation chain (:func:`repro.backends.in_process_fallback`), the same
declaration the service layer's fallback chain derives from.

Telemetry: spans ``parallel.components`` / ``parallel.map`` wrap the
dispatch (attribute ``transport`` says which path ran), and counters
``parallel.tasks``, ``parallel.chunks``, ``parallel.pool.reused`` and
``parallel.fallbacks`` record what actually ran where.  When telemetry is
enabled the pool switches to *traced* task functions: each worker resets
its forked-in telemetry, records spans/counters locally under the
request's :class:`~repro.telemetry.context.TraceContext`, and ships a
:class:`~repro.telemetry.context.WorkerReport` back with its result; the
parent merges every report under the dispatch span with a stable lane per
worker pid, so one request produces one coherent cross-process trace.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro import telemetry
from repro.parallel import shm
from repro.telemetry import profiler as _profiler
from repro.telemetry.spans import current_trace

__all__ = [
    "ParallelConfig",
    "fork_available",
    "rcm_components",
    "record_fallback",
    "map_matrices",
    "reset_pools",
    "resolve_workers",
]


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs of the process-parallel execution layer.

    ``n_workers=None`` sizes the pool to ``os.cpu_count()``.  Inputs with
    fewer than ``min_parallel_nodes`` total nodes (or a single task) run
    in-process: process startup costs milliseconds, which a small matrix
    never wins back.  ``force_processes`` overrides that heuristic (tests,
    benchmarks).
    """

    n_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    warmup: bool = True
    min_parallel_nodes: int = 2048
    force_processes: bool = False


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(n_workers: Optional[int]) -> int:
    """Effective pool size: requested count, capped at 1 minimum."""
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    return max(int(n_workers), 1)


# ----------------------------------------------------------------------
# persistent pool (one per worker count, warmed once, reused across calls)
# ----------------------------------------------------------------------
_POOLS: Dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _warmup_task(token: int) -> int:
    return token


def _warm_pool(pool: ProcessPoolExecutor, workers: int) -> None:
    """Spin up every worker process before real work is timed.

    Runs once per pool *lifetime* — :func:`_get_pool` warms a pool when it
    creates it and never again; reusing callers skip straight to submit.
    """
    for fut in [pool.submit(_warmup_task, i) for i in range(workers)]:
        fut.result()


def _get_pool(workers: int, *, warmup: bool = True) -> ProcessPoolExecutor:
    """The shared fork pool for ``workers``, created+warmed on first use.

    Reuse is the whole point: service batches and repeated facade calls
    hit an already-warm pool (``parallel.pool.reused`` counts the hits)
    instead of paying ``POOL_STARTUP_CYCLES`` per dispatch.
    """
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is not None:
            tel = telemetry.get()
            if tel.enabled:
                tel.counter("parallel.pool.reused").add(1)
            return pool
        import multiprocessing

        # fork after the resource tracker exists, so workers inherit it
        shm.ensure_tracker()
        ctx = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        if warmup:
            _warm_pool(pool, workers)
        _POOLS[workers] = pool
        return pool


def _discard_pool(workers: int) -> None:
    """Drop a broken pool so the next dispatch builds a fresh one."""
    with _POOLS_LOCK:
        pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def reset_pools() -> None:
    """Shut down every persistent pool (test hook + atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(reset_pools)


# ----------------------------------------------------------------------
# worker-side task functions — shared-memory transport
# ----------------------------------------------------------------------

#: sentinel standing in for a permutation that lives in the result arena;
#: the parent swaps the real block back in before anyone sees the result
_SHM_RESIDENT = np.zeros(0, dtype=np.int64)


def _component_task_shm(
    csr: shm.CSRHandle, arena: shm.ArenaHandle, start: int,
    offset: int, length: int,
) -> None:
    from repro.core.vectorized import rcm_vectorized

    mat = shm.attach_csr(csr)
    out = shm.attach_arena(arena)
    out[offset:offset + length] = rcm_vectorized(mat, int(start))
    return None


def _component_task_shm_traced(
    csr: shm.CSRHandle, arena: shm.ArenaHandle, start: int,
    offset: int, length: int, ctx, epoch_ns: int,
    prof_hz: Optional[float] = None,
):
    """Traced variant: returns the :class:`WorkerReport` only — the
    permutation already sits in the arena.

    The worker re-bases its (forked) telemetry on the parent's epoch,
    activates the request's trace context and wraps the kernel in a
    ``parallel.worker`` span, so the parent can merge a self-consistent
    sub-trace (see :mod:`repro.telemetry.context`).  ``prof_hz`` is the
    parent sampling profiler's rate (None = off): the worker runs its
    own sampler and takes one synchronous sample inside the span, so
    every task lands at least one attributed stack in the merged
    flamegraph no matter how short it ran.
    """
    from repro.core.vectorized import rcm_vectorized
    from repro.telemetry import context as tctx
    from repro.telemetry import profiler as _profiler

    tctx.begin_worker_capture(epoch_ns, profile_hz=prof_hz)
    tel = telemetry.get()
    mat = shm.attach_csr(csr)
    out = shm.attach_arena(arena)
    with tctx.activate(ctx):
        with tel.span("parallel.worker", category="parallel",
                      start_node=int(start)):
            out[offset:offset + length] = rcm_vectorized(mat, int(start))
            _profiler.sample_now()
    return tctx.collect_worker_report()


def _map_chunk_shm(
    items: Sequence[Tuple[shm.CSRHandle, int]],
    arena: shm.ArenaHandle, kwargs: dict,
) -> list:
    """Run the full pipeline per matrix; permutations go home via the
    arena, everything else (bandwidths, phases, stats) via the light
    perm-stripped result."""
    from repro.core.api import _reorder_rcm

    out = shm.attach_arena(arena)
    results = []
    for handle, offset in items:
        mat = shm.attach_csr(handle)
        res = _reorder_rcm(mat, **kwargs)
        out[offset:offset + handle.n] = res.permutation
        res.permutation = _SHM_RESIDENT
        results.append(res)
    return results


def _map_chunk_shm_traced(
    items: Sequence[Tuple[shm.CSRHandle, int]],
    arena: shm.ArenaHandle, kwargs: dict, ctx, epoch_ns: int,
    prof_hz: Optional[float] = None,
):
    """Traced variant of :func:`_map_chunk_shm`: ``(results, WorkerReport)``."""
    from repro.core.api import _reorder_rcm
    from repro.telemetry import context as tctx
    from repro.telemetry import profiler as _profiler

    tctx.begin_worker_capture(epoch_ns, profile_hz=prof_hz)
    tel = telemetry.get()
    out = shm.attach_arena(arena)
    results = []
    with tctx.activate(ctx):
        with tel.span("parallel.worker", category="parallel",
                      n_matrices=len(items)):
            for handle, offset in items:
                mat = shm.attach_csr(handle)
                res = _reorder_rcm(mat, **kwargs)
                out[offset:offset + handle.n] = res.permutation
                res.permutation = _SHM_RESIDENT
                results.append(res)
            _profiler.sample_now()
    return results, tctx.collect_worker_report()


# ----------------------------------------------------------------------
# worker-side task functions — legacy pickle transport (fallback path)
# ----------------------------------------------------------------------
_WORKER_MAT: Optional[CSRMatrix] = None


def _init_matrix_worker(indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
    global _WORKER_MAT
    _WORKER_MAT = CSRMatrix(indptr=indptr, indices=indices, data=None, n=n)


def _component_task(start: int) -> np.ndarray:
    from repro.core.vectorized import rcm_vectorized

    assert _WORKER_MAT is not None, "pool initializer did not run"
    return rcm_vectorized(_WORKER_MAT, start)


def _component_task_traced(
    start: int, ctx, epoch_ns: int, prof_hz: Optional[float] = None
):
    """Traced pickle-path variant: returns ``(permutation, WorkerReport)``."""
    from repro.core.vectorized import rcm_vectorized
    from repro.telemetry import context as tctx
    from repro.telemetry import profiler as _profiler

    assert _WORKER_MAT is not None, "pool initializer did not run"
    tctx.begin_worker_capture(epoch_ns, profile_hz=prof_hz)
    tel = telemetry.get()
    with tctx.activate(ctx):
        with tel.span("parallel.worker", category="parallel",
                      start_node=int(start)):
            perm = rcm_vectorized(_WORKER_MAT, start)
            _profiler.sample_now()
    return perm, tctx.collect_worker_report()


def _chunk_task(
    payload: Sequence[Tuple[np.ndarray, np.ndarray, int]], kwargs: dict
) -> list:
    from repro.core.api import _reorder_rcm

    out = []
    for indptr, indices, n in payload:
        mat = CSRMatrix(indptr=indptr, indices=indices, data=None, n=n)
        out.append(_reorder_rcm(mat, **kwargs))
    return out


def _chunk_task_traced(
    payload: Sequence[Tuple[np.ndarray, np.ndarray, int]], kwargs: dict,
    ctx, epoch_ns: int, prof_hz: Optional[float] = None,
):
    """Traced variant of :func:`_chunk_task`: ``(results, WorkerReport)``."""
    from repro.core.api import _reorder_rcm
    from repro.telemetry import context as tctx
    from repro.telemetry import profiler as _profiler

    tctx.begin_worker_capture(epoch_ns, profile_hz=prof_hz)
    tel = telemetry.get()
    out = []
    with tctx.activate(ctx):
        with tel.span("parallel.worker", category="parallel",
                      n_matrices=len(payload)):
            for indptr, indices, n in payload:
                mat = CSRMatrix(indptr=indptr, indices=indices, data=None, n=n)
                out.append(_reorder_rcm(mat, **kwargs))
            _profiler.sample_now()
    return out, tctx.collect_worker_report()


def _merge_reports(tel, reports, *, parent_span_id, trace_id) -> None:
    """Fold worker reports into the parent, one stable lane per pid."""
    from repro.telemetry import context as tctx

    lanes: dict = {}
    for report in reports:
        lane = lanes.setdefault(report.pid, len(lanes))
        tctx.merge_worker_report(
            tel, report, parent_span_id=parent_span_id,
            lane=lane, trace_id=trace_id,
        )


def record_fallback(reason: str, *, prefix: str = "parallel") -> None:
    """Bump the ``<prefix>.fallbacks`` counters for one degradation event.

    The shared convention across execution layers: a total under
    ``<prefix>.fallbacks`` plus one ``<prefix>.fallbacks.<reason>`` counter
    per cause.  The process-pool layer records under ``parallel``; the
    service layer reuses the same shape under ``service``.
    """
    tel = telemetry.get()
    if tel.enabled:
        tel.counter(f"{prefix}.fallbacks").add(1)
        tel.counter(f"{prefix}.fallbacks.{reason}").add(1)


# ----------------------------------------------------------------------
# per-component partitioning
# ----------------------------------------------------------------------
def rcm_components(
    mat: CSRMatrix,
    starts: Sequence[int],
    *,
    sizes: Optional[Sequence[int]] = None,
    config: Optional[ParallelConfig] = None,
) -> List[np.ndarray]:
    """RCM permutation block of each component, computed concurrently.

    ``starts[i]`` is the start node of component ``i``; ``sizes`` (when
    known) drives largest-first scheduling so the pool drains evenly.
    Blocks come back in input order and are bit-identical to running
    :func:`repro.core.vectorized.rcm_vectorized` per start in sequence.

    Transport: the shared-memory path (matrix published once, blocks
    written into a shared arena at offsets derived from ``sizes``) when
    :func:`repro.parallel.shm.shm_available` and ``sizes`` is given;
    otherwise the legacy pickle path (matrix shipped by the pool
    initializer, blocks pickled back).
    """
    from repro import backends

    cfg = config or ParallelConfig()
    workers = resolve_workers(cfg.n_workers)
    tel = telemetry.get()

    def in_process(reason: str) -> List[np.ndarray]:
        record_fallback(reason)
        target = backends.get(backends.in_process_fallback("parallel"))
        return [
            target.run_component(
                mat, int(s), total=total, n_workers=1, config=None, seed=0,
            )[0]
            for s, total in zip(
                starts, sizes if sizes is not None else [None] * len(starts)
            )
        ]

    if not starts:
        return []
    # an explicit method="parallel" request is honored even on few-core
    # hosts (cross-process traces depend on it); the auto cost model is
    # what steers commodity requests away from the pool
    if not cfg.force_processes and (
        len(starts) == 1 or workers == 1 or mat.n < cfg.min_parallel_nodes
    ):
        return in_process("small-input")
    if not fork_available():
        return in_process("no-fork")

    # largest component first (LPT scheduling) so stragglers don't tail
    order = np.arange(len(starts))
    if sizes is not None:
        order = order[np.argsort(np.asarray(sizes))[::-1]]

    if shm.shm_available() and sizes is not None:
        try:
            return _components_shm(
                mat, starts, sizes, order, cfg, workers, tel
            )
        except (BrokenProcessPool, OSError, RuntimeError):
            _discard_pool(workers)
            return in_process("pool-error")
    return _components_pickle(mat, starts, order, cfg, workers, tel, in_process)


def _components_shm(mat, starts, sizes, order, cfg, workers, tel):
    # pool first, segments second: freshly forked workers then never
    # inherit this dispatch's entries in the shm registry
    pool = _get_pool(workers, warmup=cfg.warmup)
    offsets = np.zeros(len(starts) + 1, dtype=np.int64)
    np.cumsum(np.asarray(sizes, dtype=np.int64), out=offsets[1:])
    with shm.ShmBatch() as batch:
        csr = batch.publish_csr(mat)
        arena = batch.result_arena(int(offsets[-1]))
        ah = arena.handle
        traced = tel.enabled
        req_ctx = current_trace() if traced else None
        with tel.span(
            "parallel.components", category="parallel",
            n_tasks=len(starts), workers=workers, transport="shm",
        ) as sp:
            if traced:
                futures = {
                    int(i): pool.submit(
                        _component_task_shm_traced, csr, ah,
                        int(starts[i]), int(offsets[i]), int(sizes[i]),
                        req_ctx, tel.tracer.epoch_ns, _profiler.active_hz(),
                    )
                    for i in order
                }
                reports = [futures[i].result() for i in range(len(starts))]
                _merge_reports(
                    tel, reports, parent_span_id=sp.span_id,
                    trace_id=req_ctx.trace_id if req_ctx else None,
                )
            else:
                futures = {
                    int(i): pool.submit(
                        _component_task_shm, csr, ah,
                        int(starts[i]), int(offsets[i]), int(sizes[i]),
                    )
                    for i in order
                }
                for i in range(len(starts)):
                    futures[i].result()
        parts = [
            arena.block(int(offsets[i]), int(sizes[i]))
            for i in range(len(starts))
        ]
    if tel.enabled:
        tel.counter("parallel.tasks").add(len(starts))
    return parts


def _components_pickle(mat, starts, order, cfg, workers, tel, in_process):
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(starts)),
            mp_context=ctx,
            initializer=_init_matrix_worker,
            initargs=(mat.indptr, mat.indices, mat.n),
        ) as pool:
            if cfg.warmup:
                _warm_pool(pool, min(workers, len(starts)))
            traced = tel.enabled
            req_ctx = current_trace() if traced else None
            with tel.span(
                "parallel.components", category="parallel",
                n_tasks=len(starts), workers=workers, transport="pickle",
            ) as sp:
                if traced:
                    futures = {
                        int(i): pool.submit(
                            _component_task_traced, int(starts[i]),
                            req_ctx, tel.tracer.epoch_ns,
                            _profiler.active_hz(),
                        )
                        for i in order
                    }
                    pairs = [futures[i].result() for i in range(len(starts))]
                    parts = [perm for perm, _ in pairs]
                    _merge_reports(
                        tel, [rep for _, rep in pairs],
                        parent_span_id=sp.span_id,
                        trace_id=req_ctx.trace_id if req_ctx else None,
                    )
                else:
                    futures = {
                        int(i): pool.submit(_component_task, int(starts[i]))
                        for i in order
                    }
                    parts = [futures[i].result() for i in range(len(starts))]
        if tel.enabled:
            tel.counter("parallel.tasks").add(len(starts))
        return parts
    except (BrokenProcessPool, OSError, RuntimeError):
        return in_process("pool-error")


# ----------------------------------------------------------------------
# chunked multi-matrix throughput
# ----------------------------------------------------------------------
def map_matrices(
    mats: Sequence[CSRMatrix],
    *,
    method: str = "vectorized",
    start="min-valence",
    symmetrize: bool = False,
    config: Optional[ParallelConfig] = None,
) -> list:
    """Reorder many matrices through worker processes, chunked.

    The batch throughput path (CLI benches and the service's batched
    admission): each chunk of matrices runs the full
    :func:`repro.core.api._reorder_rcm` pipeline in one worker, so per-task
    IPC overhead is amortized over ``chunk_size`` matrices.  Returns one
    :class:`~repro.core.api.ReorderResult` per input matrix, in order.

    Transport: with shared memory available the whole batch is packed into
    one segment, workers attach zero-copy and write permutations into a
    shared arena; results come home perm-stripped and are rehydrated from
    the arena.  Otherwise each chunk's CSR triples are pickled (legacy
    path).  Both paths run on the persistent warmed pool.
    """
    from repro.core.api import _prevalidate_batch, _reorder_rcm

    cfg = config or ParallelConfig()
    workers = resolve_workers(cfg.n_workers)
    tel = telemetry.get()
    kwargs = dict(method=method, start=start, symmetrize=symmetrize)

    def in_process(reason: str) -> list:
        record_fallback(reason)
        if len(mats) > 1:
            # batch-amortized validate phase: one vectorized pass over the
            # block-diagonal union replaces len(mats) per-matrix passes
            ms = [m.symmetrize() for m in mats] if symmetrize else list(mats)
            bws = _prevalidate_batch(ms)
            kw = dict(kwargs, symmetrize=False)
            return [
                _reorder_rcm(m, _initial_bw=int(b), **kw)
                for m, b in zip(ms, bws)
            ]
        return [_reorder_rcm(m, **kwargs) for m in mats]

    if not mats:
        return []
    total_nodes = sum(m.n for m in mats)
    # effective parallelism is capped by physical cores: a 4-worker pool on
    # a 1-core host only adds dispatch overhead to CPU-bound batch work
    effective = min(workers, os.cpu_count() or workers)
    if not cfg.force_processes and (
        len(mats) == 1 or effective == 1
        or total_nodes < cfg.min_parallel_nodes
    ):
        return in_process("small-input")
    if not fork_available():
        return in_process("no-fork")

    chunk = cfg.chunk_size or max(1, -(-len(mats) // (workers * 4)))
    try:
        if shm.shm_available():
            return _map_shm(mats, kwargs, chunk, cfg, workers, tel)
        return _map_pickle(mats, kwargs, chunk, cfg, workers, tel)
    except (BrokenProcessPool, OSError, RuntimeError):
        _discard_pool(workers)
        return in_process("pool-error")


def _map_shm(mats, kwargs, chunk, cfg, workers, tel):
    pool = _get_pool(workers, warmup=cfg.warmup)
    offsets = np.zeros(len(mats) + 1, dtype=np.int64)
    np.cumsum(np.asarray([m.n for m in mats], dtype=np.int64), out=offsets[1:])
    with shm.ShmBatch() as batch:
        handles = batch.publish_many(mats)
        arena = batch.result_arena(int(offsets[-1]))
        ah = arena.handle
        items = [(h, int(offsets[i])) for i, h in enumerate(handles)]
        chunks = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        traced = tel.enabled
        req_ctx = current_trace() if traced else None
        with tel.span(
            "parallel.map", category="parallel",
            n_matrices=len(mats), n_chunks=len(chunks), workers=workers,
            transport="shm",
        ) as sp:
            results: list = []
            if traced:
                futures = [
                    pool.submit(_map_chunk_shm_traced, c, ah, kwargs,
                                req_ctx, tel.tracer.epoch_ns,
                                _profiler.active_hz())
                    for c in chunks
                ]
                reports = []
                for fut in futures:
                    chunk_results, report = fut.result()
                    results.extend(chunk_results)
                    reports.append(report)
                _merge_reports(
                    tel, reports, parent_span_id=sp.span_id,
                    trace_id=req_ctx.trace_id if req_ctx else None,
                )
            else:
                futures = [
                    pool.submit(_map_chunk_shm, c, ah, kwargs)
                    for c in chunks
                ]
                for fut in futures:
                    results.extend(fut.result())
        # rehydrate: swap each arena block in for the stripped sentinel
        for i, res in enumerate(results):
            res.permutation = arena.block(
                int(offsets[i]), int(offsets[i + 1] - offsets[i])
            )
    if tel.enabled:
        tel.counter("parallel.matrices").add(len(mats))
        tel.counter("parallel.chunks").add(len(chunks))
    return results


def _map_pickle(mats, kwargs, chunk, cfg, workers, tel):
    payloads = [
        [(m.indptr, m.indices, m.n) for m in mats[i : i + chunk]]
        for i in range(0, len(mats), chunk)
    ]
    pool = _get_pool(workers, warmup=cfg.warmup)
    traced = tel.enabled
    req_ctx = current_trace() if traced else None
    with tel.span(
        "parallel.map", category="parallel",
        n_matrices=len(mats), n_chunks=len(payloads), workers=workers,
        transport="pickle",
    ) as sp:
        results: list = []
        if traced:
            futures = [
                pool.submit(_chunk_task_traced, p, kwargs,
                            req_ctx, tel.tracer.epoch_ns,
                            _profiler.active_hz())
                for p in payloads
            ]
            reports = []
            for fut in futures:
                chunk_results, report = fut.result()
                results.extend(chunk_results)
                reports.append(report)
            _merge_reports(
                tel, reports, parent_span_id=sp.span_id,
                trace_id=req_ctx.trace_id if req_ctx else None,
            )
        else:
            futures = [pool.submit(_chunk_task, p, kwargs) for p in payloads]
            for fut in futures:
                results.extend(fut.result())
    if tel.enabled:
        tel.counter("parallel.matrices").add(len(mats))
        tel.counter("parallel.chunks").add(len(payloads))
    return results
