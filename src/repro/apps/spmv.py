"""SpMV locality analysis: quantifying RCM's cache benefit.

``y = A @ x`` in CSR walks ``A`` contiguously but gathers ``x[j]`` at the
stored column positions — the access pattern the matrix bandwidth governs.
These helpers extract that gather stream, run it through a
:class:`~repro.apps.cachemodel.CacheModel`, and package before/after-RCM
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.bandwidth import bandwidth
from repro.apps.cachemodel import CacheModel, CacheStats

__all__ = ["spmv_gather_stream", "spmv_cache_stats", "locality_report", "LocalityReport"]


def spmv_gather_stream(mat: CSRMatrix) -> np.ndarray:
    """The x-vector element-index stream of one CSR SpMV (row-major order)."""
    return mat.indices


def spmv_cache_stats(
    mat: CSRMatrix, model: Optional[CacheModel] = None
) -> CacheStats:
    """Cache behaviour of the SpMV gather stream under ``model``."""
    model = model or CacheModel()
    return model.simulate(spmv_gather_stream(mat))


@dataclass(frozen=True)
class LocalityReport:
    """Before/after-reordering locality comparison."""

    bandwidth_before: int
    bandwidth_after: int
    misses_before: int
    misses_after: int
    compulsory: int
    accesses: int

    @property
    def miss_reduction(self) -> float:
        """Factor by which avoidable (non-compulsory) misses shrank."""
        avoidable_before = max(self.misses_before - self.compulsory, 1)
        avoidable_after = max(self.misses_after - self.compulsory, 1)
        return avoidable_before / avoidable_after

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"bandwidth {self.bandwidth_before} -> {self.bandwidth_after}, "
            f"misses {self.misses_before} -> {self.misses_after} "
            f"(x{self.miss_reduction:.1f} fewer avoidable; "
            f"{self.compulsory} compulsory)"
        )


def locality_report(
    mat: CSRMatrix,
    permutation: np.ndarray,
    model: Optional[CacheModel] = None,
) -> LocalityReport:
    """Compare SpMV cache behaviour before and after applying ``permutation``."""
    model = model or CacheModel()
    after = mat.permute_symmetric(permutation)
    before_stats = spmv_cache_stats(mat, model)
    after_stats = spmv_cache_stats(after, model)
    return LocalityReport(
        bandwidth_before=bandwidth(mat),
        bandwidth_after=bandwidth(after),
        misses_before=before_stats.misses,
        misses_after=after_stats.misses,
        compulsory=model.compulsory_misses(spmv_gather_stream(mat)),
        accesses=before_stats.accesses,
    )
