"""Downstream applications of reordering: cache modelling and SpMV analysis.

The paper's motivation chapter argues bandwidth reduction pays off twice —
less fill-in for direct solvers and better memory locality for iterative
kernels.  This subpackage provides the measurement tools the examples and
benchmarks use to quantify the second effect: a parametric cache simulator
over sparse-kernel access streams and an SpMV locality analyzer.
"""

from repro.apps.cachemodel import CacheModel, CacheStats
from repro.apps.spmv import (
    spmv_gather_stream,
    spmv_cache_stats,
    locality_report,
    LocalityReport,
)

__all__ = [
    "CacheModel",
    "CacheStats",
    "spmv_gather_stream",
    "spmv_cache_stats",
    "locality_report",
    "LocalityReport",
]
