"""Parametric set-associative cache simulator for access streams.

Models one cache level: ``sets × ways`` lines of ``line_bytes`` with LRU
replacement.  The input is a stream of *element indices* into an array of
``element_bytes``-sized entries (e.g. the x-vector gathers of an SpMV);
the output is hit/miss counts.

The simulator is deliberately simple — no prefetching, one level — because
its job is to *rank orderings*: RCM's benefit shows up as a large drop in
capacity/conflict misses on the gather stream, robust to model details.
Implementation is vectorized per direct-mapped way when ``ways == 1`` and
falls back to a compact LRU loop otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["CacheModel", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    accesses: int
    misses: int

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.misses}/{self.accesses} misses ({self.miss_rate:.1%})"


@dataclass(frozen=True)
class CacheModel:
    """One cache level.

    Defaults approximate a per-core L1d: 32 KiB, 8-way, 64-byte lines.
    """

    sets: int = 64
    ways: int = 8
    line_bytes: int = 64
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.sets < 1 or self.ways < 1:
            raise ValueError("sets and ways must be positive")
        if self.line_bytes % self.element_bytes:
            raise ValueError("line must hold whole elements")

    @property
    def capacity_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes

    @property
    def elements_per_line(self) -> int:
        return self.line_bytes // self.element_bytes

    # ------------------------------------------------------------------
    def simulate(self, stream: np.ndarray) -> CacheStats:
        """Run an element-index stream through the cache."""
        stream = np.asarray(stream, dtype=np.int64)
        if stream.size == 0:
            return CacheStats(0, 0)
        lines = stream // self.elements_per_line
        if self.ways == 1:
            return CacheStats(int(stream.size), self._direct_mapped(lines))
        return CacheStats(int(stream.size), self._lru(lines))

    def _direct_mapped(self, lines: np.ndarray) -> int:
        slots = lines % self.sets
        tags = np.full(self.sets, -1, dtype=np.int64)
        misses = 0
        for ln, sl in zip(lines.tolist(), slots.tolist()):
            if tags[sl] != ln:
                tags[sl] = ln
                misses += 1
        return misses

    def _lru(self, lines: np.ndarray) -> int:
        slots = lines % self.sets
        # per-set LRU as ordered lists (ways is small)
        cache = [[] for _ in range(self.sets)]
        misses = 0
        for ln, sl in zip(lines.tolist(), slots.tolist()):
            way = cache[sl]
            try:
                way.remove(ln)
            except ValueError:
                misses += 1
                if len(way) >= self.ways:
                    way.pop(0)
            way.append(ln)
        return misses

    # ------------------------------------------------------------------
    def compulsory_misses(self, stream: np.ndarray) -> int:
        """Lower bound: distinct lines touched (cold misses only)."""
        stream = np.asarray(stream, dtype=np.int64)
        if stream.size == 0:
            return 0
        return int(np.unique(stream // self.elements_per_line).size)
