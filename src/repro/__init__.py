"""repro — Speculative Parallel Reverse Cuthill-McKee Reordering.

A faithful, self-contained reproduction of Mlakar et al., *"Speculative
Parallel Reverse Cuthill-McKee Reordering on Multi- and Many-core
Architectures"* (IPDPS 2021): batch-based RCM with speculative discovery,
chained signals, overhang work aggregation and early termination, executing
on a deterministic simulated multicore CPU / many-core GPU (plus a
real-thread backend), together with the paper's baselines, test-set
analogues and the complete experiment harness — behind one unified entry
point, :func:`repro.reorder`, whose fast path is a level-synchronous NumPy
kernel with optional per-component process parallelism.  Batches go
through :func:`repro.reorder_many`: one amortized dispatch over the
zero-copy shared-memory transport and the persistent process pool.

Quickstart::

    import repro
    from repro.matrices import grid2d

    mat = grid2d(100, 100)
    result = repro.reorder(mat)          # algorithm="rcm", method="auto"
    reordered = mat.permute_symmetric(result.permutation)
    print(result.initial_bandwidth, "->", result.reordered_bandwidth)

    results = repro.reorder_many([mat1, mat2, mat3])   # one dispatch

Every intentional failure derives from :class:`repro.errors.ReproError`
(see :mod:`repro.errors` for the hierarchy).  The pre-facade entry points
(``reverse_cuthill_mckee``, ``orderings.api.order``) finished their
deprecation cycle in 1.2 and now raise
:class:`repro.errors.RemovedAPIError`; see ``docs/api.md`` for the
migration guide.
"""

from repro import backends, errors
from repro.sparse import CSRMatrix, coo_to_csr, bandwidth
from repro.core.api import reverse_cuthill_mckee, ReorderResult, METHODS
from repro.facade import reorder, reorder_many, ALGORITHMS
from repro.service import (
    AsyncReorderService,
    PermutationCache,
    ReorderService,
    ServiceConfig,
    ShardedCache,
    ShardedService,
)
from repro.core import (
    cuthill_mckee,
    rcm_serial,
    rcm_vectorized,
    BatchConfig,
    BatchResult,
    run_batch_rcm,
    run_batch_rcm_gpu,
)
from repro.machine.costmodel import CPUCostModel, GPUCostModel

__version__ = "1.2.0"

__all__ = [
    "backends",
    "errors",
    "CSRMatrix",
    "coo_to_csr",
    "bandwidth",
    "reorder",
    "reorder_many",
    "ALGORITHMS",
    "ReorderService",
    "ShardedService",
    "ShardedCache",
    "AsyncReorderService",
    "ServiceConfig",
    "PermutationCache",
    "reverse_cuthill_mckee",
    "ReorderResult",
    "METHODS",
    "cuthill_mckee",
    "rcm_serial",
    "rcm_vectorized",
    "BatchConfig",
    "BatchResult",
    "run_batch_rcm",
    "run_batch_rcm_gpu",
    "CPUCostModel",
    "GPUCostModel",
    "__version__",
]
