"""The execution-backend registry: one ``Backend`` object per RCM method.

Every RCM execution strategy — the paper's simulated machines, the real
OS-thread backend, the NumPy frontier kernel, the process pool — returns the
identical serial permutation (the paper's headline invariant).  That makes
*which* backend runs a pure quality-of-service decision, and this module
turns that decision into data: each method registers a :class:`Backend`
carrying its run callable plus capability metadata (kind, which options it
honors, whether it emits :class:`~repro.machine.stats.RunStats`, a
``cost_estimate`` hook).  Everything that used to hard-code method names —
the ``core/api.py`` dispatch chain, ``method="auto"`` resolution, the
service and process-pool degradation chains, the CLI ``choices``, the cache
key canonicalization, the ``docs/api.md`` table — derives from this registry
instead, so adding a ninth backend is one ``register()`` call.

Registration order is meaningful: it is the order methods are listed in
choices, error messages and docs, and the tie-break order of the
cost-model auto-selector.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import BackendUnavailableError
from repro.validation import choices_text

__all__ = [
    "KIND_SERIAL",
    "KIND_VECTORIZED",
    "KIND_SIMULATED",
    "KIND_OS_THREADS",
    "KIND_PROCESS",
    "KINDS",
    "Backend",
    "register",
    "unregister",
    "get",
    "is_registered",
    "names",
    "backends",
    "method_choices",
    "auto_estimates",
    "resolve_auto_method",
    "degradation_order",
    "in_process_fallback",
    "capability_rows",
    "capability_table",
]

#: execution substrate classes a backend can declare
KIND_SERIAL = "serial"
KIND_VECTORIZED = "vectorized"
KIND_SIMULATED = "simulated"
KIND_OS_THREADS = "os-threads"
KIND_PROCESS = "process"
KINDS = (
    KIND_SERIAL,
    KIND_VECTORIZED,
    KIND_SIMULATED,
    KIND_OS_THREADS,
    KIND_PROCESS,
)


@dataclass(frozen=True)
class Backend:
    """One registered RCM execution strategy.

    Exactly one of the two run callables is set:

    * ``run_component(mat, start, *, total, n_workers, config, seed)`` —
      orders the single component reachable from ``start`` and returns
      ``(permutation_block, RunStats | None)``; the pipeline calls it once
      per connected component.
    * ``run_matrix(mat, starts, *, sizes, n_workers, config, seed)`` —
      orders all components in one call (backends that schedule components
      themselves, e.g. the process pool) and returns the list of blocks in
      input order.

    The capability flags describe which request options the backend
    actually reads — the pipeline passes everything either way, but the
    flags drive the generated capability table, the degradation chains and
    cache-key documentation.  ``cost_estimate(n, nnz, n_components)``
    returns estimated cycles for the auto-selector; backends without one
    (``auto_candidate=False``) are never auto-picked.  ``setup_cycles``
    names the one-time dispatch setup portion *inside* that estimate (pool
    fork + warm-up for the process backend, zero for in-process backends):
    when a batch of ``k`` requests shares one dispatch, the setup is paid
    once, so :meth:`estimate` amortizes it to ``setup_cycles / k`` — which
    is how ``auto`` can pick differently for a 64-matrix batch than for a
    singleton.  ``fallback_rank`` orders the declarative degradation
    chain: backends with a rank are appended (ascending) to every chain;
    ``None`` means the backend never serves as a degradation target.
    """

    name: str
    kind: str
    summary: str
    run_component: Optional[Callable] = None
    run_matrix: Optional[Callable] = None
    honors_n_workers: bool = False
    honors_config: bool = False
    honors_seed: bool = False
    emits_stats: bool = False
    auto_candidate: bool = False
    fallback_rank: Optional[int] = None
    cost_estimate: Optional[Callable[[int, int, int], float]] = field(
        default=None, repr=False
    )
    setup_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"backend kind must be one of {choices_text(KINDS)}; "
                f"got {self.kind!r}"
            )
        if (self.run_component is None) == (self.run_matrix is None):
            raise ValueError(
                f"backend {self.name!r} must set exactly one of "
                "run_component / run_matrix"
            )
        if self.auto_candidate and self.cost_estimate is None:
            raise ValueError(
                f"auto candidate {self.name!r} needs a cost_estimate hook"
            )
        # which cost hooks opt into the component-shape term: accepting a
        # ``max_component`` keyword is the opt-in (detected once here, so
        # estimate() stays signature-agnostic per call)
        accepts = False
        if self.cost_estimate is not None:
            try:
                accepts = "max_component" in inspect.signature(
                    self.cost_estimate
                ).parameters
            except (TypeError, ValueError):  # pragma: no cover - C callables
                accepts = False
        object.__setattr__(self, "_accepts_max_component", accepts)

    def estimate(
        self, n: int, nnz: int, n_components: int = 1, batch: int = 1,
        max_component: Optional[int] = None,
    ) -> float:
        """Estimated cycles on an ``(n, nnz, n_components)`` pattern
        (``inf`` when the backend declares no cost model).

        ``batch`` is the number of same-shaped requests sharing one
        dispatch: the ``setup_cycles`` portion of the estimate is charged
        once per dispatch, so the per-request price becomes
        ``cost - setup_cycles + setup_cycles / batch``.

        ``max_component`` is the size of the largest connected component,
        when the caller knows it: component *shape* bounds the parallel
        speedup (a hub pattern splitting into one giant component plus
        pendant fragments parallelizes like a connected pattern, not like
        an even ``n_components``-way split).  Cost hooks opt in by
        accepting a ``max_component`` keyword; hooks that do not are
        called exactly as before.
        """
        if self.cost_estimate is None:
            return float("inf")
        if max_component is not None and getattr(
            self, "_accepts_max_component", False
        ):
            cost = float(self.cost_estimate(
                n, nnz, max(n_components, 1), max_component=max_component
            ))
        else:
            cost = float(self.cost_estimate(n, nnz, max(n_components, 1)))
        batch = max(int(batch), 1)
        if batch > 1 and self.setup_cycles:
            cost = cost - self.setup_cycles + self.setup_cycles / batch
        return cost

    def capabilities(self) -> dict:
        """JSON-serializable capability row (``repro backends --json``)."""
        return {
            "method": self.name,
            "kind": self.kind,
            "n_workers": self.honors_n_workers,
            "config": self.honors_config,
            "seed": self.honors_seed,
            "stats": self.emits_stats,
            "auto_candidate": self.auto_candidate,
            "fallback_rank": self.fallback_rank,
            "summary": self.summary,
        }


# insertion-ordered: registration order is presentation order everywhere
_REGISTRY: Dict[str, Backend] = {}


def register(backend: Backend, *, replace: bool = False) -> Backend:
    """Add a backend to the registry (the one-file ninth-backend hook).

    Raises ``ValueError`` on a duplicate name unless ``replace=True``.
    Returns the backend so modules can register at definition site.
    """
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister(name: str) -> Backend:
    """Remove and return a backend (tests; optional-backend teardown)."""
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise ValueError(f"backend {name!r} is not registered") from None


def is_registered(name: str) -> bool:
    """Whether a backend with this method name is registered."""
    return name in _REGISTRY


def get(name: str) -> Backend:
    """Look a backend up by method name.

    Unknown names raise the library's uniform choice error (same format as
    :func:`repro.validation.check_choice`), so registry lookup *is* the
    method validation.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendUnavailableError(
            f"method must be one of {choices_text(method_choices())}; "
            f"got {name!r}"
        ) from None


def names() -> Tuple[str, ...]:
    """Registered method names, in registration (= presentation) order."""
    return tuple(_REGISTRY)


def backends() -> Tuple[Backend, ...]:
    """Registered backends, in registration order."""
    return tuple(_REGISTRY.values())


def method_choices() -> Tuple[str, ...]:
    """What a ``method=`` argument may be: ``"auto"`` plus every backend."""
    return ("auto",) + names()


def auto_estimates(
    n: int, nnz: Optional[int] = None, n_components: int = 1,
    batch: int = 1, max_component: Optional[int] = None,
) -> Dict[str, float]:
    """Every auto candidate's cost estimate for a pattern, by method name.

    The full pricing table behind one ``auto`` resolution — what the
    flight recorder persists so ``repro telemetry calibrate`` can judge
    the pick against the measured wall time.  Insertion order is
    registration order (the tie-break order).  ``nnz=None`` assumes an
    average valence of 4 — the mesh-like prior of the paper's test set —
    for callers that only know the node count.  ``batch`` is the number of
    requests sharing one dispatch: each backend amortizes its
    ``setup_cycles`` across the batch (see :meth:`Backend.estimate`), so a
    batch of 64 can price the process pool below the in-process kernels
    where a singleton would not.  ``max_component`` (largest component
    size, when known) feeds the component-shape term of backends that
    opted in — see :meth:`Backend.estimate`.
    """
    if nnz is None:
        nnz = 4 * n
    estimates = {
        b.name: b.estimate(n, nnz, n_components, batch, max_component)
        for b in _REGISTRY.values() if b.auto_candidate
    }
    if not estimates:
        raise BackendUnavailableError(
            "no auto-candidate backends are registered"
        )
    return estimates


def resolve_auto_method(
    n: int, nnz: Optional[int] = None, n_components: int = 1,
    batch: int = 1, max_component: Optional[int] = None,
) -> str:
    """The concrete backend ``method="auto"`` selects for a pattern.

    Cost-model-driven: every ``auto_candidate`` backend prices the pattern
    through its ``cost_estimate(n, nnz, n_components)`` hook — amortizing
    its declared ``setup_cycles`` across ``batch`` co-dispatched requests,
    and feeding ``max_component`` (largest component size, when the caller
    knows it) to hooks that account for component shape — and the cheapest
    wins (ties break toward earlier registration, i.e. the serial
    reference — dict insertion order preserves it through ``min``).
    """
    estimates = auto_estimates(n, nnz, n_components, batch, max_component)
    return min(estimates, key=estimates.__getitem__)


def degradation_order(method: str) -> Tuple[str, ...]:
    """Methods tried in order when ``method`` fails environmentally.

    Declarative: the requested method first, then every backend that
    declares a ``fallback_rank``, ascending, deduplicated.  Both the
    service layer and the process-pool executor derive their chains from
    this one function — every backend returns the identical permutation,
    so degradation changes latency, never the answer.  ``method`` need not
    be registered (a future optional backend): the chain still leads to
    the registered targets.
    """
    chain: List[str] = [method]
    ranked = sorted(
        (b for b in _REGISTRY.values() if b.fallback_rank is not None),
        key=lambda b: b.fallback_rank,
    )
    for b in ranked:
        if b.name not in chain:
            chain.append(b.name)
    return tuple(chain)


def in_process_fallback(method: str = KIND_PROCESS) -> str:
    """First degradation target of ``method`` that runs in-process.

    The process-pool executor uses this when ``fork`` is unavailable or
    the pool breaks: the first ranked backend whose kind is not
    ``"process"`` (today: the vectorized kernel).
    """
    for name in degradation_order(method)[1:]:
        backend = _REGISTRY.get(name)
        if backend is not None and backend.kind != KIND_PROCESS:
            return name
    raise BackendUnavailableError(
        f"no in-process degradation target registered for {method!r}"
    )


def _mark(flag: bool) -> str:
    return "yes" if flag else "–"


def capability_rows() -> List[dict]:
    """Capability dicts for every backend, registration order."""
    return [b.capabilities() for b in _REGISTRY.values()]


def capability_table() -> str:
    """The backend capability table as Markdown.

    This exact text is what ``docs/api.md`` embeds (guarded by
    ``tests/test_doc_drift.py``); regenerate it with
    ``python -m repro backends --markdown``.
    """
    lines = [
        "| method | kind | `n_workers` | `config` | `seed` | stats | execution |",
        "|--------|------|:-----------:|:--------:|:------:|:-----:|-----------|",
    ]
    for b in _REGISTRY.values():
        lines.append(
            f"| `{b.name}` | {b.kind} | {_mark(b.honors_n_workers)} "
            f"| {_mark(b.honors_config)} | {_mark(b.honors_seed)} "
            f"| {_mark(b.emits_stats)} | {b.summary} |"
        )
    return "\n".join(lines)
