"""Registration of the built-in RCM execution backends.

One :func:`~repro.backends.base.register` call per method — the whole
definition of a backend (run adapter, capability flags, cost estimate)
lives here, so adding an eleventh method is a matter of appending one more
block to this file (or calling ``register()`` from the new backend's own
module).

Adapters normalize every kernel to one of two shapes:

* ``run_component(mat, start, *, total, n_workers, config, seed)`` →
  ``(permutation_block, RunStats | None)``
* ``run_matrix(mat, starts, *, sizes, n_workers, config, seed)`` →
  ``[permutation_block, ...]``

Heavyweight or optional dependencies (the process pool, the OS-thread
machine, the semiring kernel) are imported inside their adapters, exactly
as the old dispatch chain did, so ``import repro`` stays cheap.

Cost estimates price a pattern in the same simulated cycles the machine
models use (:mod:`repro.machine.costmodel`), with two Python-runtime terms
the pure machine models do not see: per-level NumPy dispatch overhead and
process-pool startup.  ``PY_LEVEL_DISPATCH_CYCLES`` is calibrated so the
serial/vectorized crossover for an average-valence-4 mesh pattern lands at
the measured ``n ≈ 2048`` (the old ``AUTO_VECTORIZED_MIN`` threshold this
cost model replaces).
"""

from __future__ import annotations

import math

from repro.backends.base import (
    KIND_OS_THREADS,
    KIND_PROCESS,
    KIND_SERIAL,
    KIND_SIMULATED,
    KIND_VECTORIZED,
    Backend,
    register,
)
from repro.core.batch import run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu
from repro.core.batches import BatchConfig
from repro.core.leveled import rcm_leveled
from repro.core.serial import rcm_serial
from repro.core.unordered import rcm_unordered
from repro.core.vectorized import rcm_vectorized
from repro.machine.costmodel import CPUCostModel, SERIAL_CPU, VECTORIZED_CPU

__all__ = [
    "PY_LEVEL_DISPATCH_CYCLES",
    "POOL_STARTUP_CYCLES",
    "POOL_NOMINAL_WORKERS",
]

#: Python/NumPy overhead per BFS level of the vectorized kernel, on top of
#: the machine model's ``level_overhead_cycles`` — calibrated to keep the
#: measured serial/vectorized crossover at n ≈ 2048 for avg-valence-4
#: patterns (the old ``AUTO_VECTORIZED_MIN``).
PY_LEVEL_DISPATCH_CYCLES = 3000.0

#: one-time cost of forking and warming the process pool (~10 ms at the
#: models' 4 GHz reference clock)
POOL_STARTUP_CYCLES = 4.0e7

#: pool size assumed when pricing method="parallel" (the facade default)
POOL_NOMINAL_WORKERS = 4


def _log2(x: float) -> float:
    return math.log2(x) if x > 2.0 else 1.0


def _serial_cost(n: int, nnz: int, n_components: int) -> float:
    # per-parent child sorts: nnz elements total, segments of avg valence
    avg_valence = nnz / max(n, 1)
    sort = nnz * SERIAL_CPU.cycles_per_sorted_element * _log2(avg_valence)
    return SERIAL_CPU.run(n, nnz, sort)


def _bfs_shape(n: int, nnz: int, n_components: int):
    """(levels, width) estimate: components traverse sequentially, each a
    mesh-like frontier of ``sqrt(component size)`` levels."""
    per_comp = n / n_components
    levels = n_components * max(math.sqrt(per_comp), 1.0)
    return levels, n / levels


def _vectorized_cost(n: int, nnz: int, n_components: int) -> float:
    levels, width = _bfs_shape(n, nnz, n_components)
    sort = n * VECTORIZED_CPU.sort_element_cycles * _log2(width)
    return (
        VECTORIZED_CPU.run(int(math.ceil(levels)), nnz, sort)
        + levels * PY_LEVEL_DISPATCH_CYCLES
    )


def _parallel_cost(
    n: int, nnz: int, n_components: int, max_component: int = None
) -> float:
    # components are the parallelism grain: speedup caps at the smaller of
    # the component count and the nominal pool size
    ways = float(max(min(n_components, POOL_NOMINAL_WORKERS), 1))
    if max_component is not None and max_component > 0:
        # LPT bound: the largest component cannot be split across workers,
        # so the speedup never exceeds n / max_component — a hub pattern
        # that is one giant component plus pendant fragments parallelizes
        # like a connected pattern, not like an even n_components-way split
        ways = max(min(ways, n / max_component), 1.0)
    return POOL_STARTUP_CYCLES + _vectorized_cost(n, nnz, n_components) / ways


# ---------------------------------------------------------------------------
# run adapters (all normalized to the two Backend callable shapes)
# ---------------------------------------------------------------------------

def _run_serial(mat, start, *, total, n_workers, config, seed):
    return rcm_serial(mat, start), None


def _run_vectorized(mat, start, *, total, n_workers, config, seed):
    return rcm_vectorized(mat, start), None


def _run_parallel(mat, starts, *, sizes, n_workers, config, seed):
    from repro.parallel import ParallelConfig, rcm_components

    return rcm_components(
        mat, starts, sizes=sizes, config=ParallelConfig(n_workers=n_workers)
    )


def _run_leveled(mat, start, *, total, n_workers, config, seed):
    return rcm_leveled(mat, start).permutation, None


def _run_unordered(mat, start, *, total, n_workers, config, seed):
    return rcm_unordered(mat, start).permutation, None


def _run_algebraic(mat, start, *, total, n_workers, config, seed):
    from repro.core.algebraic import rcm_algebraic

    return rcm_algebraic(mat, start).permutation, None


def _run_batch_basic(mat, start, *, total, n_workers, config, seed):
    # the basic machine (Alg. 4): Alg. 5's refinements forced off unless
    # the caller configured them explicitly
    cfg = config or BatchConfig(
        early_signaling=False, overhang=False, multibatch=1
    )
    res = run_batch_rcm(
        mat, start, model=CPUCostModel(), n_workers=n_workers,
        config=cfg, total=total, seed=seed,
    )
    return res.permutation, res.stats


def _run_batch_cpu(mat, start, *, total, n_workers, config, seed):
    res = run_batch_rcm(
        mat, start, model=CPUCostModel(), n_workers=n_workers,
        config=config, total=total, seed=seed,
    )
    return res.permutation, res.stats


def _run_batch_gpu(mat, start, *, total, n_workers, config, seed):
    res = run_batch_rcm_gpu(mat, start, total=total, seed=seed)
    return res.permutation, res.stats


def _run_threads(mat, start, *, total, n_workers, config, seed):
    from repro.core.threads import rcm_threads

    return rcm_threads(mat, start, n_threads=n_workers, total=total), None


# ---------------------------------------------------------------------------
# registrations — order here is presentation order everywhere
# ---------------------------------------------------------------------------

register(Backend(
    name="serial",
    kind=KIND_SERIAL,
    summary="Alg. 1 — the pure-Python single-threaded ground truth",
    run_component=_run_serial,
    auto_candidate=True,
    fallback_rank=1,
    cost_estimate=_serial_cost,
))

register(Backend(
    name="vectorized",
    kind=KIND_VECTORIZED,
    summary="level-synchronous NumPy frontier kernel",
    run_component=_run_vectorized,
    auto_candidate=True,
    fallback_rank=0,
    cost_estimate=_vectorized_cost,
))

register(Backend(
    name="parallel",
    kind=KIND_PROCESS,
    summary="per-component process pool over the vectorized kernel",
    run_matrix=_run_parallel,
    honors_n_workers=True,
    auto_candidate=True,
    cost_estimate=_parallel_cost,
    setup_cycles=POOL_STARTUP_CYCLES,
))

register(Backend(
    name="leveled",
    kind=KIND_SIMULATED,
    summary="Alg. 2 — level-synchronous simulated baseline",
    run_component=_run_leveled,
))

register(Backend(
    name="unordered",
    kind=KIND_SIMULATED,
    summary="Alg. 3 — BFS + per-level producer/consumer",
    run_component=_run_unordered,
))

register(Backend(
    name="algebraic",
    kind=KIND_VECTORIZED,
    summary="semiring-SpMV RCM",
    run_component=_run_algebraic,
))

register(Backend(
    name="batch-basic",
    kind=KIND_SIMULATED,
    summary="Alg. 4 on the simulated machine",
    run_component=_run_batch_basic,
    honors_n_workers=True,
    honors_config=True,
    honors_seed=True,
    emits_stats=True,
))

register(Backend(
    name="batch-cpu",
    kind=KIND_SIMULATED,
    summary="Alg. 5 on the simulated multicore CPU",
    run_component=_run_batch_cpu,
    honors_n_workers=True,
    honors_config=True,
    honors_seed=True,
    emits_stats=True,
))

register(Backend(
    name="batch-gpu",
    kind=KIND_SIMULATED,
    summary="Alg. 5 + Sec. V on the simulated GPU",
    run_component=_run_batch_gpu,
    honors_seed=True,
    emits_stats=True,
))

register(Backend(
    name="threads",
    kind=KIND_OS_THREADS,
    summary="Alg. 5 on real OS threads",
    run_component=_run_threads,
    honors_n_workers=True,
))
