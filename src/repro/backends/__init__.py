"""Execution-backend registry for RCM methods.

Importing this package registers the built-in backends; every
method-string surface in the library (dispatch, ``method="auto"``,
degradation chains, CLI choices, cache keys, docs) resolves through it.
See :mod:`repro.backends.base` for the model and
:mod:`repro.backends.builtin` for the built-in registrations.
"""

from repro.backends.base import (
    KINDS,
    KIND_OS_THREADS,
    KIND_PROCESS,
    KIND_SERIAL,
    KIND_SIMULATED,
    KIND_VECTORIZED,
    Backend,
    backends,
    capability_rows,
    capability_table,
    degradation_order,
    get,
    in_process_fallback,
    is_registered,
    auto_estimates,
    method_choices,
    names,
    register,
    resolve_auto_method,
    unregister,
)
from repro.backends import builtin as _builtin  # noqa: F401  (registers)

__all__ = [
    "KINDS",
    "KIND_SERIAL",
    "KIND_VECTORIZED",
    "KIND_SIMULATED",
    "KIND_OS_THREADS",
    "KIND_PROCESS",
    "Backend",
    "register",
    "unregister",
    "get",
    "is_registered",
    "names",
    "backends",
    "method_choices",
    "auto_estimates",
    "resolve_auto_method",
    "degradation_order",
    "in_process_fallback",
    "capability_rows",
    "capability_table",
]
