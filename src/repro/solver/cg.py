"""Conjugate gradients on CSR with operation accounting.

The iterative-solver side of the paper's motivation: orderings do not change
CG's convergence (the spectrum is permutation invariant) but every iteration
performs one SpMV whose x-gather locality the bandwidth governs.
:func:`conjugate_gradient` counts the SpMVs and exposes the gather stream so
:mod:`repro.apps.cachemodel` can price the two orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro import telemetry

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    converged: bool
    residuals: List[float] = field(default_factory=list)
    spmv_count: int = 0

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("inf")


def _spmv(mat: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """CSR SpMV without scipy (keeps the kernel inspectable)."""
    y = np.zeros(mat.n, dtype=np.float64)
    data = mat.data
    indptr, indices = mat.indptr, mat.indices
    # vectorized: per-entry products then segment sums
    prod = data * x[indices]
    np.add.at(y, np.repeat(np.arange(mat.n), np.diff(indptr)), prod)
    return y


def conjugate_gradient(
    mat: CSRMatrix,
    b: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
) -> CGResult:
    """Plain CG for SPD ``mat`` (values required).

    Convergence: ``||r|| <= tol * ||b||``.  ``max_iter`` defaults to ``2n``.
    """
    if mat.data is None:
        raise ValueError("conjugate gradients needs matrix values")
    n = mat.n
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},)")
    max_iter = max_iter if max_iter is not None else 2 * n

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    tel = telemetry.get()
    solve_span = tel.span("cg.solve", category="solver", n=n, nnz=mat.nnz)
    with solve_span:
        spmv_count = 0
        r = b - _spmv(mat, x)
        spmv_count += 1
        p = r.copy()
        rs = float(r @ r)
        bnorm = float(np.linalg.norm(b)) or 1.0
        residuals = [float(np.sqrt(rs)) / bnorm]

        it = 0
        while residuals[-1] > tol and it < max_iter:
            ap = _spmv(mat, p)
            spmv_count += 1
            denom = float(p @ ap)
            if denom <= 0:
                break  # not SPD (or numerical breakdown)
            alpha = rs / denom
            x += alpha * p
            r -= alpha * ap
            rs_new = float(r @ r)
            residuals.append(float(np.sqrt(rs_new)) / bnorm)
            p = r + (rs_new / rs) * p
            rs = rs_new
            it += 1
        solve_span.set(iterations=it, spmv=spmv_count,
                       converged=residuals[-1] <= tol)
    if tel.enabled:
        tel.counter("cg.iterations").add(it)
        tel.counter("cg.spmv").add(spmv_count)
        tel.histogram("cg.final_relative_residual").observe(residuals[-1])

    return CGResult(
        x=x,
        iterations=it,
        converged=residuals[-1] <= tol,
        residuals=residuals,
        spmv_count=spmv_count,
    )
