"""Direct and iterative solver substrates — why bandwidth reduction matters.

The paper's opening motivation: "Bandwidth reduction of sparse matrices is
used to reduce fill-in of linear solvers and to increase performance of
other sparse matrix operations, e.g., sparse matrix vector multiplication in
iterative solvers."  This subpackage implements both consumers so the
benefit is measurable inside the library:

* :mod:`repro.solver.envelope` — skyline (envelope) storage and an
  envelope-confined Cholesky factorization: its memory and flop cost are
  *exactly* the profile RCM minimizes, making the ordering→cost connection
  an equation rather than a claim.
* :mod:`repro.solver.cg` — conjugate gradients on CSR, with an operation
  counter whose SpMV gather stream feeds the cache model: orderings change
  iteration *speed*, not iteration *count*.
"""

from repro.solver.envelope import (
    SkylineMatrix,
    envelope_cholesky,
    solve_cholesky,
    cholesky_flops,
)
from repro.solver.cg import conjugate_gradient, CGResult

__all__ = [
    "SkylineMatrix",
    "envelope_cholesky",
    "solve_cholesky",
    "cholesky_flops",
    "conjugate_gradient",
    "CGResult",
]
