"""Skyline (envelope) storage and envelope-confined Cholesky.

A symmetric positive-definite matrix factorized in envelope form keeps all
fill inside the envelope: row ``i`` of the factor occupies exactly the
columns ``[first(i), i]``, where ``first(i)`` is the leftmost stored column
of row ``i`` in the input.  Storage and flop cost are therefore direct
functions of the profile — the quantity RCM minimizes — which makes the
effect of reordering on a direct solver *exactly computable* here:

    storage = profile(A) = Σ (i - first(i) + 1)
    flops  ≈ Σ (i - first(i))² / 2

(George & Liu, "Computer Solution of Large Sparse Positive Definite
Systems", the classical envelope method the paper's fill-in motivation
refers to.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["SkylineMatrix", "envelope_cholesky", "solve_cholesky", "cholesky_flops"]


@dataclass
class SkylineMatrix:
    """Lower-triangular skyline storage.

    Row ``i`` is the dense segment ``columns [first[i], i]`` stored in
    ``data[ptr[i] : ptr[i + 1]]`` (length ``i - first[i] + 1``, diagonal
    last).
    """

    n: int
    first: np.ndarray     # (n,) leftmost stored column per row
    ptr: np.ndarray       # (n+1,) row segment offsets into data
    data: np.ndarray      # concatenated row segments

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, mat: CSRMatrix) -> "SkylineMatrix":
        """Envelope of the lower triangle of a symmetric valued CSR matrix.

        Entries outside the lower triangle are ignored (symmetry assumed);
        zeros inside the envelope are stored explicitly — that is the point
        of the envelope method.
        """
        if mat.data is None:
            raise ValueError("skyline storage needs matrix values")
        n = mat.n
        first = np.arange(n, dtype=np.int64)
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(mat.indptr))
        lower = mat.indices <= row_of
        np.minimum.at(first, row_of[lower], mat.indices[lower])
        widths = np.arange(n, dtype=np.int64) - first + 1
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(widths, out=ptr[1:])
        data = np.zeros(int(ptr[-1]), dtype=np.float64)
        # scatter lower-triangle values into the segments
        rr = row_of[lower]
        cc = mat.indices[lower]
        data[ptr[rr] + (cc - first[rr])] = mat.data[lower]
        return cls(n=n, first=first, ptr=ptr, data=data)

    # ------------------------------------------------------------------
    def row(self, i: int) -> np.ndarray:
        """Dense segment of row ``i`` (columns ``first[i]..i``), a view."""
        return self.data[self.ptr[i] : self.ptr[i + 1]]

    def get(self, i: int, j: int) -> float:
        """Entry (i, j) with ``j <= i``; zero outside the envelope."""
        if j > i:
            raise IndexError("skyline stores the lower triangle only")
        if j < self.first[i]:
            return 0.0
        return float(self.data[self.ptr[i] + (j - self.first[i])])

    @property
    def storage(self) -> int:
        """Stored entries == profile of the matrix."""
        return int(self.data.size)

    def to_dense_lower(self) -> np.ndarray:
        """Materialize the stored lower triangle (tests/inspection)."""
        out = np.zeros((self.n, self.n))
        for i in range(self.n):
            out[i, self.first[i] : i + 1] = self.row(i)
        return out


def cholesky_flops(sky: SkylineMatrix) -> float:
    """Multiply-add count of envelope Cholesky: ``Σ w_i (w_i + 3) / 2``
    with ``w_i = i - first(i)`` (inner products over row overlaps)."""
    w = (np.arange(sky.n) - sky.first).astype(np.float64)
    return float((w * (w + 3.0) / 2.0).sum())


def envelope_cholesky(sky: SkylineMatrix, *, inplace: bool = False) -> SkylineMatrix:
    """Cholesky factor ``L`` (same envelope) of an SPD skyline matrix.

    Classical row-oriented skyline algorithm::

        L[i,j] = (A[i,j] - Σ_k L[i,k] L[j,k]) / L[j,j]   (k ≥ max(f_i, f_j))
        L[i,i] = sqrt(A[i,i] - Σ_k L[i,k]²)

    Raises ``np.linalg.LinAlgError`` when a pivot is not positive (the
    matrix is not SPD).
    """
    out = sky if inplace else SkylineMatrix(
        n=sky.n, first=sky.first.copy(), ptr=sky.ptr.copy(), data=sky.data.copy()
    )
    n = out.n
    first, ptr, data = out.first, out.ptr, out.data
    for i in range(n):
        fi = int(first[i])
        base_i = int(ptr[i])
        for j in range(fi, i):
            fj = int(first[j])
            lo = max(fi, fj)
            # overlap of row i's and row j's segments left of column j
            li = data[base_i + (lo - fi) : base_i + (j - fi)]
            lj = data[int(ptr[j]) + (lo - fj) : int(ptr[j]) + (j - fj)]
            s = float(li @ lj) if li.size else 0.0
            diag_j = data[int(ptr[j + 1]) - 1]
            data[base_i + (j - fi)] = (data[base_i + (j - fi)] - s) / diag_j
        seg = data[base_i : base_i + (i - fi)]
        pivot = data[int(ptr[i + 1]) - 1] - float(seg @ seg)
        if pivot <= 0.0:
            raise np.linalg.LinAlgError(
                f"non-positive pivot {pivot:.3e} at row {i}: matrix not SPD"
            )
        data[int(ptr[i + 1]) - 1] = np.sqrt(pivot)
    return out


def solve_cholesky(factor: SkylineMatrix, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the envelope Cholesky factor ``L``.

    Forward substitution runs row-wise over the envelope; the transposed
    back substitution sweeps column-wise, scattering each solved unknown
    into the rows of its column segment.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (factor.n,):
        raise ValueError(f"b must have shape ({factor.n},)")
    n, first, ptr, data = factor.n, factor.first, factor.ptr, factor.data

    # L y = b
    y = b.copy()
    for i in range(n):
        fi = int(first[i])
        seg = data[int(ptr[i]) : int(ptr[i + 1]) - 1]
        if seg.size:
            y[i] -= float(seg @ y[fi:i])
        y[i] /= data[int(ptr[i + 1]) - 1]

    # L^T x = y
    x = y.copy()
    for i in range(n - 1, -1, -1):
        fi = int(first[i])
        x[i] /= data[int(ptr[i + 1]) - 1]
        seg = data[int(ptr[i]) : int(ptr[i + 1]) - 1]
        if seg.size:
            x[fi:i] -= seg * x[i]
    return x
