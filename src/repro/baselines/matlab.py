"""MATLAB ``symrcm`` baseline timing model.

MATLAB bundles pseudo-peripheral node finding with the reordering (the paper
excludes it from Table I for that reason and compares in Fig. 4 instead).
Fig. 4 places MATLAB consistently behind CPU-RCM within the same decade;
we model it as serial RCM ×2.3 plus the serial node-finding rounds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.serial import serial_cycles
from repro.core.peripheral import PeripheralResult, peripheral_cycles_serial
from repro.machine.costmodel import SerialCostModel, SERIAL_CPU

__all__ = ["MATLAB_SLOWDOWN", "matlab_cycles"]

MATLAB_SLOWDOWN = 2.3


def matlab_cycles(
    mat: CSRMatrix,
    peripheral: PeripheralResult,
    order: Optional[np.ndarray] = None,
    *,
    start: Optional[int] = None,
    model: SerialCostModel = SERIAL_CPU,
) -> float:
    """Simulated cycles for MATLAB's symrcm including node finding."""
    core = MATLAB_SLOWDOWN * serial_cycles(mat, order, start=start, model=model)
    return core + peripheral_cycles_serial(peripheral, model)
