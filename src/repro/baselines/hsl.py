"""HSL MC60-style baseline timing model.

HSL's Fortran RCM is the reference previous work uses for speed-ups (the
paper's Fig. 2 normalizes everything to HSL).  The paper measures its own
serial CPU-RCM to be ≈5.8× faster than HSL on average, crediting better STL
sorting, newer compiler optimization and cache-friendly scratch usage — all
per-element effects, so a constant multiplier over the serial cost is the
faithful model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.serial import serial_cycles
from repro.machine.costmodel import SerialCostModel, SERIAL_CPU

__all__ = ["HSL_SLOWDOWN", "hsl_cycles"]

#: the paper's measured average CPU-RCM advantage over HSL
HSL_SLOWDOWN = 5.8


def hsl_cycles(
    mat: CSRMatrix,
    order: Optional[np.ndarray] = None,
    *,
    start: Optional[int] = None,
    model: SerialCostModel = SERIAL_CPU,
) -> float:
    """Simulated cycles an HSL-class Fortran implementation would take."""
    return HSL_SLOWDOWN * serial_cycles(mat, order, start=start, model=model)
