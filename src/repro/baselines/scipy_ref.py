"""SciPy cross-check: ``scipy.sparse.csgraph.reverse_cuthill_mckee``.

SciPy's RCM uses different tie-breaking (and a different start-node
heuristic), so permutations differ element-wise; reordering *quality*
(bandwidth) must land in the same ballpark, which the test-suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["scipy_rcm"]


def scipy_rcm(mat: CSRMatrix) -> np.ndarray:
    """SciPy's RCM permutation for the whole matrix (all components)."""
    from scipy.sparse.csgraph import reverse_cuthill_mckee as sp_rcm

    return np.asarray(sp_rcm(mat.to_scipy(), symmetric_mode=True), dtype=np.int64)
