"""Timing-model baselines the paper compares against.

The paper's external baselines are closed binaries (HSL MC60, MATLAB's
``symrcm``, NVIDIA cuSolver) or unavailable code (the original unordered RCM
of Karantasis et al.; Reorderlib was obtained privately).  Each is modelled
here as a documented cost transformation of our own measured/simulated
kernels, anchored to ratios the paper itself reports:

* **HSL** — the paper's CPU-RCM is "about 5.8× faster than HSL on average";
  we model HSL as serial RCM with a 5.8× cycle multiplier.
* **MATLAB** — Fig. 4 shows MATLAB consistently slower than CPU-RCM but in
  the same decade, with node finding bundled; factor ≈ 2.3 over serial plus
  the pseudo-peripheral cost.
* **cuSolver** — "completely CPU-based and single threaded", orders of
  magnitude slower (Fig. 4: gupta3 9216 ms vs 202 ms); factor ≈ 25 over
  serial plus node finding.
* **Reorderlib** — our own Alg. 3 implementation with the pessimistic
  speculative-BFS round count its public version exhibits.
* **transfer** — PCIe 3.0 x16 transfer model for the "move to host, reorder,
  move back" alternative that Fig. 4 quantifies.
"""

from repro.baselines.hsl import hsl_cycles
from repro.baselines.matlab import matlab_cycles
from repro.baselines.cusolver import cusolver_cycles
from repro.baselines.reorderlib import reorderlib_result, reorderlib_cycles
from repro.baselines.transfer import TransferModel, transfer_ms
from repro.baselines.scipy_ref import scipy_rcm

__all__ = [
    "hsl_cycles",
    "matlab_cycles",
    "cusolver_cycles",
    "reorderlib_result",
    "reorderlib_cycles",
    "TransferModel",
    "transfer_ms",
    "scipy_rcm",
]
