"""Reorderlib baseline: the unordered RCM of Rodrigues et al.

The paper evaluates Reorderlib's unordered variant ("it performed
significantly better" than its leveled one).  We reuse our Alg. 3
implementation with a pessimistic speculative-BFS round count — the public
implementation relaxes more, matching the paper's observation that
Reorderlib "always falls short of CPU-RCM".  Reorderlib failed on several
large matrices in the paper (blank Table I cells); we keep it runnable and
note the blanks in EXPERIMENTS.md instead.
"""

from __future__ import annotations

from repro.sparse.csr import CSRMatrix
from repro.core.unordered import UnorderedResult, rcm_unordered, unordered_cycles
from repro.machine.costmodel import CPUCostModel

__all__ = ["REORDERLIB_BFS_ROUNDS", "reorderlib_result", "reorderlib_cycles"]

REORDERLIB_BFS_ROUNDS = 5


def reorderlib_result(mat: CSRMatrix, start: int) -> UnorderedResult:
    """Run unordered RCM with Reorderlib's pessimistic BFS round count."""
    return rcm_unordered(mat, start, bfs_rounds=REORDERLIB_BFS_ROUNDS)


def reorderlib_cycles(
    result: UnorderedResult, n_workers: int, model: CPUCostModel = CPUCostModel()
) -> float:
    """Simulated cycles of the Reorderlib run at a worker count."""
    return unordered_cycles(result, model, n_workers)
