"""GPU<->CPU transfer-overhead model (Fig. 4's light-violet bars).

Reordering on the host requires moving the CSR arrays to the CPU and the
permuted matrix back over PCIe.  Fig. 4's conclusion — transfer only
amortizes for the smallest matrices, and only against our serial CPU-RCM —
is a bandwidth-arithmetic argument, reproduced here with a PCIe 3.0 x16
model (the paper's TITAN V platform).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.csr import CSRMatrix

__all__ = ["TransferModel", "transfer_ms"]


@dataclass(frozen=True)
class TransferModel:
    """Sustained host<->device copy performance."""

    bandwidth_gb_s: float = 12.0   # PCIe 3.0 x16 sustained
    latency_us: float = 12.0       # per-direction launch/setup
    index_bytes: int = 4
    value_bytes: int = 8

    def csr_bytes(self, mat: CSRMatrix, *, with_values: bool = True) -> int:
        """Payload size of the CSR arrays (indices + optional values)."""
        b = (mat.n + 1) * self.index_bytes + mat.nnz * self.index_bytes
        if with_values and mat.data is not None:
            b += mat.nnz * self.value_bytes
        return b

    def one_way_ms(self, n_bytes: int) -> float:
        """Single-direction copy time: latency plus bandwidth term."""
        return self.latency_us / 1e3 + n_bytes / (self.bandwidth_gb_s * 1e6)

    def round_trip_ms(self, mat: CSRMatrix, *, with_values: bool = True) -> float:
        """Device→host of the matrix plus host→device of the permuted one."""
        return 2.0 * self.one_way_ms(self.csr_bytes(mat, with_values=with_values))


def transfer_ms(mat: CSRMatrix, model: TransferModel = TransferModel()) -> float:
    """Round-trip transfer overhead in milliseconds for ``mat``."""
    return model.round_trip_ms(mat)
