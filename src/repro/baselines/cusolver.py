"""cuSolver ``csrsymrcm`` baseline timing model.

NVIDIA's cuSolver RCM "is completely CPU-based and single threaded" and, per
the paper's Fig. 4, runs orders of magnitude slower than every other CPU
implementation (gupta3: 9216 ms vs 202 ms for CPU-RCM+peripheral) — it also
bundles node finding.  We model it as serial RCM ×25 plus node finding ×3
(its BFS sweeps are similarly slow).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.serial import serial_cycles
from repro.core.peripheral import PeripheralResult, peripheral_cycles_serial
from repro.machine.costmodel import SerialCostModel, SERIAL_CPU

__all__ = ["CUSOLVER_SLOWDOWN", "cusolver_cycles"]

CUSOLVER_SLOWDOWN = 25.0


def cusolver_cycles(
    mat: CSRMatrix,
    peripheral: PeripheralResult,
    order: Optional[np.ndarray] = None,
    *,
    start: Optional[int] = None,
    model: SerialCostModel = SERIAL_CPU,
) -> float:
    """Simulated cycles for cuSolver's host RCM including node finding."""
    core = CUSOLVER_SLOWDOWN * serial_cycles(mat, order, start=start, model=model)
    return core + 3.0 * peripheral_cycles_serial(peripheral, model)
