"""Fig. 5: CPU-BATCH thread-scaling heatmaps.

(a) absolute speed-up of CPU-BATCH over CPU-RCM per matrix and thread count
    — parallelism pays off with input size/width, never for tiny inputs;
(b) the same data min/max-normalized per matrix — the "diagonal" pattern:
    the optimal thread count grows with the available parallelism, and
    over-parallelizing narrow matrices degrades performance.

Run: ``python -m repro.bench.fig5 [--quick] [--threads 1 2 4 ...]``
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.matrices.suite import TESTSET
from repro.matrices import get_matrix
from repro.core.serial import cuthill_mckee, serial_cycles
from repro.core.batch import run_batch_rcm
from repro.machine.costmodel import CPUCostModel, SERIAL_CPU
from repro.bench.runner import pick_start
from repro.bench.report import render_heatmap, write_csv

__all__ = ["scaling_matrix", "main", "DEFAULT_THREADS"]

DEFAULT_THREADS = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20, 24)


def scaling_matrix(
    names: Optional[Sequence[str]] = None,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
) -> Tuple[List[str], np.ndarray]:
    """Speed-up of CPU-BATCH over CPU-RCM: rows = matrices (NNZ-ascending),
    columns = thread counts."""
    names = list(names) if names else [e.name for e in TESTSET]
    model = CPUCostModel()
    grid = np.zeros((len(names), len(thread_counts)))
    for i, name in enumerate(names):
        mat = get_matrix(name)
        start, total = pick_start(mat)
        serial_ms = serial_cycles(mat, cuthill_mckee(mat, start)) / (
            SERIAL_CPU.clock_ghz * 1e6
        )
        for j, tc in enumerate(thread_counts):
            res = run_batch_rcm(mat, start, model=model, n_workers=tc, total=total)
            grid[i, j] = serial_ms / res.milliseconds
    return names, grid


def normalized(grid: np.ndarray) -> np.ndarray:
    """Per-row min/max normalization (Fig. 5b)."""
    lo = grid.min(axis=1, keepdims=True)
    hi = grid.max(axis=1, keepdims=True)
    span = np.where(hi > lo, hi - lo, 1.0)
    return (grid - lo) / span


def main(argv: Optional[Sequence[str]] = None) -> Tuple[List[str], np.ndarray]:
    """CLI entry point: print both scaling heatmaps."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--threads", nargs="*", type=int, default=None)
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)
    from repro.bench.table1 import QUICK_SET

    threads = tuple(args.threads) if args.threads else DEFAULT_THREADS
    names, grid = scaling_matrix(QUICK_SET if args.quick else None, threads)
    cols = [str(t) for t in threads]

    with_avg = np.vstack([grid, grid.mean(axis=0)])
    labels = names + ["AVERAGE"]
    print(render_heatmap(
        labels, cols, with_avg,
        title="Fig. 5a — CPU-BATCH speed-up over CPU-RCM (rows: NNZ-ascending)",
        cell_fmt="{:.1f}",
    ))
    print()
    print(render_heatmap(
        names, cols, normalized(grid),
        title="Fig. 5b — per-matrix normalized thread scaling (1.0 = best)",
        cell_fmt="{:.2f}",
    ))
    if args.csv:
        write_csv(args.csv, ["Name"] + cols, [[n] + list(r) for n, r in zip(names, grid)])
    return names, grid


if __name__ == "__main__":
    main()
