"""One-shot driver: regenerate the paper's complete evaluation into a report.

``python -m repro.bench.paper [--quick] [-o results/REPORT.md]`` runs Table I
and Figs. 2-6 plus the ablation, renders everything into a single Markdown
report with the shape-assertions checked inline, and saves the CSVs next to
it.  This is the "reproduce the paper" button.
"""

from __future__ import annotations

import argparse
import io
import time
from contextlib import redirect_stdout
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["main"]

SECTIONS = [
    ("Fig. 1 — batch lifecycle states (from a real run)", "repro.bench.fig1"),
    ("Table I — core RCM timings", "repro.bench.table1"),
    ("Fig. 2 — speed-up vs HSL", "repro.bench.fig2"),
    ("Fig. 3 — queue-slot fates (early termination)", "repro.bench.fig3"),
    ("Fig. 4 — overall runtime decomposition", "repro.bench.fig4"),
    ("Fig. 5 — thread-scaling heatmaps", "repro.bench.fig5"),
    ("Fig. 6 — per-stage cycle shares", "repro.bench.fig6"),
    ("Ablation — design choices", "repro.bench.ablation"),
]


def main(argv: Optional[Sequence[str]] = None) -> Path:
    """CLI entry point: regenerate the full evaluation into one report."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="6-matrix subset (minutes instead of ~quarter hour)")
    parser.add_argument("-o", "--output", default="benchmarks/results/REPORT.md")
    args = parser.parse_args(argv)

    import importlib

    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    chunks = [
        "# Regenerated evaluation\n",
        f"mode: {'quick subset' if args.quick else 'full test set'}; "
        "simulated milliseconds on the analogue test set — compare shapes "
        "with the paper via EXPERIMENTS.md.\n",
    ]
    t_all = time.time()
    for title, module_name in SECTIONS:
        mod = importlib.import_module(module_name)
        driver_args = []
        if args.quick and module_name not in (
            "repro.bench.fig1", "repro.bench.fig4", "repro.bench.ablation"
        ):
            driver_args.append("--quick")
        csv_path = out.parent / (module_name.rsplit(".", 1)[-1] + ".csv")
        if module_name not in ("repro.bench.fig5", "repro.bench.fig1"):
            driver_args += ["--csv", str(csv_path)]
        buf = io.StringIO()
        t0 = time.time()
        with redirect_stdout(buf):
            mod.main(driver_args)
        dt = time.time() - t0
        print(f"[paper] {title}: {dt:.1f}s")
        chunks.append(f"\n## {title}\n\n```\n{buf.getvalue().rstrip()}\n```\n")
    chunks.append(f"\n_total regeneration time: {time.time() - t_all:.1f}s_\n")
    out.write_text("".join(chunks))
    print(f"[paper] wrote {out}")
    return out


if __name__ == "__main__":
    main()
