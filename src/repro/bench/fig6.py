"""Fig. 6: relative cycles per CPU-BATCH stage vs thread count.

Averaged over the test set, the share of total cycles spent in Discover,
Sort, Rediscover, Signal, addNewBatches and Stall for each thread count,
plus the average total cycles per thread.  Expected shape (paper): Discover
dominates at low thread counts (≈88% at 2 threads — atomics); Rediscover is
tiny throughout (≈1.3%); Signal is negligible; Stall grows to ≈half the
cycles at 12 threads and ≈65% at 24.

Run: ``python -m repro.bench.fig6 [--quick]``
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.matrices.suite import TESTSET
from repro.matrices import get_matrix
from repro.core.batch import run_batch_rcm
from repro.machine.costmodel import CPUCostModel
from repro.machine.stats import Stage, STAGE_ORDER
from repro.bench.runner import pick_start
from repro.bench.report import render_table, write_csv

__all__ = ["stage_profile", "main", "DEFAULT_THREADS"]

DEFAULT_THREADS = (1, 2, 4, 8, 12, 16, 24)


def stage_profile(
    names: Optional[Sequence[str]] = None,
    thread_counts: Sequence[int] = DEFAULT_THREADS,
) -> List[dict]:
    """Per thread count: average stage shares over the test set and the
    average total cycles per thread."""
    names = list(names) if names else [e.name for e in TESTSET]
    model = CPUCostModel()
    rows = []
    for tc in thread_counts:
        shares = {st: [] for st in STAGE_ORDER}
        totals = []
        for name in names:
            mat = get_matrix(name)
            start, total = pick_start(mat)
            res = run_batch_rcm(mat, start, model=model, n_workers=tc, total=total)
            sh = res.stats.stage_shares()
            for st in STAGE_ORDER:
                shares[st].append(sh[st])
            totals.append(res.stats.total_cycles() / tc)
        rows.append({
            "threads": tc,
            **{st.value: float(np.mean(shares[st])) for st in STAGE_ORDER},
            "cycles_per_thread": float(np.mean(totals)),
        })
    return rows


def main(argv: Optional[Sequence[str]] = None) -> List[dict]:
    """CLI entry point: print the per-stage share table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--threads", nargs="*", type=int, default=None)
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)
    from repro.bench.table1 import QUICK_SET

    threads = tuple(args.threads) if args.threads else DEFAULT_THREADS
    rows = stage_profile(QUICK_SET if args.quick else None, threads)
    headers = ["threads"] + [st.value for st in STAGE_ORDER] + ["cycles/thread"]
    table = [
        [r["threads"]] + [f"{100*r[st.value]:.1f}%" for st in STAGE_ORDER]
        + [f"{r['cycles_per_thread']:.2e}"]
        for r in rows
    ]
    print(render_table(
        headers, table,
        title="Fig. 6 — relative cycles per stage (test-set average)",
    ))
    if args.csv:
        write_csv(
            args.csv, headers,
            [[r["threads"]] + [r[st.value] for st in STAGE_ORDER]
             + [r["cycles_per_thread"]] for r in rows],
        )
    return rows


if __name__ == "__main__":
    main()
