"""Fig. 4: overall runtime — core RCM + pseudo-peripheral finding + transfer.

For six matrices the paper stacks, per approach: the core RCM time, the
naive pseudo-peripheral node-finding time, and (for CPU-side approaches
applied to data living on the GPU) the PCIe transfer overhead.  Expected
shape: cuSolver is orders of magnitude slower; MATLAB trails CPU-RCM;
peripheral finding dwarfs the core RCM for the optimized versions; transfer
only ever amortizes for small matrices against CPU-RCM.

Run: ``python -m repro.bench.fig4``
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.matrices import get_matrix
from repro.core.serial import cuthill_mckee
from repro.core.peripheral import find_pseudo_peripheral, peripheral_cycles_serial
from repro.core.peripheral_parallel import find_pseudo_peripheral_parallel
from repro.machine.costmodel import SERIAL_CPU, GPUCostModel
from repro.baselines.matlab import matlab_cycles
from repro.baselines.cusolver import cusolver_cycles
from repro.baselines.transfer import transfer_ms
from repro.bench.runner import bench_matrix, pick_start
from repro.bench.report import render_table, write_csv

__all__ = ["FIG4_MATRICES", "StackedTiming", "collect_overall", "main"]

FIG4_MATRICES = [
    "gupta3", "CurlCurl_3", "bundle_adj", "Emilia_923", "audikw_1", "nlpkkt120",
]

#: approaches in the figure's bar order
FIG4_APPROACHES = [
    "Reorderlib", "cuSolver", "MATLAB", "CPU-RCM",
    "CPU-BATCH-BASIC", "CPU-BATCH", "GPU-RCM", "GPU-BATCH",
]



@dataclass
class StackedTiming:
    approach: str
    core_ms: float
    peripheral_ms: float
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        return self.core_ms + self.peripheral_ms + self.transfer_ms


def collect_overall(name: str) -> List[StackedTiming]:
    """Stacked core/peripheral/transfer timings for one matrix."""
    mat = get_matrix(name)
    bench = bench_matrix(name)
    start, _total = pick_start(mat)
    peri = find_pseudo_peripheral(mat, start)
    cm = cuthill_mckee(mat, start)
    clock = SERIAL_CPU.clock_ghz * 1e6

    peri_cpu_ms = peripheral_cycles_serial(peri, SERIAL_CPU) / clock
    xfer = transfer_ms(mat)
    gpu_core = bench.ms("GPU-BATCH")
    # GPU node finding: the batch framework as a parallel BFS (Sec. VII)
    gpu_model = GPUCostModel()
    peri_gpu_ms = find_pseudo_peripheral_parallel(
        mat, start, model=gpu_model, n_workers=gpu_model.max_workers
    ).milliseconds

    out: List[StackedTiming] = []
    for approach in FIG4_APPROACHES:
        if approach == "cuSolver":
            # bundles node finding; runs on the host -> pays transfer
            core = cusolver_cycles(mat, peri, cm) / clock
            out.append(StackedTiming(approach, core, 0.0, xfer))
        elif approach == "MATLAB":
            core = matlab_cycles(mat, peri, cm) / clock
            out.append(StackedTiming(approach, core, 0.0, xfer))
        elif approach in ("Reorderlib", "CPU-RCM", "CPU-BATCH-BASIC", "CPU-BATCH"):
            out.append(
                StackedTiming(approach, bench.ms(approach), peri_cpu_ms, xfer)
            )
        elif approach == "GPU-RCM":
            out.append(StackedTiming(approach, bench.ms(approach), peri_gpu_ms, 0.0))
        elif approach == "GPU-BATCH":
            out.append(StackedTiming(approach, gpu_core, peri_gpu_ms, 0.0))
    return out


def main(argv: Optional[Sequence[str]] = None) -> Dict[str, List[StackedTiming]]:
    """CLI entry point: print the overall-runtime decomposition table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", default=None)
    parser.add_argument("--matrices", nargs="*", default=None)
    args = parser.parse_args(argv)

    results: Dict[str, List[StackedTiming]] = {}
    rows = []
    for name in args.matrices or FIG4_MATRICES:
        stacked = collect_overall(name)
        results[name] = stacked
        for s in stacked:
            rows.append([name, s.approach, s.core_ms, s.peripheral_ms, s.transfer_ms, s.total_ms])
    headers = ["Matrix", "Approach", "core ms", "peripheral ms", "transfer ms", "total ms"]
    print(render_table(
        headers, rows,
        title="Fig. 4 — overall runtime decomposition (simulated ms)",
        float_fmt="{:.3f}",
    ))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return results


if __name__ == "__main__":
    main()
