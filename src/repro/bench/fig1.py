"""Fig. 1: the batch state machine, rendered from a real execution.

The paper's Fig. 1 is a schematic: batches live in one of four states —
*speculative discovery*, *discovery* (confirmed), *output*, *completed* —
with many batches, possibly from multiple BFS levels, concurrently active.
This driver regenerates that picture from an actual simulated run: per
queue slot, the time spent in each lifecycle phase, plus the concurrency
profile (how many batches were simultaneously in flight).

Run: ``python -m repro.bench.fig1 [--matrix NAME] [--workers N]``
"""

from __future__ import annotations

import argparse
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.matrices import get_matrix
from repro.bench.runner import pick_start
from repro.core.state import make_state
from repro.core.batch import worker_loop
from repro.core.batches import BatchConfig
from repro.machine.engine import Engine
from repro.machine.costmodel import CPUCostModel

__all__ = ["batch_state_timeline", "render_state_chart", "main"]

PHASES = ["speculative discovery", "discovery", "output", "completed"]
_GLYPH = {"speculative discovery": "s", "discovery": "D", "output": "O"}


def batch_state_timeline(
    name: str = "benzene",
    *,
    n_workers: int = 6,
    config: Optional[BatchConfig] = None,
) -> Tuple[Dict[int, List[Tuple[float, str]]], float]:
    """Run one matrix and return, per queue slot, its phase transitions
    ``[(time, phase), ...]`` and the makespan."""
    mat = get_matrix(name)
    start, total = pick_start(mat)
    state = make_state(mat, start, n_workers=n_workers, total=total)
    state.phase_log = []
    model = CPUCostModel()
    engine = Engine(n_workers, state.stats)
    engine.run([
        worker_loop(state, config or BatchConfig(), model, engine)
        for _ in range(n_workers)
    ])
    timeline: Dict[int, List[Tuple[float, str]]] = defaultdict(list)
    for t, slot, phase in state.phase_log:
        timeline[slot].append((t, phase))
    return dict(timeline), state.stats.makespan


def render_state_chart(
    timeline: Dict[int, List[Tuple[float, str]]],
    makespan: float,
    *,
    width: int = 90,
    max_slots: int = 40,
) -> str:
    """One lane per batch: which Fig.-1 state it occupied when."""
    lines = [
        "Fig. 1 — batch lifecycle states over time "
        "(s=speculative discovery, D=discovery, O=output, blank=done/not started)"
    ]
    scale = makespan / width if makespan else 1.0
    shown = sorted(timeline)[:max_slots]
    for slot in shown:
        events = sorted(timeline[slot])
        row = [" "] * width
        for (t0, phase), nxt in zip(events, events[1:] + [(makespan, "end")]):
            if phase == "completed":
                continue
            c0 = min(int(t0 / scale), width - 1)
            c1 = min(int(nxt[0] / scale), width - 1)
            for c in range(c0, max(c1, c0 + 1)):
                row[c] = _GLYPH.get(phase, "?")
        lines.append(f"batch {slot:>4d} |{''.join(row)}|")
    if len(timeline) > max_slots:
        lines.append(f"... ({len(timeline) - max_slots} more batches)")
    # concurrency profile
    starts = sorted(t for ev in timeline.values() for t, p in ev
                    if p == "speculative discovery")
    ends = sorted(t for ev in timeline.values() for t, p in ev
                  if p == "completed")
    peak, live, si, ei = 0, 0, 0, 0
    while si < len(starts):
        if ei < len(ends) and ends[ei] <= starts[si]:
            live -= 1
            ei += 1
        else:
            live += 1
            si += 1
            peak = max(peak, live)
    lines.append(f"\npeak concurrently active batches: {peak} "
                 f"(the paper's point: batches from multiple levels overlap)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> str:
    """CLI entry point: render the measured Fig. 1 state chart."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--matrix", default="benzene")
    parser.add_argument("--workers", type=int, default=6)
    parser.add_argument("--width", type=int, default=90)
    parser.add_argument("--csv", default=None, help="(unused; uniform driver API)")
    args = parser.parse_args(argv)
    timeline, makespan = batch_state_timeline(
        args.matrix, n_workers=args.workers
    )
    out = render_state_chart(timeline, makespan, width=args.width)
    print(out)
    return out


if __name__ == "__main__":
    main()
