"""Experiment harness regenerating every table and figure of the paper.

Each ``figN``/``table1`` module is runnable (``python -m repro.bench.table1``)
and is also driven by the pytest-benchmark suites under ``benchmarks/``.
Results are simulated cycles converted to milliseconds; EXPERIMENTS.md
compares *shapes* against the paper, never absolute numbers.
"""

from repro.bench.runner import (
    APPROACHES,
    ApproachTiming,
    MatrixBench,
    bench_matrix,
    THREAD_COUNTS,
)

__all__ = [
    "APPROACHES",
    "ApproachTiming",
    "MatrixBench",
    "bench_matrix",
    "THREAD_COUNTS",
]
