"""Shared plumbing: run every approach on one test-set matrix.

``bench_matrix`` reproduces one Table I row: per-matrix statistics plus the
best core-RCM timing (over a thread-count sweep) of each approach.  All
parallel timings come from the simulated machine; all approaches are
verified to return the serial ground-truth permutation as they run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels, front_statistics, FrontStats
from repro.sparse.bandwidth import bandwidth, bandwidth_after
from repro.matrices.suite import TESTSET, SuiteEntry, get_matrix
from repro.core.serial import cuthill_mckee, serial_cycles
from repro.core.leveled import rcm_leveled, leveled_cycles
from repro.core.batch import run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu
from repro.core.batches import BatchConfig
from repro.machine.costmodel import CPUCostModel, GPUCostModel, SERIAL_CPU
from repro.machine.stats import RunStats
from repro.baselines.hsl import hsl_cycles
from repro.baselines.reorderlib import reorderlib_result, reorderlib_cycles

__all__ = [
    "APPROACHES",
    "THREAD_COUNTS",
    "ApproachTiming",
    "MatrixBench",
    "bench_matrix",
    "clear_cache",
]

#: Table I's approach columns, in the paper's order
APPROACHES = (
    "HSL",
    "Reorderlib",
    "CPU-RCM",
    "CPU-BATCH-BASIC",
    "CPU-BATCH",
    "GPU-RCM",
    "GPU-BATCH",
)

#: default sweep (the paper sweeps 1-24; this subset brackets every optimum)
THREAD_COUNTS = (1, 2, 4, 8, 12, 16, 24)

CPU_MODEL = CPUCostModel()
GPU_MODEL = GPUCostModel()


@dataclass
class ApproachTiming:
    name: str
    milliseconds: float
    threads: int = 1
    stats: Optional[RunStats] = None


@dataclass
class MatrixBench:
    """One Table I row, measured."""

    entry: SuiteEntry
    n: int
    nnz: int
    max_valence: int
    front: FrontStats
    start: int
    init_bw: int
    reord_bw: int
    timings: Dict[str, ApproachTiming] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.entry.name

    def ms(self, approach: str) -> float:
        """Best simulated milliseconds of one approach on this matrix."""
        return self.timings[approach].milliseconds

    def speedup_vs(self, approach: str, reference: str = "HSL") -> float:
        """Speed-up factor of ``approach`` relative to ``reference``."""
        return self.ms(reference) / self.ms(approach)


def pick_start(mat: CSRMatrix) -> Tuple[int, int]:
    """Benchmark start node: minimum-valence node of the largest component.

    Returns ``(start, component_size)``.  Table I times the *core* RCM only,
    so the start node is fixed deterministically per matrix.
    """
    n = mat.n
    valence = np.diff(mat.indptr)
    seen = np.zeros(n, dtype=bool)
    best_members: Optional[np.ndarray] = None
    for seed in range(n):
        if seen[seed]:
            continue
        levels = bfs_levels(mat, seed)
        members = np.flatnonzero(levels >= 0)
        seen[members] = True
        if best_members is None or members.size > best_members.size:
            best_members = members
    assert best_members is not None
    start = int(best_members[np.argmin(valence[best_members])])
    return start, int(best_members.size)


_CACHE: Dict[Tuple[str, Tuple[int, ...]], MatrixBench] = {}


def clear_cache() -> None:
    """Drop memoized bench results (tests / recalibration)."""
    _CACHE.clear()


def bench_matrix(
    name: str,
    *,
    thread_counts: Sequence[int] = THREAD_COUNTS,
    approaches: Sequence[str] = APPROACHES,
    verify: bool = True,
) -> MatrixBench:
    """Measure one test-set matrix across approaches (memoized)."""
    key = (name, tuple(thread_counts))
    if key in _CACHE and set(approaches) <= set(_CACHE[key].timings):
        return _CACHE[key]

    entry = next(e for e in TESTSET if e.name == name)
    mat = get_matrix(name)
    start, total = pick_start(mat)
    cm = cuthill_mckee(mat, start)
    rcm = cm[::-1]
    # bandwidth over the full matrix; other components keep identity order
    full_perm = np.concatenate(
        [rcm, np.setdiff1d(np.arange(mat.n, dtype=np.int64), rcm, assume_unique=False)]
    )
    bench = MatrixBench(
        entry=entry,
        n=mat.n,
        nnz=mat.nnz,
        max_valence=int(np.diff(mat.indptr).max()) if mat.n else 0,
        front=front_statistics(mat, start),
        start=start,
        init_bw=bandwidth(mat),
        reord_bw=bandwidth_after(mat, full_perm),
    )

    def check(perm: np.ndarray, label: str) -> None:
        if verify and not np.array_equal(perm, rcm):
            raise AssertionError(f"{label} diverged from serial RCM on {name}")

    for approach in approaches:
        if approach in bench.timings:
            continue
        if approach == "CPU-RCM":
            cyc = serial_cycles(mat, cm)
            bench.timings[approach] = ApproachTiming(
                approach, cyc / (SERIAL_CPU.clock_ghz * 1e6), 1
            )
        elif approach == "HSL":
            cyc = hsl_cycles(mat, cm)
            bench.timings[approach] = ApproachTiming(
                approach, cyc / (SERIAL_CPU.clock_ghz * 1e6), 1
            )
        elif approach == "Reorderlib":
            res = reorderlib_result(mat, start)
            check(res.permutation, approach)
            best = min(
                (
                    (reorderlib_cycles(res, tc) / (CPU_MODEL.clock_ghz * 1e6), tc)
                    for tc in thread_counts
                ),
            )
            bench.timings[approach] = ApproachTiming(approach, best[0], best[1])
        elif approach in ("CPU-BATCH", "CPU-BATCH-BASIC"):
            basic = approach == "CPU-BATCH-BASIC"
            cfg = (
                BatchConfig(early_signaling=False, overhang=False, multibatch=1)
                if basic
                else BatchConfig()
            )
            best_ms, best_tc, best_stats = np.inf, 1, None
            for tc in thread_counts:
                res = run_batch_rcm(
                    mat, start, model=CPU_MODEL, n_workers=tc, config=cfg, total=total
                )
                check(res.permutation, approach)
                if res.milliseconds < best_ms:
                    best_ms, best_tc, best_stats = res.milliseconds, tc, res.stats
            bench.timings[approach] = ApproachTiming(
                approach, best_ms, best_tc, best_stats
            )
        elif approach == "GPU-RCM":
            res = rcm_leveled(mat, start)
            check(res.permutation, approach)
            cyc = leveled_cycles(res, GPU_MODEL, GPU_MODEL.max_workers)
            bench.timings[approach] = ApproachTiming(
                approach, cyc / (GPU_MODEL.clock_ghz * 1e6), GPU_MODEL.max_workers
            )
        elif approach == "GPU-BATCH":
            res = run_batch_rcm_gpu(mat, start, total=total)
            check(res.permutation, approach)
            bench.timings[approach] = ApproachTiming(
                approach, res.milliseconds, res.n_workers, res.stats
            )
        else:
            raise ValueError(f"unknown approach {approach!r}")

    _CACHE[key] = bench
    return bench
