"""ASCII rendering and CSV export for the experiment harness."""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["render_table", "render_heatmap", "write_csv", "log_bar"]

PathLike = Union[str, Path]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Fixed-width ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        out = []
        for cell in row:
            if isinstance(cell, float):
                out.append("—" if math.isnan(cell) else float_fmt.format(cell))
            elif cell is None:
                out.append("—")
            else:
                out.append(str(cell))
        rendered.append(out)
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def render_heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values,  # 2-D array-like of floats
    *,
    title: str = "",
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    cell_fmt: str = "{:.1f}",
) -> str:
    """Numeric heatmap with a shade gutter (terminal-friendly Fig. 5)."""
    import numpy as np

    arr = np.asarray(values, dtype=np.float64)
    lo = vmin if vmin is not None else float(np.nanmin(arr))
    hi = vmax if vmax is not None else float(np.nanmax(arr))
    span = hi - lo if hi > lo else 1.0
    label_w = max((len(r) for r in row_labels), default=0)
    cells = [[cell_fmt.format(v) for v in row] for row in arr]
    col_w = max(
        max((len(c) for row in cells for c in row), default=1),
        max((len(c) for c in col_labels), default=1),
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(" " * label_w + " " + " ".join(c.rjust(col_w) for c in col_labels))
    for label, row_vals, row_cells in zip(row_labels, arr, cells):
        shade = "".join(
            _SHADES[min(int((v - lo) / span * (len(_SHADES) - 1)), len(_SHADES) - 1)]
            if not math.isnan(v)
            else " "
            for v in row_vals
        )
        lines.append(
            label.rjust(label_w)
            + " "
            + " ".join(c.rjust(col_w) for c in row_cells)
            + "  |"
            + shade
            + "|"
        )
    return "\n".join(lines)


def log_bar(value: float, reference: float, *, width: int = 40) -> str:
    """Log-scale bar for Fig. 2-style speed-up plots (1.0 at centre)."""
    if value <= 0 or reference <= 0:
        return " " * width
    ratio = value / reference
    # map log2 in [-4, 6] onto the width
    pos = (math.log2(ratio) + 4.0) / 10.0
    pos = min(max(pos, 0.0), 1.0)
    filled = int(pos * (width - 1))
    bar = ["-"] * width
    bar[int(4.0 / 10.0 * (width - 1))] = "|"  # the 1× mark
    bar[filled] = "o"
    return "".join(bar)


def write_csv(path: PathLike, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write a header + rows CSV, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
