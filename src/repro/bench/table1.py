"""Table I: per-matrix statistics and best core-RCM timings per approach.

Regenerates the paper's main table on the synthetic analogue test set:
matrix statistics (n, nnz, max valence, average BFS front, initial and
reordered bandwidth) and the best timing over a thread-count sweep for HSL,
Reorderlib, CPU-RCM, CPU-BATCH-BASIC, CPU-BATCH, GPU-RCM and GPU-BATCH.

Run: ``python -m repro.bench.table1 [--quick] [--csv PATH]``
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.matrices.suite import TESTSET
from repro.bench.runner import APPROACHES, THREAD_COUNTS, MatrixBench, bench_matrix
from repro.bench.report import render_table, write_csv

__all__ = ["collect", "rows", "main", "QUICK_SET"]

#: small subset for smoke runs and CI-speed benchmarks
QUICK_SET = ["bcspwr10", "benzene", "gupta3", "ecology1", "mycielskian18", "nlpkkt160"]


def collect(
    names: Optional[Sequence[str]] = None,
    thread_counts: Sequence[int] = THREAD_COUNTS,
) -> List[MatrixBench]:
    """Benchmark the named matrices (default: the whole test set)."""
    names = list(names) if names else [e.name for e in TESTSET]
    return [bench_matrix(n, thread_counts=thread_counts) for n in names]


HEADERS = [
    "Name", "n", "NNZ", "maxval", "avg front", "init BW", "reord BW",
    "HSL", "Reorderlib", "tc", "CPU-RCM", "CPU-B.-BASIC", "tc",
    "CPU-BATCH", "tc", "GPU-RCM", "GPU-BATCH",
]


def rows(benches: List[MatrixBench]) -> List[list]:
    """Table I rows (stats + per-approach timings) from bench results."""
    out = []
    for b in benches:
        out.append([
            b.name, b.n, b.nnz, b.max_valence, round(b.front.avg_front, 1),
            b.init_bw, b.reord_bw,
            b.ms("HSL"), b.ms("Reorderlib"), b.timings["Reorderlib"].threads,
            b.ms("CPU-RCM"),
            b.ms("CPU-BATCH-BASIC"), b.timings["CPU-BATCH-BASIC"].threads,
            b.ms("CPU-BATCH"), b.timings["CPU-BATCH"].threads,
            b.ms("GPU-RCM"), b.ms("GPU-BATCH"),
        ])
    return out


def main(argv: Optional[Sequence[str]] = None) -> List[MatrixBench]:
    """CLI entry point: print (and optionally CSV-dump) Table I."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run the 6-matrix subset")
    parser.add_argument("--csv", default=None, help="also write CSV here")
    parser.add_argument("--matrices", nargs="*", default=None)
    args = parser.parse_args(argv)

    names = args.matrices or (QUICK_SET if args.quick else None)
    benches = collect(names)
    table = rows(benches)
    print(render_table(
        HEADERS, table,
        title="Table I — core RCM timings (simulated ms; analogue test set)",
        float_fmt="{:.3f}",
    ))
    if args.csv:
        write_csv(args.csv, HEADERS, table)
        print(f"\nwrote {args.csv}")
    return benches


if __name__ == "__main__":
    main()
