"""Fig. 3: Generated vs Dequeued vs Executed batches (GPU-BATCH).

Early termination (Sec. IV-D) leaves batches in the queue once the
permutation is complete (Generated > Dequeued); the GPU's batch-count
over-estimation produces empty batches that are dequeued but discarded
(Dequeued > Executed).  The paper's outliers: gupta3 dequeues only ~16% of
generated batches and mycielskian18 less than 1% — both reproduce here
because the analogues preserve the structural cause (hub rows / Mycielski
construction put far more nodes into the queue than ever own children).

Run: ``python -m repro.bench.fig3 [--quick]``
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.matrices.suite import TESTSET
from repro.matrices import get_matrix
from repro.core.batch_gpu import run_batch_rcm_gpu
from repro.bench.runner import pick_start
from repro.bench.report import render_table, write_csv

__all__ = ["collect_queue_stats", "main"]

HEADERS = [
    "Name", "Generated", "Dequeued", "Executed",
    "Dequeued%", "Executed%", "left in queue", "empty discarded",
]


def collect_queue_stats(names: Optional[Sequence[str]] = None) -> List[list]:
    """GPU-BATCH queue counters (Generated/Dequeued/Executed) per matrix."""
    names = list(names) if names else [e.name for e in TESTSET]
    rows = []
    for name in names:
        mat = get_matrix(name)
        start, total = pick_start(mat)
        res = run_batch_rcm_gpu(mat, start, total=total)
        st = res.stats
        gen = max(st.batches_generated, 1)
        deq = max(st.batches_dequeued, 1)
        rows.append([
            name, st.batches_generated, st.batches_dequeued, st.batches_executed,
            100.0 * st.batches_dequeued / gen,
            100.0 * st.batches_executed / deq,
            st.batches_discarded_by_early_termination,
            st.batches_empty,
        ])
    return rows


def main(argv: Optional[Sequence[str]] = None) -> List[list]:
    """CLI entry point: print the queue-slot-fates table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)
    from repro.bench.table1 import QUICK_SET

    rows = collect_queue_stats(QUICK_SET if args.quick else None)
    print(render_table(
        HEADERS, rows,
        title="Fig. 3 — GPU-BATCH queue-slot fates (early termination & empties)",
        float_fmt="{:.1f}",
    ))
    if args.csv:
        write_csv(args.csv, HEADERS, rows)
    return rows


if __name__ == "__main__":
    main()
