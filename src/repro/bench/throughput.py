"""Multi-matrix throughput: chunked process-pool vs in-process execution.

The service-shaped workload: a stream of matrices reordered back to back.
:func:`repro.parallel.map_matrices` ships chunks of whole pipelines to
worker processes; this driver measures matrices/second against the same
loop run in-process, verifying the permutations are identical.

On a single-core host (or when ``fork`` is unavailable) the pool degrades
gracefully and the two modes converge — the artifact records the worker
count actually used, so regressions are judged in context.

Run: ``python -m repro.bench.throughput [--quick]``
     (or ``repro bench throughput``)
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import List, Optional, Sequence

from repro.bench.report import render_table, write_csv
from repro.telemetry.events import SCHEMA, git_sha, host_info

__all__ = ["build_workload", "measure", "main"]


def build_workload(count: int, *, size: int = 40) -> list:
    """A mixed batch of generator matrices (grids, meshes, strips)."""
    from repro.matrices import generators as g

    mats = []
    for i in range(count):
        kind = i % 3
        if kind == 0:
            mats.append(g.grid2d(size, size))
        elif kind == 1:
            mats.append(g.delaunay_mesh(size * size // 2, seed=i))
        else:
            mats.append(g.random_geometric(size * size, k=4, seed=i))
    return mats


def measure(
    mats: Sequence, *, n_workers: Optional[int] = None,
    chunk_size: Optional[int] = None, compare_transports: bool = False,
) -> List[dict]:
    """Wall time of the in-process loop vs the chunked process pool.

    With ``compare_transports`` the pool pass runs twice — once over the
    legacy pickle transport (``REPRO_NO_SHM=1``) and once over the
    shared-memory transport — isolating the transport's contribution.
    """
    import numpy as np

    from repro.core.api import _reorder_rcm
    from repro.parallel import ParallelConfig, map_matrices, resolve_workers

    t0 = time.perf_counter()
    seq = [_reorder_rcm(m, method="vectorized") for m in mats]
    seq_s = time.perf_counter() - t0

    cfg = ParallelConfig(
        n_workers=n_workers, chunk_size=chunk_size, force_processes=True
    )

    def _pool_pass(mode: str, *, no_shm: bool) -> dict:
        from repro.parallel import shm

        old = os.environ.get("REPRO_NO_SHM")
        if no_shm:
            os.environ["REPRO_NO_SHM"] = "1"
        else:
            os.environ.pop("REPRO_NO_SHM", None)
        try:
            transport = "shm" if shm.shm_available() else "pickle"
            t0 = time.perf_counter()
            par = map_matrices(mats, method="vectorized", config=cfg)
            par_s = time.perf_counter() - t0
        finally:
            if old is None:
                os.environ.pop("REPRO_NO_SHM", None)
            else:
                os.environ["REPRO_NO_SHM"] = old
        for a, b in zip(seq, par):
            if not np.array_equal(a.permutation, b.permutation):
                raise AssertionError(
                    "process-pool result diverged from in-process"
                )
        return {"mode": mode, "workers": resolve_workers(n_workers),
                "seconds": par_s, "matrices_per_s": len(mats) / par_s,
                "transport": transport}

    rows = [
        {"mode": "in-process", "workers": 1, "seconds": seq_s,
         "matrices_per_s": len(mats) / seq_s, "transport": "none"},
    ]
    if compare_transports:
        rows.append(_pool_pass("process-pool[pickle]", no_shm=True))
        rows.append(_pool_pass("process-pool[shm]", no_shm=False))
    else:
        rows.append(_pool_pass("process-pool", no_shm=False))
    return rows


def main(argv: Optional[Sequence[str]] = None) -> List[dict]:
    """CLI entry point: print the throughput table, optionally save JSON."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=24,
                        help="number of matrices in the batch")
    parser.add_argument("--size", type=int, default=40,
                        help="matrix scale knob (n ~ size^2)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: cpu count)")
    parser.add_argument("--chunk-size", type=int, default=None)
    parser.add_argument("--shm", action="store_true",
                        help="run the pool pass over both the pickle and "
                             "the shared-memory transport")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--csv", default=None)
    parser.add_argument("--json", default=None,
                        help="write a BENCH-style JSON artifact here")
    args = parser.parse_args(argv)

    count = 8 if args.quick else args.count
    size = 24 if args.quick else args.size
    mats = build_workload(count, size=size)
    rows = measure(mats, n_workers=args.workers, chunk_size=args.chunk_size,
                   compare_transports=args.shm)

    headers = ["mode", "workers", "transport", "seconds", "matrices/s"]
    table = [
        [r["mode"], r["workers"], r["transport"], round(r["seconds"], 3),
         round(r["matrices_per_s"], 2)]
        for r in rows
    ]
    print(render_table(
        headers, table,
        title=f"multi-matrix throughput ({count} matrices, "
              f"cpu_count={os.cpu_count()})",
    ))
    if args.csv:
        write_csv(args.csv, headers, table)
    if args.json:
        payload = {
            "schema": SCHEMA,
            "bench": "rcm_throughput",
            "n_matrices": count,
            "modes": rows,
            "wall_ms": rows[0]["seconds"] * 1e3,
            "host": host_info(),
            "git_sha": git_sha(),
            "unix_time": time.time(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return rows


if __name__ == "__main__":
    main()
