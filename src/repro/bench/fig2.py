"""Fig. 2: speed-up of every approach relative to HSL (log scale).

The paper normalizes all approaches to HSL per matrix.  Expected shape:
CPU-RCM sits ≈5.8× above HSL (by construction of the baseline model);
CPU-BATCH/GPU-BATCH reach far higher on wide-front matrices and drop toward
(or below) CPU-RCM on tiny or narrow ones; GPU-RCM dips below 1× on deep
graphs; Reorderlib hovers below CPU-RCM.

Run: ``python -m repro.bench.fig2 [--quick]``
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.bench.runner import APPROACHES, MatrixBench
from repro.bench.table1 import collect, QUICK_SET
from repro.bench.report import render_table, write_csv, log_bar

__all__ = ["speedups", "main"]

PLOT_APPROACHES = [a for a in APPROACHES if a != "HSL"]


def speedups(benches: List[MatrixBench]) -> List[list]:
    """Rows of speed-up factors vs HSL, one row per matrix."""
    out = []
    for b in benches:
        out.append([b.name] + [b.speedup_vs(a) for a in PLOT_APPROACHES])
    return out


def main(argv: Optional[Sequence[str]] = None) -> List[list]:
    """CLI entry point: print the speed-up-vs-HSL table and bars."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)

    benches = collect(QUICK_SET if args.quick else None)
    table = speedups(benches)
    headers = ["Name"] + PLOT_APPROACHES
    print(render_table(
        headers, table,
        title="Fig. 2 — speed-up vs HSL (×, log-scale plot in the paper)",
        float_fmt="{:.2f}",
    ))
    print("\nlog-scale bars (| marks 1×, o the value; range 1/16× .. 64×):")
    for b in benches:
        print(f"\n  {b.name}")
        for a in PLOT_APPROACHES:
            print(f"    {a:16s} [{log_bar(b.speedup_vs(a), 1.0)}] {b.speedup_vs(a):7.2f}x")
    if args.csv:
        write_csv(args.csv, headers, table)
    return table


if __name__ == "__main__":
    main()
