"""Wall-clock speedup of the execution-layer methods vs the serial kernel.

Unlike the ``figN``/``table1`` drivers (simulated cycles), this measures
*real* wall time of ``repro.reorder`` per method, so the vectorized frontier
kernel and the process-parallel executor are judged by what the hardware
actually delivers.  The result artifact (``--json``) records per-method
ordering milliseconds and the speedup over ``"serial"`` — the number the
benchmark regression gate tracks.

Run: ``python -m repro.bench.speedup [--quick] [--matrix NAME]``
     (or ``repro bench speedup``)
"""

from __future__ import annotations

import argparse
import json
import time
from typing import List, Optional, Sequence

from repro import backends
from repro.backends import KIND_SERIAL, KIND_VECTORIZED
from repro.bench.report import render_table, write_csv
from repro.telemetry.events import SCHEMA, git_sha, host_info

__all__ = ["DEFAULT_METHODS", "largest_matrix_name", "measure", "main"]

#: methods compared by default — the registry's auto candidates (the
#: backends with real wall-clock ambitions: serial reference, NumPy
#: frontier kernel, process-parallel executor)
DEFAULT_METHODS = tuple(
    b.name for b in backends.backends() if b.auto_candidate
)

#: ``--quick`` keeps only single-process array kernels (no pool startup)
_QUICK_KINDS = (KIND_SERIAL, KIND_VECTORIZED)


def largest_matrix_name() -> str:
    """Name of the largest (by node count) generator matrix in the suite."""
    from repro.matrices.suite import TESTSET, get_matrix

    sizes = {e.name: get_matrix(e.name).n for e in TESTSET}
    return max(sizes, key=sizes.__getitem__)


def measure(
    name: str,
    methods: Sequence[str] = DEFAULT_METHODS,
    *,
    repeats: int = 3,
    n_workers: int = 4,
) -> List[dict]:
    """Best-of-``repeats`` wall milliseconds per method on one matrix.

    Every permutation is verified bit-identical to ``"serial"`` as it is
    measured; ``ordering_ms`` isolates the kernel (validation/component
    phases are common to all methods), ``total_ms`` is the whole pipeline.
    """
    import numpy as np

    from repro.facade import reorder
    from repro.matrices.suite import get_matrix

    mat = get_matrix(name)
    reference = None
    rows: List[dict] = []
    for method in methods:
        best_order, best_total = float("inf"), float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter_ns()
            res = reorder(mat, method=method, n_workers=n_workers)
            total_ms = (time.perf_counter_ns() - t0) / 1e6
            order_ms = res.phase_ns["ordering"] / 1e6
            best_order = min(best_order, order_ms)
            best_total = min(best_total, total_ms)
        if reference is None:
            reference = res.permutation
        elif not np.array_equal(res.permutation, reference):
            raise AssertionError(f"{method} diverged from {methods[0]} on {name}")
        rows.append({
            "matrix": name,
            "n": mat.n,
            "nnz": mat.nnz,
            "method": method,
            "ordering_ms": best_order,
            "total_ms": best_total,
        })
    serial_ms = next(
        (r["ordering_ms"] for r in rows if r["method"] == "serial"), None
    )
    for r in rows:
        r["speedup_vs_serial"] = (
            serial_ms / r["ordering_ms"] if serial_ms else float("nan")
        )
    return rows


def main(argv: Optional[Sequence[str]] = None) -> List[dict]:
    """CLI entry point: print the speedup table, optionally save artifacts."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--matrix", default=None,
                        help="test-set matrix (default: largest by n)")
    parser.add_argument("--methods", default=",".join(DEFAULT_METHODS),
                        help="comma-separated method list")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="one repeat, serial+vectorized only")
    parser.add_argument("--csv", default=None)
    parser.add_argument("--json", default=None,
                        help="write a BENCH-style JSON artifact here")
    args = parser.parse_args(argv)

    name = args.matrix or largest_matrix_name()
    methods = [m for m in args.methods.split(",") if m]
    repeats = args.repeats
    if args.quick:
        methods = [
            m for m in methods
            if backends.is_registered(m)
            and backends.get(m).kind in _QUICK_KINDS
        ]
        repeats = 1

    rows = measure(name, methods, repeats=repeats, n_workers=args.workers)
    headers = ["matrix", "method", "ordering ms", "total ms", "speedup vs serial"]
    table = [
        [r["matrix"], r["method"], round(r["ordering_ms"], 3),
         round(r["total_ms"], 3), round(r["speedup_vs_serial"], 2)]
        for r in rows
    ]
    print(render_table(
        headers, table,
        title=f"RCM wall-clock speedup ({name}, n={rows[0]['n']}, "
              f"nnz={rows[0]['nnz']}, best of {repeats})",
    ))
    if args.csv:
        write_csv(args.csv, headers, table)
    if args.json:
        payload = {
            "schema": SCHEMA,
            "bench": "rcm_speedup",
            "matrix": name,
            "methods": rows,
            "speedups_vs_serial": {
                r["method"]: r["speedup_vs_serial"] for r in rows
            },
            "wall_ms": min(r["ordering_ms"] for r in rows),
            "host": host_info(),
            "git_sha": git_sha(),
            "unix_time": time.time(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return rows


if __name__ == "__main__":
    main()
