"""Ablations over the batch algorithm's design choices.

Beyond the paper's figures, DESIGN.md calls out the knobs worth isolating:

* **batch size** — too small starves workers with management overhead, too
  large starves the queue of parallelism;
* **overhang** (work aggregation, Sec. IV-C) — on/off;
* **early signaling** (Alg. 5 vs Alg. 4's fixed signal points) — on/off;
* **multi-batch execution** (Sec. IV-D) — worker-held batch budget;
* **speculation** — off means discovery blocks on the chain (no wasted
  sorting, fully serialized discovery).

Run: ``python -m repro.bench.ablation [--matrices ...] [--workers N]``
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.matrices import get_matrix
from repro.core.batch import run_batch_rcm
from repro.core.batches import BatchConfig
from repro.machine.costmodel import CPUCostModel
from repro.bench.runner import pick_start
from repro.bench.report import render_table, write_csv

__all__ = ["VARIANTS", "ablate", "main"]

VARIANTS: Dict[str, BatchConfig] = {
    "full (default)": BatchConfig(),
    "basic (Alg.4)": BatchConfig(early_signaling=False, overhang=False, multibatch=1),
    "no early signaling": BatchConfig(early_signaling=False),
    "no overhang": BatchConfig(overhang=False),
    "multibatch=1": BatchConfig(multibatch=1),
    "multibatch=4": BatchConfig(multibatch=4),
    "no speculation": BatchConfig(speculate=False),
    "batch=16": BatchConfig(batch_size=16),
    "batch=256": BatchConfig(batch_size=256),
}

DEFAULT_MATRICES = ["ecology1", "gupta3", "nlpkkt160", "great-britain_osm", "mycielskian18"]


def ablate(
    names: Sequence[str],
    *,
    n_workers: int = 8,
    variants: Optional[Dict[str, BatchConfig]] = None,
) -> List[list]:
    """Rows of per-variant simulated timings across the named matrices."""
    variants = variants or VARIANTS
    model = CPUCostModel()
    rows = []
    for label, cfg in variants.items():
        row = [label]
        for name in names:
            mat = get_matrix(name)
            start, total = pick_start(mat)
            res = run_batch_rcm(
                mat, start, model=model, n_workers=n_workers, config=cfg, total=total
            )
            row.append(res.milliseconds)
        rows.append(row)
    return rows


def main(argv: Optional[Sequence[str]] = None) -> List[list]:
    """CLI entry point: print (and optionally CSV-dump) the ablation table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--matrices", nargs="*", default=DEFAULT_MATRICES)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--csv", default=None)
    args = parser.parse_args(argv)

    rows = ablate(args.matrices, n_workers=args.workers)
    headers = ["variant"] + list(args.matrices)
    print(render_table(
        headers, rows,
        title=f"Ablation — CPU-BATCH variants at {args.workers} workers (simulated ms)",
        float_fmt="{:.3f}",
    ))
    if args.csv:
        write_csv(args.csv, headers, rows)
    return rows


if __name__ == "__main__":
    main()
