"""The unified error surface of the library.

Every exception ``repro`` raises on purpose derives from :class:`ReproError`,
so callers can catch one base class at the facade/service boundary instead of
enumerating module-specific types::

    try:
        results = repro.reorder_many(mats)
    except repro.errors.ReproError:
        ...  # any repro-originated failure: bad input, overload, timeout

The hierarchy (each class also subclasses the stdlib type it historically
was, so pre-1.2 ``except ValueError`` / ``except RuntimeError`` call sites
keep working unchanged):

* :class:`ReproError` — base of everything below.

  * :class:`ValidationError` (``ValueError``) — a request argument failed
    validation (unknown algorithm/method/start, out-of-range value,
    asymmetric pattern...).  Raised by :mod:`repro.validation` and never
    swallowed by degradation chains: a bad request must not burn fallbacks.
  * :class:`BackendUnavailableError` (``ValueError``) — a method name does
    not resolve to a registered execution backend, or a degradation chain
    has no viable target in this install.
  * :class:`ServiceError` (``RuntimeError``) — base of service-level
    failures.

    * :class:`ServiceOverloadedError` — the bounded submission queue is
      full (backpressure).
    * :class:`ServiceTimeoutError` — a request (or batch) missed its
      deadline; the computation keeps running and still populates the
      cache.
  * :class:`RemovedAPIError` (``RuntimeError``) — a pre-facade entry point
    that finished its deprecation cycle (``reverse_cuthill_mckee``,
    ``orderings.api.order``) was called; the message names the
    :func:`repro.reorder` replacement.

The service exception names are also importable from their historical homes
(``repro.service`` / ``repro.service.core``) — those modules re-export the
classes defined here.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "BackendUnavailableError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "RemovedAPIError",
]


class ReproError(Exception):
    """Base class of every intentional ``repro`` failure."""


class ValidationError(ReproError, ValueError):
    """A request argument failed validation at the public boundary.

    Subclasses ``ValueError`` so existing ``except ValueError`` call sites
    (and the degradation chains' bad-request passthrough) are unaffected.
    """


class BackendUnavailableError(ReproError, ValueError):
    """No registered execution backend satisfies the request.

    Raised by the registry for unknown method names and by the degradation
    machinery when a chain has no viable in-process target.
    """


class ServiceError(ReproError, RuntimeError):
    """Base class for service-level failures."""


class ServiceOverloadedError(ServiceError):
    """The bounded submission queue is full (backpressure)."""


class ServiceTimeoutError(ServiceError):
    """A request did not complete within its timeout."""


class RemovedAPIError(ReproError, RuntimeError):
    """A retired pre-facade entry point was called.

    The 1.1 ``DeprecationWarning`` shims finished their cycle in 1.2; the
    error message names the exact :func:`repro.reorder` call to use.
    """
