"""Real-thread backend for batch RCM.

This module runs the full batch protocol on genuine OS threads with locks
and condition variables instead of the simulator.  On CPython it cannot show
speedups (GIL, and this reproduction machine has one core) — its purpose is
to validate the *protocol* under true asynchronous nondeterminism: whatever
the OS scheduler does, the returned permutation must equal serial RCM.  The
test-suite runs it repeatedly as a stress test.

Differences from the simulated path are confined to synchronization:

* the mark array's ``atomicMin`` is a per-parent critical section;
* the queue is a condition-variable-protected take-at-head monitor;
* the signal chain notifies a single condition variable that waiting batches
  re-check (the paper's busy-wait with back-off, expressed politely).

Overhang forwarding and early signaling are active, so the interesting
protocol paths are exercised; each worker holds one batch at a time
(blocking waits) because multi-batch juggling adds nothing under the GIL.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.core.batches import (
    BatchConfig,
    clamped_valences,
    estimate_batch_count,
    plan_ranges,
)
from repro.machine.signals import SignalState
from repro import telemetry

__all__ = ["rcm_threads"]

DISCOVERED = int(SignalState.DISCOVERED)
COUNTED = int(SignalState.COUNTED)
COMPLETED = int(SignalState.COMPLETED)

_UNDISCOVERED = np.iinfo(np.int64).max


def _null_span(_name):
    """Disabled-telemetry fast path: skip the Telemetry→Tracer dispatch."""
    return telemetry.NULL_SPAN


@dataclass
class _Payload:
    out_next: int
    queue_next: int
    overhang_start: int = 0
    overhang_end: int = 0
    overhang_valence: int = 0

    @property
    def overhang_nodes(self) -> int:
        return self.overhang_end - self.overhang_start

    def has_overhang(self) -> bool:
        return self.overhang_end > self.overhang_start


class _SharedState:
    """Lock-protected shared run state for the threaded backend."""

    def __init__(self, mat: CSRMatrix, start: int, total: int) -> None:
        n = mat.n
        self.mat = mat
        self.valence = np.diff(mat.indptr)
        self.marks = np.full(n, _UNDISCOVERED, dtype=np.int64)
        self.marks[start] = -1
        self.out = np.empty(total, dtype=np.int64)
        self.out[0] = start
        self.total = total
        self.written = 1

        self.mark_lock = threading.Lock()
        self.monitor = threading.Condition()
        # queue: ranges per slot; None = reserved but unfilled
        self.slots: List[Optional[tuple]] = [(0, 1, False)]
        self.cursor = 0
        self.done = total == 1
        # signals: outgoing state/payload per slot
        self.sig_state: List[int] = []
        self.sig_payload: List[Optional[_Payload]] = []
        self.bootstrap = _Payload(out_next=1, queue_next=1)
        self.failure: Optional[BaseException] = None

    # -- signals (under monitor) ---------------------------------------
    def _ensure_sig(self, i: int) -> None:
        while len(self.sig_state) <= i:
            self.sig_state.append(0)
            self.sig_payload.append(None)

    def incoming_state(self, i: int) -> int:
        if i == 0:
            return COMPLETED
        with self.monitor:
            self._ensure_sig(i - 1)
            return self.sig_state[i - 1]

    def incoming_payload(self, i: int) -> _Payload:
        if i == 0:
            return self.bootstrap
        with self.monitor:
            return self.sig_payload[i - 1]  # type: ignore[return-value]

    def send(self, i: int, state: int, payload: Optional[_Payload] = None) -> None:
        with self.monitor:
            self._ensure_sig(i)
            if state < self.sig_state[i]:
                raise RuntimeError("signal downgrade")
            if payload is not None and self.sig_payload[i] is None:
                self.sig_payload[i] = payload
            self.sig_state[i] = state
            self.monitor.notify_all()

    def wait_incoming(self, i: int, state: int) -> None:
        if i == 0:
            return
        with self.monitor:
            while True:
                if self.failure is not None:
                    raise RuntimeError("peer worker failed") from self.failure
                self._ensure_sig(i - 1)
                if self.sig_state[i - 1] >= state:
                    return
                self.monitor.wait(timeout=5.0)

    # -- queue (under monitor) -------------------------------------------
    def fill_slot(self, idx: int, rng: tuple) -> None:
        with self.monitor:
            while len(self.slots) <= idx:
                self.slots.append(None)
            if self.slots[idx] is not None:
                raise RuntimeError(f"slot {idx} filled twice")
            self.slots[idx] = rng
            self.monitor.notify_all()

    def take_next(self) -> Optional[tuple]:
        """Blocking take-at-head; ``None`` means terminate."""
        with self.monitor:
            while True:
                if self.failure is not None:
                    raise RuntimeError("peer worker failed") from self.failure
                if self.done:
                    return None
                if self.cursor < len(self.slots) and self.slots[self.cursor] is not None:
                    idx = self.cursor
                    self.cursor += 1
                    a, b, empty = self.slots[idx]  # type: ignore[misc]
                    return (idx, a, b, empty)
                self.monitor.wait(timeout=5.0)

    def write_output(self, pos: int, nodes: np.ndarray) -> None:
        self.out[pos : pos + nodes.size] = nodes
        with self.monitor:
            self.written += int(nodes.size)
            if self.written == self.total:
                self.done = True
                self.monitor.notify_all()


def _process_batch(
    state: _SharedState,
    cfg: BatchConfig,
    idx: int,
    a: int,
    b: int,
    wid: int = 0,
    tel: Optional[telemetry.Telemetry] = None,
) -> None:
    """One batch through the full protocol (Alg. 5, blocking waits).

    ``wid`` is the worker lane for telemetry spans; stage names and counter
    semantics mirror the simulator's :class:`~repro.machine.stats.RunStats`
    (``Discover``/``Sort``/``Rediscover``/``Signal``/``addNewBatches``/
    ``Stall``, ``threads.speculation.*``, ``threads.batches.*``).
    """
    if tel is None:
        tel = telemetry.get()
    if tel.enabled:
        def span(name, _t=tel, _w=wid, _i=idx):
            """Stage span pre-bound to this batch's telemetry context."""
            return _t.span(name, category="threads", worker=_w, batch=_i)
    else:
        span = _null_span
    mat = state.mat
    indptr, indices = mat.indptr, mat.indices
    parents = state.out[a:b]

    s_early = state.incoming_state(idx)
    # --- speculative discovery (atomicMin per parent) -------------------
    nodes_l: List[np.ndarray] = []
    ppos_l: List[np.ndarray] = []
    with span("Discover"):
        for li in range(parents.size):
            p = parents[li]
            ch = indices[indptr[p] : indptr[p + 1]]
            if ch.size == 0:
                continue
            with state.mark_lock:
                claim = state.marks[ch] > idx
                fresh = ch[claim]
                state.marks[fresh] = idx
            if fresh.size:
                nodes_l.append(fresh)
                ppos_l.append(np.full(fresh.size, li, dtype=np.int64))
    nodes = np.concatenate(nodes_l) if nodes_l else np.zeros(0, dtype=np.int64)
    ppos = np.concatenate(ppos_l) if ppos_l else np.zeros(0, dtype=np.int64)
    vals = state.valence[nodes]
    if tel.enabled:
        tel.counter("threads.speculation.discovered").add(int(nodes.size))
        tel.histogram("threads.batch.discovered").observe(int(nodes.size))
    s_mid = state.incoming_state(idx)

    def redisc():
        nonlocal nodes, ppos, vals
        with span("Rediscover"):
            with state.mark_lock:
                alive = state.marks[nodes] >= idx
            if tel.enabled:
                dropped = int(nodes.size - alive.sum())
                tel.counter("threads.speculation.rediscovery_passes").add(1)
                tel.counter("threads.speculation.dropped").add(dropped)
                tel.histogram("threads.batch.dropped").observe(dropped)
            nodes, ppos, vals = nodes[alive], ppos[alive], vals[alive]

    def signal_count() -> Optional[dict]:
        if state.incoming_state(idx) < COUNTED:
            return None
        with span("Signal"):
            return _signal_count_inner()

    def _signal_count_inner() -> dict:
        payload = state.incoming_payload(idx)
        count = int(nodes.size)
        val_sum = int(clamped_valences(vals, cfg.temp_limit).sum())
        m_total = count + payload.overhang_nodes
        v_total = val_sum + payload.overhang_valence
        out_start = payload.out_next
        out_end = out_start + count
        gen_start = payload.overhang_start if payload.has_overhang() else out_start
        successor = payload.queue_next > idx + 1
        forward = (
            cfg.overhang
            and successor
            and m_total > 0
            and 2 * m_total < cfg.batch_size
            and 2 * v_total < cfg.temp_limit
        )
        k = 0 if (forward or m_total == 0) else estimate_batch_count(m_total, v_total, cfg)
        out_p = _Payload(out_next=out_end, queue_next=payload.queue_next + k)
        if forward:
            out_p.overhang_start = gen_start
            out_p.overhang_end = out_end
            out_p.overhang_valence = v_total
            state.send(idx, COUNTED, out_p)
            if tel.enabled:
                tel.counter("threads.overhangs.forwarded").add(1)
                tel.counter("threads.overhangs.nodes").add(m_total)
        else:
            state.send(idx, COMPLETED, out_p)
        return dict(
            count=count, out_start=out_start, gen_start=gen_start,
            forward=forward, k=k, queue_start=payload.queue_next,
        )

    plan = None
    exact = False
    if cfg.early_signaling and s_early >= DISCOVERED:
        state.send(idx, DISCOVERED)
        exact = True
        plan = signal_count()
    elif cfg.early_signaling and s_mid >= DISCOVERED:
        state.send(idx, DISCOVERED)
        redisc()
        exact = True
        plan = signal_count()

    # --- sort (speculative) -----------------------------------------------
    if nodes.size > 1:
        with span("Sort"):
            order = np.lexsort((vals, ppos))
            nodes, ppos, vals = nodes[order], ppos[order], vals[order]
        if tel.enabled:
            tel.counter("threads.speculation.sorted_elements").add(int(nodes.size))

    with span("Stall"):
        state.wait_incoming(idx, DISCOVERED)
    if not exact:
        if state.incoming_state(idx) >= DISCOVERED:
            state.send(idx, DISCOVERED)
        redisc()
        if cfg.early_signaling:
            plan = signal_count()

    with span("Stall"):
        state.wait_incoming(idx, COUNTED)
    if plan is None:
        plan = signal_count()
        assert plan is not None

    with span("addNewBatches"):
        state.write_output(plan["out_start"], nodes)

    with span("Stall"):
        state.wait_incoming(idx, COMPLETED)
    if plan["forward"]:
        state.send(idx, COMPLETED)

    if not plan["forward"] and plan["k"] > 0:
        with span("addNewBatches"):
            gen_start = plan["gen_start"]
            out_end = plan["out_start"] + plan["count"]
            gen_nodes = state.out[gen_start:out_end]
            cvals = clamped_valences(state.valence[gen_nodes], cfg.temp_limit)
            ranges = plan_ranges(cvals, plan["k"], cfg)
            for j, (ra, rb) in enumerate(ranges):
                state.fill_slot(
                    plan["queue_start"] + j, (gen_start + ra, gen_start + rb, ra == rb)
                )
            if tel.enabled:
                tel.counter("threads.batches.generated").add(len(ranges))


def _worker(state: _SharedState, cfg: BatchConfig, wid: int = 0) -> None:
    tel = telemetry.get()
    try:
        while True:
            item = state.take_next()
            if item is None:
                return
            idx, a, b, empty = item
            if tel.enabled:
                tel.counter("threads.batches.dequeued").add(1)
                tel.counter(
                    "threads.batches.empty" if empty else "threads.batches.executed"
                ).add(1)
            _process_batch(state, cfg, idx, a, b, wid=wid, tel=tel)
    except BaseException as exc:  # propagate to peers and the caller
        with state.monitor:
            if state.failure is None:
                state.failure = exc
            state.done = True
            state.monitor.notify_all()


def rcm_threads(
    mat: CSRMatrix,
    start: int,
    *,
    n_threads: int = 4,
    config: Optional[BatchConfig] = None,
    total: Optional[int] = None,
) -> np.ndarray:
    """Batch RCM on real OS threads; returns the RCM permutation.

    Raises if any worker failed; the result always equals
    :func:`repro.core.serial.rcm_serial` for the same start node.
    """
    if total is None:
        total = int((bfs_levels(mat, start) >= 0).sum())
    cfg = config or BatchConfig(multibatch=1)
    state = _SharedState(mat, start, total)
    tel = telemetry.get()
    disc_before = dropped_before = 0
    if tel.enabled:
        tel.gauge("threads.n_workers").set(max(n_threads, 1))
        tel.counter("threads.batches.generated").add(1)  # bootstrap slot
        disc_before = tel.counter("threads.speculation.discovered").value
        dropped_before = tel.counter("threads.speculation.dropped").value
    run_span = tel.span(
        "rcm_threads", category="threads", n=mat.n, total=total,
        n_threads=max(n_threads, 1),
    )
    threads = [
        threading.Thread(target=_worker, args=(state, cfg, wid), daemon=True)
        for wid in range(max(n_threads, 1))
    ]
    run_span.__enter__()
    for t in threads:
        t.start()
    try:
        for t in threads:
            t.join(timeout=120.0)
            if t.is_alive():
                with state.monitor:
                    state.failure = state.failure or TimeoutError("worker hung")
                    state.done = True
                    state.monitor.notify_all()
                raise TimeoutError("threaded RCM worker did not finish")
    finally:
        run_span.__exit__(None, None, None)
        if tel.enabled:
            # speculation efficiency of *this* run: the kept fraction of
            # everything speculatively discovered (1.0 = no wasted work)
            disc = tel.counter("threads.speculation.discovered").value
            drop = tel.counter("threads.speculation.dropped").value
            run_disc = disc - disc_before
            run_drop = drop - dropped_before
            if run_disc > 0:
                tel.gauge("threads.speculation.efficiency").set(
                    (run_disc - run_drop) / run_disc
                )
    if state.failure is not None:
        raise RuntimeError("threaded RCM failed") from state.failure
    if state.written != state.total:
        raise RuntimeError(f"incomplete: {state.written}/{state.total}")
    return state.out[::-1].copy()
