"""Shared run state for the batch-based RCM variants.

One :class:`BatchRunState` instance is shared by all simulated workers: it
holds the matrix view, the global mark array (the paper's ``m``, updated with
``atomicMin`` semantics), the output permutation, the ordered work queue and
the signal chain.  The engine serializes stage execution, so plain NumPy
operations on these arrays model the hardware atomics faithfully (see
``repro.machine.engine`` for the sequential-consistency argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.machine.signals import SignalChain, SignalPayload
from repro.machine.workqueue import WorkQueue
from repro.machine.stats import RunStats
from repro.machine.multidevice import DeviceTopology

__all__ = ["BatchRunState", "make_state", "UNDISCOVERED"]

#: mark value of a node no batch has discovered yet (acts like +inf for
#: atomicMin on batch indices)
UNDISCOVERED = np.iinfo(np.int64).max


@dataclass
class BatchRunState:
    """Global shared state of one batch-RCM run."""

    mat: CSRMatrix
    start: int
    #: stored row lengths — the paper's valence ``r[n+1] - r[n]``
    valence: np.ndarray
    #: the paper's ``m``: smallest batch index having discovered each node
    marks: np.ndarray
    #: Cuthill-McKee output order (reversed at the end for RCM)
    out: np.ndarray
    #: nodes written to ``out`` so far
    written: int
    #: nodes in the start node's component == final output length
    total: int
    queue: WorkQueue
    signals: SignalChain
    stats: RunStats
    #: multi-device extension: worker partition + interconnect costs
    topology: Optional[DeviceTopology] = None
    #: device that processed each queue slot (signal-crossing detection)
    slot_device: Optional[dict] = None
    #: optional (time, slot, phase) log of batch lifecycle transitions —
    #: the states of the paper's Fig. 1 (set to [] to enable)
    phase_log: Optional[list] = None

    def log_phase(self, now: float, slot: int, phase: str) -> None:
        """Record a Fig.-1 lifecycle transition when logging is enabled."""
        if self.phase_log is not None:
            self.phase_log.append((now, slot, phase))

    def write_output(self, position: int, nodes: np.ndarray) -> None:
        """Append confirmed nodes at their assigned output positions.

        Guards against an understated ``total``: writing past the component
        size raises instead of truncating (an exact-hit understatement is
        indistinguishable from completion — ``total`` must be the true
        component size, which :func:`make_state` computes when omitted).
        """
        if position + int(nodes.size) > self.total:
            raise RuntimeError(
                f"output overflow: writing {nodes.size} nodes at {position} "
                f"exceeds total={self.total}; the `total` argument must be "
                "the exact component size"
            )
        self.out[position : position + nodes.size] = nodes
        self.written += int(nodes.size)
        if self.written == self.total and not self.queue.done:
            # early termination (Sec. IV-D): permutation complete, discard
            # everything still queued
            self.queue.terminate()

    def sync_queue_stats(self) -> None:
        """Copy the queue's Fig.-3 counters into the run statistics."""
        self.stats.batches_generated = self.queue.n_generated
        self.stats.batches_dequeued = self.queue.n_dequeued
        self.stats.batches_executed = self.queue.n_executed
        self.stats.batches_empty = self.queue.n_empty_discarded
        self.stats.batches_discarded_by_early_termination = (
            self.queue.n_generated - self.queue.n_dequeued
        )

    def permutation(self) -> np.ndarray:
        """The finished RCM permutation (reversed CM order)."""
        if self.written != self.total:
            raise RuntimeError(
                f"run incomplete: wrote {self.written} of {self.total} nodes"
            )
        return self.out[: self.total][::-1].copy()


def make_state(
    mat: CSRMatrix,
    start: int,
    *,
    n_workers: int,
    total: Optional[int] = None,
    topology: Optional[DeviceTopology] = None,
) -> BatchRunState:
    """Initialize shared state: the start node is pre-written as output 0 and
    queue slot 0 carries it as the initial single-parent batch.

    ``total`` (component size) gates termination; when omitted it is counted
    with an untimed BFS — callers that already know it (the public API runs
    per component) pass it in.
    """
    n = mat.n
    if not 0 <= start < n:
        raise ValueError(f"start node {start} out of range [0, {n})")
    if total is None:
        total = int((bfs_levels(mat, start) >= 0).sum())

    marks = np.full(n, UNDISCOVERED, dtype=np.int64)
    marks[start] = -1  # owned by the virtual batch before slot 0
    out = np.empty(total, dtype=np.int64)
    out[0] = start

    queue = WorkQueue()
    queue.fill(0, 0, 1)
    signals = SignalChain(bootstrap=SignalPayload(out_next=1, queue_next=1))

    state = BatchRunState(
        mat=mat,
        start=start,
        valence=np.diff(mat.indptr),
        marks=marks,
        out=out,
        written=1,
        total=total,
        queue=queue,
        signals=signals,
        stats=RunStats(n_workers=n_workers),
        topology=topology,
        slot_device={},
    )
    if total == 1:
        # isolated start node: the permutation is already complete
        state.queue.terminate()
    return state
