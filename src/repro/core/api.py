"""RCM pipeline internals: component handling, method/start selection, results.

The single public entry point of the library is :func:`repro.reorder`
(see :mod:`repro.facade`); this module implements the RCM execution pipeline
behind it.  The pre-facade entry point :func:`reverse_cuthill_mckee`
finished its deprecation cycle in 1.2 and now raises
:class:`repro.errors.RemovedAPIError`.

:func:`_reorder_rcm` validates the matrix, decomposes it into connected
components, picks a start node per component (explicitly, by minimum
valence, or pseudo-peripherally) and runs the chosen execution backend,
assembling one global permutation.  Which backends exist, what each one
honors, and what ``method="auto"`` resolves to all live in
:mod:`repro.backends` — this module only walks the pipeline and hands each
component (or, for whole-matrix backends, the component list) to the
registered run callable.

Component convention (matches SciPy's ``csgraph.reverse_cuthill_mckee``
structure): components are ordered by their smallest node id; within the
global permutation each component's RCM block is reversed *within itself*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro import backends
from repro.backends import resolve_auto_method  # noqa: F401  (re-export)
from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.sparse.bandwidth import (
    bandwidth,
    bandwidth_after,
    envelope_after,
    envelope_size,
)
from repro.sparse.validate import (
    check_batch,
    is_structurally_symmetric,
    validate_csr,
)
from repro.core.batches import BatchConfig
from repro.core.peripheral import find_pseudo_peripheral
from repro.core.transform import check_transform, plan_powerlaw, resolve_transform
from repro.errors import ValidationError
from repro.machine.stats import RunStats
from repro.validation import check_choice, check_start
from repro import telemetry
from repro.telemetry import flight

__all__ = [
    "ReorderResult",
    "reverse_cuthill_mckee",
    "METHODS",
    "PHASES",
    "resolve_auto_method",
]

#: wall-clock phase names of the reorder pipeline, in execution order
#: (also the telemetry span names)
PHASES = (
    "validate",
    "transform",
    "components",
    "start-selection",
    "ordering",
    "assembly",
)

#: registered RCM execution methods, snapshotted at import for backward
#: compatibility — new code should call :func:`repro.backends.names`
METHODS = backends.names()

#: relative-reduction histogram buckets (reductions live in [0, 1]; a
#: scramble-regression can go negative, caught by the implicit +Inf tail)
_REDUCTION_BUCKETS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class ReorderResult:
    """Outcome of a reordering call.

    ``permutation[k]`` is the old index placed at new position ``k`` —
    apply with :meth:`CSRMatrix.permute_symmetric`.
    """

    permutation: np.ndarray
    method: str
    start_nodes: List[int]
    component_sizes: List[int]
    initial_bandwidth: int
    reordered_bandwidth: int
    #: simulated run stats per component (batch methods only)
    stats: List[RunStats] = field(default_factory=list)
    #: wall-clock nanoseconds per pipeline phase (see :data:`PHASES`)
    phase_ns: Dict[str, int] = field(default_factory=dict)
    #: the ordering algorithm that ran (``"rcm"`` for every RCM method)
    algorithm: str = "rcm"
    #: the transformation pass that was applied (``None`` on the
    #: untransformed path — including ``transform="auto"`` resolving away)
    transform: Optional[str] = None

    @property
    def n_components(self) -> int:
        return len(self.component_sizes)

    @property
    def wall_ms(self) -> float:
        """Total measured wall milliseconds across all pipeline phases."""
        return sum(self.phase_ns.values()) / 1e6

    def to_dict(self) -> dict:
        """JSON-serializable summary (bandwidths, phases, per-component
        simulated stats)."""
        return {
            "algorithm": self.algorithm,
            "method": self.method,
            "transform": self.transform,
            "n": int(self.permutation.size),
            "n_components": self.n_components,
            "start_nodes": [int(s) for s in self.start_nodes],
            "component_sizes": [int(s) for s in self.component_sizes],
            "initial_bandwidth": int(self.initial_bandwidth),
            "reordered_bandwidth": int(self.reordered_bandwidth),
            "phase_ns": dict(self.phase_ns),
            "wall_ms": self.wall_ms,
            "stats": [st.to_dict() for st in self.stats],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReorderResult(method={self.method!r}, n={self.permutation.size}, "
            f"bw {self.initial_bandwidth} -> {self.reordered_bandwidth})"
        )


def _components_by_min_node(mat: CSRMatrix) -> List[np.ndarray]:
    """Connected components as node arrays, ordered by smallest member."""
    n = mat.n
    seen = np.zeros(n, dtype=bool)
    comps: List[np.ndarray] = []
    for seed in range(n):
        if seen[seed]:
            continue
        levels = bfs_levels(mat, seed)
        members = np.flatnonzero(levels >= 0)
        seen[members] = True
        comps.append(members.astype(np.int64))
    return comps


def _pick_start(
    mat: CSRMatrix, members: np.ndarray, start, *, prefer_hub: bool = False
) -> int:
    valence = np.diff(mat.indptr)
    if prefer_hub:
        # transformed path: a hub-first BFS keeps the level structure
        # shallow, which is the entire point of the power-law pass
        return int(members[np.argmax(valence[members])])
    if start == "min-valence":
        return int(members[np.argmin(valence[members])])
    if start == "peripheral":
        seed = int(members[np.argmin(valence[members])])
        return find_pseudo_peripheral(mat, seed).node
    raise AssertionError(start)  # pragma: no cover - validated upstream


def _prevalidate_batch(mats: List[CSRMatrix]) -> np.ndarray:
    """Run the validate phase for a whole batch in one vectorized pass.

    The batch counterpart of the validate phase in :func:`_reorder_rcm`:
    one :func:`repro.sparse.validate.check_batch` pass over the
    block-diagonal union replaces ``len(mats)`` per-matrix passes, and
    yields each matrix's initial bandwidth for free.  Callers hand those
    down as ``_initial_bw`` so the per-matrix pipeline skips the checks.
    Matrices must already be symmetrized.  When the vectorized pass finds
    the batch invalid, the per-matrix checks rerun so the error raised is
    the exact one the single-matrix path raises.
    """
    bws = check_batch(mats)
    if bws is not None:
        return bws
    for m in mats:
        validate_csr(m, require_sorted=True)
        if not is_structurally_symmetric(m):
            raise ValueError(
                "matrix pattern is not symmetric; pass symmetrize=True or call "
                "CSRMatrix.symmetrize() first"
            )
    # the vectorized pass was conservative; fall back to per-matrix metrics
    return np.fromiter(
        (bandwidth(m) for m in mats), dtype=np.int64, count=len(mats)
    )


def _reorder_rcm(
    mat: CSRMatrix,
    *,
    method: str = "serial",
    start: Union[int, str] = "min-valence",
    n_workers: int = 4,
    config: Optional[BatchConfig] = None,
    symmetrize: bool = False,
    seed: int = 0,
    transform: Optional[str] = None,
    _initial_bw: Optional[int] = None,
) -> "ReorderResult":
    """RCM pipeline implementation (no deprecation warning; see
    :func:`repro.reorder` for the public facade and parameter docs).

    ``n_workers`` is validated at the facade boundary
    (:func:`repro.facade.reorder`); this layer trusts it.  ``_initial_bw``
    is the batch path's private contract: a bandwidth precomputed by
    :func:`_prevalidate_batch` certifies the matrix already passed the
    validate phase (symmetrize included), so both are skipped here.
    """
    check_choice("method", method, backends.method_choices())
    check_start(start, mat.n)
    check_transform(transform)
    if transform is not None and isinstance(start, (int, np.integer)):
        raise ValidationError(
            "explicit start node cannot be combined with transform="
            f"{transform!r}: the transformation relabels the pattern, so "
            "node ids no longer mean what the caller intended; use a start "
            "strategy or transform=None"
        )
    tel = telemetry.get()
    phase_ns: Dict[str, int] = {p: 0 for p in PHASES}

    if _initial_bw is None:
        t_phase = time.perf_counter_ns()
        with tel.span("validate", category="api", n=mat.n, nnz=mat.nnz):
            if symmetrize:
                mat = mat.symmetrize()
            validate_csr(mat, require_sorted=True)
            if not is_structurally_symmetric(mat):
                raise ValueError(
                    "matrix pattern is not symmetric; pass symmetrize=True "
                    "or call CSRMatrix.symmetrize() first"
                )
        phase_ns["validate"] = time.perf_counter_ns() - t_phase

    # transform phase: resolve the power-law pass and, when it applies,
    # reorder the hub-first *relabeled* pattern instead — the relabeling
    # is composed back into the final permutation at assembly
    plan = None
    work = mat
    t_phase = time.perf_counter_ns()
    with tel.span(
        "transform", category="api", requested=transform or "none"
    ) as sp:
        if transform is not None:
            if resolve_transform(transform, mat) == "powerlaw":
                plan = plan_powerlaw(mat)
            if plan is not None:
                work = mat.permute_symmetric(plan.relabel)
        sp.set(
            applied=plan.kind if plan is not None else "none",
            n_hubs=plan.n_hubs if plan is not None else 0,
        )
    phase_ns["transform"] = time.perf_counter_ns() - t_phase

    t_phase = time.perf_counter_ns()
    with tel.span("components", category="api") as sp:
        comps = _components_by_min_node(work)
        sp.set(n_components=len(comps))
    phase_ns["components"] = time.perf_counter_ns() - t_phase
    if isinstance(start, (int, np.integer)):
        if len(comps) != 1:
            raise ValueError(
                "explicit start node requires a connected matrix; "
                f"found {len(comps)} components"
            )

    # auto-resolution sits after component discovery so the cost models see
    # the real (n, nnz, n_components) shape — including the largest
    # component, which bounds how much a pool dispatch can actually win
    auto_estimates: Optional[Dict[str, float]] = None
    max_component = max((int(c.size) for c in comps), default=0)
    if method == "auto":
        auto_estimates = backends.auto_estimates(
            work.n, work.nnz, len(comps),
            max_component=max_component or None,
        )
        method = min(auto_estimates, key=auto_estimates.__getitem__)
    backend = backends.get(method)

    starts: List[int] = []
    sizes: List[int] = []
    t_phase = time.perf_counter_ns()
    with tel.span("start-selection", category="api"):
        for members in comps:
            if isinstance(start, (int, np.integer)):
                starts.append(int(start))
            else:
                starts.append(
                    _pick_start(
                        work, members, start, prefer_hub=plan is not None
                    )
                )
            sizes.append(int(members.size))
    phase_ns["start-selection"] = time.perf_counter_ns() - t_phase

    perm_parts: List[np.ndarray] = []
    stats: List[RunStats] = []

    if backend.run_matrix is not None:
        t_phase = time.perf_counter_ns()
        with tel.span(
            "ordering", category="api", method=method, size=sum(sizes)
        ):
            perm_parts = list(backend.run_matrix(
                work, starts, sizes=sizes, n_workers=n_workers,
                config=config, seed=seed,
            ))
        phase_ns["ordering"] = time.perf_counter_ns() - t_phase
    else:
        for s, total in zip(starts, sizes):
            t_phase = time.perf_counter_ns()
            with tel.span("ordering", category="api", method=method, size=total):
                part, comp_stats = backend.run_component(
                    work, s, total=total, n_workers=n_workers,
                    config=config, seed=seed,
                )
            phase_ns["ordering"] += time.perf_counter_ns() - t_phase
            perm_parts.append(part)
            if comp_stats is not None:
                stats.append(comp_stats)

    if auto_estimates is not None and flight.get_recorder() is not None:
        # close the cost-model loop: what auto predicted vs. what it cost.
        # The scenario family is classified here — only when a recorder is
        # live — so the hot path never pays for classification.
        from repro.matrices.scenarios import classify

        flight.record_auto(
            n=mat.n, nnz=mat.nnz, n_components=len(comps),
            estimates=auto_estimates, chosen=method,
            actual_wall_ms=phase_ns["ordering"] / 1e6,
            max_component=max_component or None,
            scenario=classify(mat),
            transform_ms=phase_ns["transform"] / 1e6,
        )

    t_phase = time.perf_counter_ns()
    with tel.span("assembly", category="api"):
        perm = (
            np.concatenate(perm_parts) if perm_parts
            else np.zeros(0, dtype=np.int64)
        )
        if plan is not None:
            # compose the hub-first relabeling back: the permutation the
            # caller receives indexes the original matrix
            perm = plan.relabel[perm]
        init_bw = bandwidth(mat) if _initial_bw is None else int(_initial_bw)
        reord_bw = bandwidth_after(mat, perm)
        if tel.enabled:
            # per-request quality deltas: how much this request actually
            # bought (longitudinal signal for the history store / SLOs)
            if init_bw > 0:
                tel.histogram(
                    "request.bandwidth_reduction", buckets=_REDUCTION_BUCKETS
                ).observe(1.0 - reord_bw / init_bw)
            init_env = envelope_size(mat)
            if init_env > 0:
                tel.histogram(
                    "request.envelope_reduction", buckets=_REDUCTION_BUCKETS
                ).observe(1.0 - envelope_after(mat, perm) / init_env)
    phase_ns["assembly"] = time.perf_counter_ns() - t_phase

    return ReorderResult(
        permutation=perm,
        method=method,
        start_nodes=starts,
        component_sizes=sizes,
        initial_bandwidth=init_bw,
        reordered_bandwidth=reord_bw,
        stats=stats,
        phase_ns=phase_ns,
        transform=plan.kind if plan is not None else None,
    )


def reverse_cuthill_mckee(*args, **kwargs):
    """Removed pre-facade entry point — use :func:`repro.reorder`.

    Deprecated in 1.1 (with a working shim), removed in 1.2.  The facade
    call with identical semantics is
    ``repro.reorder(mat, algorithm="rcm", method="serial", ...)`` — note
    the facade's ``method`` defaults to ``"auto"`` where this entry point
    defaulted to ``"serial"``.

    .. deprecated:: 1.1
    .. versionremoved:: 1.2
       raises :class:`repro.errors.RemovedAPIError`.
    """
    from repro.errors import RemovedAPIError

    raise RemovedAPIError(
        "reverse_cuthill_mckee() was removed in 1.2; call "
        "repro.reorder(mat, algorithm='rcm', method='serial', ...) instead "
        "(method='auto' for the cost-model selector)"
    )
