"""Public RCM API: component handling, method/start selection, results.

:func:`reverse_cuthill_mckee` is what a downstream user calls: it validates
the matrix, decomposes it into connected components, picks a start node per
component (explicitly, by minimum valence, or pseudo-peripherally) and runs
the chosen algorithm variant, assembling one global permutation.

Component convention (matches SciPy's ``csgraph.reverse_cuthill_mckee``
structure): components are ordered by their smallest node id; within the
global permutation each component's RCM block is reversed *within itself*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.sparse.bandwidth import bandwidth, bandwidth_after
from repro.sparse.validate import validate_csr, is_structurally_symmetric
from repro.core.serial import rcm_serial
from repro.core.leveled import rcm_leveled
from repro.core.unordered import rcm_unordered
from repro.core.batch import run_batch_rcm, BatchResult
from repro.core.batch_gpu import run_batch_rcm_gpu
from repro.core.batches import BatchConfig
from repro.core.peripheral import find_pseudo_peripheral
from repro.machine.costmodel import CPUCostModel, GPUCostModel
from repro.machine.stats import RunStats
from repro import telemetry

__all__ = ["ReorderResult", "reverse_cuthill_mckee", "METHODS", "PHASES"]

#: wall-clock phase names of the :func:`reverse_cuthill_mckee` pipeline,
#: in execution order (also the telemetry span names)
PHASES = (
    "validate",
    "components",
    "start-selection",
    "ordering",
    "assembly",
)

METHODS = (
    "serial",
    "leveled",
    "unordered",
    "algebraic",
    "batch-basic",
    "batch-cpu",
    "batch-gpu",
    "threads",
)


@dataclass
class ReorderResult:
    """Outcome of a reordering call.

    ``permutation[k]`` is the old index placed at new position ``k`` —
    apply with :meth:`CSRMatrix.permute_symmetric`.
    """

    permutation: np.ndarray
    method: str
    start_nodes: List[int]
    component_sizes: List[int]
    initial_bandwidth: int
    reordered_bandwidth: int
    #: simulated run stats per component (batch methods only)
    stats: List[RunStats] = field(default_factory=list)
    #: wall-clock nanoseconds per pipeline phase (see :data:`PHASES`)
    phase_ns: Dict[str, int] = field(default_factory=dict)

    @property
    def n_components(self) -> int:
        return len(self.component_sizes)

    @property
    def wall_ms(self) -> float:
        """Total measured wall milliseconds across all pipeline phases."""
        return sum(self.phase_ns.values()) / 1e6

    def to_dict(self) -> dict:
        """JSON-serializable summary (bandwidths, phases, per-component
        simulated stats)."""
        return {
            "method": self.method,
            "n": int(self.permutation.size),
            "n_components": self.n_components,
            "start_nodes": [int(s) for s in self.start_nodes],
            "component_sizes": [int(s) for s in self.component_sizes],
            "initial_bandwidth": int(self.initial_bandwidth),
            "reordered_bandwidth": int(self.reordered_bandwidth),
            "phase_ns": dict(self.phase_ns),
            "wall_ms": self.wall_ms,
            "stats": [st.to_dict() for st in self.stats],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReorderResult(method={self.method!r}, n={self.permutation.size}, "
            f"bw {self.initial_bandwidth} -> {self.reordered_bandwidth})"
        )


def _components_by_min_node(mat: CSRMatrix) -> List[np.ndarray]:
    """Connected components as node arrays, ordered by smallest member."""
    n = mat.n
    seen = np.zeros(n, dtype=bool)
    comps: List[np.ndarray] = []
    for seed in range(n):
        if seen[seed]:
            continue
        levels = bfs_levels(mat, seed)
        members = np.flatnonzero(levels >= 0)
        seen[members] = True
        comps.append(members.astype(np.int64))
    return comps


def _pick_start(mat: CSRMatrix, members: np.ndarray, start) -> int:
    valence = np.diff(mat.indptr)
    if start == "min-valence":
        return int(members[np.argmin(valence[members])])
    if start == "peripheral":
        seed = int(members[np.argmin(valence[members])])
        return find_pseudo_peripheral(mat, seed).node
    raise ValueError(f"unknown start strategy {start!r}")


def reverse_cuthill_mckee(
    mat: CSRMatrix,
    *,
    method: str = "serial",
    start: Union[int, str] = "min-valence",
    n_workers: int = 4,
    config: Optional[BatchConfig] = None,
    symmetrize: bool = False,
    seed: int = 0,
) -> ReorderResult:
    """Compute a Reverse Cuthill-McKee permutation of a symmetric pattern.

    Parameters
    ----------
    mat:
        square :class:`CSRMatrix`; must be structurally symmetric unless
        ``symmetrize`` is set (then ``A | A^T`` is reordered).
    method:
        one of :data:`METHODS`.  All methods return the **identical**
        permutation (that is the paper's headline invariant); they differ in
        execution strategy and in the simulated timing statistics attached.
    start:
        an explicit node id (single-component matrices only), or a strategy:
        ``"min-valence"`` (default — deterministic and cheap) or
        ``"peripheral"`` (the paper's naive pseudo-peripheral search).
    n_workers:
        simulated worker count for the parallel methods (CPU threads;
        ignored by ``batch-gpu``, which sizes itself to the device model).
    config:
        optional :class:`BatchConfig` override for the batch methods.
    seed:
        interleaving jitter seed for the simulated methods (0 = canonical
        deterministic schedule).
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    tel = telemetry.get()
    phase_ns: Dict[str, int] = {p: 0 for p in PHASES}

    t_phase = time.perf_counter_ns()
    with tel.span("validate", category="api", n=mat.n, nnz=mat.nnz):
        if symmetrize:
            mat = mat.symmetrize()
        validate_csr(mat, require_sorted=True)
        if not is_structurally_symmetric(mat):
            raise ValueError(
                "matrix pattern is not symmetric; pass symmetrize=True or call "
                "CSRMatrix.symmetrize() first"
            )
    phase_ns["validate"] = time.perf_counter_ns() - t_phase

    t_phase = time.perf_counter_ns()
    with tel.span("components", category="api") as sp:
        comps = _components_by_min_node(mat)
        sp.set(n_components=len(comps))
    phase_ns["components"] = time.perf_counter_ns() - t_phase
    if isinstance(start, (int, np.integer)):
        if len(comps) != 1:
            raise ValueError(
                "explicit start node requires a connected matrix; "
                f"found {len(comps)} components"
            )

    perm_parts: List[np.ndarray] = []
    starts: List[int] = []
    sizes: List[int] = []
    stats: List[RunStats] = []

    for members in comps:
        t_phase = time.perf_counter_ns()
        with tel.span("start-selection", category="api"):
            if isinstance(start, (int, np.integer)):
                s = int(start)
            else:
                s = _pick_start(mat, members, start)
        phase_ns["start-selection"] += time.perf_counter_ns() - t_phase
        starts.append(s)
        sizes.append(int(members.size))
        total = int(members.size)

        t_phase = time.perf_counter_ns()
        with tel.span("ordering", category="api", method=method, size=total):
            if method == "serial":
                part = rcm_serial(mat, s)
            elif method == "leveled":
                part = rcm_leveled(mat, s).permutation
            elif method == "unordered":
                part = rcm_unordered(mat, s).permutation
            elif method == "algebraic":
                from repro.core.algebraic import rcm_algebraic

                part = rcm_algebraic(mat, s).permutation
            elif method == "batch-basic":
                cfg = config or BatchConfig(
                    early_signaling=False, overhang=False, multibatch=1
                )
                res = run_batch_rcm(
                    mat, s, model=CPUCostModel(), n_workers=n_workers,
                    config=cfg, total=total, seed=seed,
                )
                part = res.permutation
                stats.append(res.stats)
            elif method == "batch-cpu":
                res = run_batch_rcm(
                    mat, s, model=CPUCostModel(), n_workers=n_workers,
                    config=config, total=total, seed=seed,
                )
                part = res.permutation
                stats.append(res.stats)
            elif method == "batch-gpu":
                res = run_batch_rcm_gpu(mat, s, total=total, seed=seed)
                part = res.permutation
                stats.append(res.stats)
            elif method == "threads":
                from repro.core.threads import rcm_threads

                part = rcm_threads(mat, s, n_threads=n_workers, total=total)
            else:  # pragma: no cover
                raise AssertionError(method)
        phase_ns["ordering"] += time.perf_counter_ns() - t_phase
        perm_parts.append(part)

    t_phase = time.perf_counter_ns()
    with tel.span("assembly", category="api"):
        perm = (
            np.concatenate(perm_parts) if perm_parts
            else np.zeros(0, dtype=np.int64)
        )
        init_bw = bandwidth(mat)
        reord_bw = bandwidth_after(mat, perm)
    phase_ns["assembly"] = time.perf_counter_ns() - t_phase

    return ReorderResult(
        permutation=perm,
        method=method,
        start_nodes=starts,
        component_sizes=sizes,
        initial_bandwidth=init_bw,
        reordered_bandwidth=reord_bw,
        stats=stats,
        phase_ns=phase_ns,
    )
