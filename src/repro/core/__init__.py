"""The paper's contribution: serial, leveled, unordered and batch RCM.

Public entry point: :func:`repro.reorder` (see :mod:`repro.facade`).
"""

from repro.core.serial import cuthill_mckee, rcm_serial, serial_cycles
from repro.core.vectorized import (
    cuthill_mckee_vectorized,
    rcm_vectorized,
    vectorized_cycles,
)
from repro.core.batches import BatchConfig
from repro.core.batch import BatchResult, run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu, chunk_plan

__all__ = [
    "cuthill_mckee",
    "rcm_serial",
    "serial_cycles",
    "cuthill_mckee_vectorized",
    "rcm_vectorized",
    "vectorized_cycles",
    "BatchConfig",
    "BatchResult",
    "run_batch_rcm",
    "run_batch_rcm_gpu",
    "chunk_plan",
]
