"""The paper's contribution: serial, leveled, unordered and batch RCM.

Public entry point: :func:`repro.core.api.reverse_cuthill_mckee`.
"""

from repro.core.serial import cuthill_mckee, rcm_serial, serial_cycles
from repro.core.batches import BatchConfig
from repro.core.batch import BatchResult, run_batch_rcm
from repro.core.batch_gpu import run_batch_rcm_gpu, chunk_plan

__all__ = [
    "cuthill_mckee",
    "rcm_serial",
    "serial_cycles",
    "BatchConfig",
    "BatchResult",
    "run_batch_rcm",
    "run_batch_rcm_gpu",
    "chunk_plan",
]
