"""Level-synchronous vectorized RCM — the NumPy frontier kernel.

Distributed-memory RCM (Azad et al. [14]) observes that Cuthill-McKee is a
level-synchronous BFS plus a *stable* per-level sort: a FIFO queue dequeues
all of level ``d`` before any node of level ``d+1``, so the serial loop can
be replaced by whole-frontier array operations without changing a single
tie-break.  This module does exactly that:

* **frontier expansion** gathers the adjacency lists of the whole frontier
  in one shot through ``indptr``/``indices`` (no per-node Python loop);
* **child dedup** resolves the "earliest parent wins" rule with a mark
  array: positions are written back-to-front so the first occurrence in the
  concatenated (parent-major, adjacency-ordered) gather is the one that
  sticks;
* **within-level ordering** is a single stable lexicographic ``argsort`` on
  ``(parent position, valence)`` — stability supplies the adjacency-order
  tie-break, so the result is provably the serial order.

The permutation is **bit-identical** to :func:`repro.core.serial.rcm_serial`
(asserted across the whole generator suite in ``tests/test_vectorized.py``);
only the constant factor changes — interpreter-speed to NumPy-speed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.machine.costmodel import VectorizedCostModel, VECTORIZED_CPU
from repro import telemetry

__all__ = ["cuthill_mckee_vectorized", "rcm_vectorized", "vectorized_cycles"]

#: power-of-two frontier-width buckets (frontiers span 1 .. ~1e5 nodes)
_FRONTIER_BUCKETS = tuple(float(2 ** k) for k in range(18))


def cuthill_mckee_vectorized(mat: CSRMatrix, start: int) -> np.ndarray:
    """Cuthill-McKee order of the component reachable from ``start``.

    Level-synchronous NumPy implementation of Alg. 1; returns the visited
    nodes in CM order exactly as :func:`repro.core.serial.cuthill_mckee`
    would.  Reverse for RCM — see :func:`rcm_vectorized`.
    """
    n = mat.n
    if not 0 <= start < n:
        raise ValueError(f"start node {start} out of range [0, {n})")
    indptr, indices = mat.indptr, mat.indices
    valence = np.diff(indptr)

    visited = np.zeros(n, dtype=bool)
    # mark array for first-occurrence dedup; never needs resetting because a
    # node is claimed in exactly one level's expansion (then it is visited)
    claim = np.empty(n, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    order[0] = start
    visited[start] = True
    tail = 1
    frontier = np.array([start], dtype=np.int64)

    n_levels = 0
    n_gathered = 0
    widths = []

    while frontier.size:
        row_start = indptr[frontier]
        counts = indptr[frontier + 1] - row_start
        total = int(counts.sum())
        if total == 0:
            break
        # gather the adjacency lists of the whole frontier at once; ``seg``
        # is each edge's parent *position* within the frontier (= CM rank
        # order, because the frontier is stored in CM order)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        pos = np.arange(total, dtype=np.int64)
        seg = np.repeat(np.arange(frontier.size, dtype=np.int64), counts)
        gathered = indices[row_start[seg] + pos - offsets[seg]]

        fresh_mask = ~visited[gathered]
        fresh = gathered[fresh_mask]
        if fresh.size == 0:
            break
        parents = seg[fresh_mask]
        k = fresh.size
        # earliest-parent dedup: write positions back-to-front so that for a
        # node discovered by several parents the *first* occurrence (lowest
        # parent rank, then adjacency order) is the assignment that survives
        claim[fresh[::-1]] = np.arange(k - 1, -1, -1)
        is_first = claim[fresh] == np.arange(k, dtype=np.int64)
        children = fresh[is_first]
        child_parent = parents[is_first]
        # one stable lexsort: primary key parent position, secondary key
        # valence; ``children`` is already in gather (adjacency) order, so
        # stability delivers the serial tie-break for free
        take = np.lexsort((valence[children], child_parent))
        nxt = children[take]
        visited[children] = True
        order[tail : tail + nxt.size] = nxt
        tail += nxt.size
        frontier = nxt
        n_levels += 1
        n_gathered += total
        widths.append(int(nxt.size))

    tel = telemetry.get()
    if tel.enabled:
        tel.counter("vectorized.levels").add(n_levels)
        tel.counter("vectorized.edges_gathered").add(n_gathered)
        tel.counter("vectorized.nodes_ordered").add(tail)
        # per-level frontier widths: the level-structure shape is what
        # decides whether a level-synchronous kernel amortizes dispatch
        hist = tel.histogram("vectorized.frontier", buckets=_FRONTIER_BUCKETS)
        for w in widths:
            hist.observe(w)
    return order[:tail].copy()


def rcm_vectorized(mat: CSRMatrix, start: int) -> np.ndarray:
    """Reverse Cuthill-McKee order of the component reachable from
    ``start`` — bit-identical to :func:`repro.core.serial.rcm_serial`."""
    return cuthill_mckee_vectorized(mat, start)[::-1].copy()


def vectorized_cycles(
    mat: CSRMatrix,
    start: int,
    *,
    model: VectorizedCostModel = VECTORIZED_CPU,
) -> float:
    """Simulated cycle cost of the vectorized kernel on this matrix.

    The model charges a fixed dispatch overhead per BFS level (NumPy kernel
    launches) plus streaming per-edge gather/dedup work and an
    ``O(k log k)`` per-level sort — the cost profile that makes the kernel
    a poor fit for huge-diameter graphs (road networks) and a very good one
    for wide-front meshes, mirroring the paper's GPU trade-off.
    """
    from repro.sparse.graph import bfs_levels

    levels = bfs_levels(mat, start)
    reached = levels >= 0
    if not reached.any():
        return 0.0
    depth = int(levels.max())
    valence = np.diff(mat.indptr)
    widths = np.bincount(levels[reached], minlength=depth + 1)
    edges = np.bincount(
        levels[reached], weights=valence[reached].astype(np.float64),
        minlength=depth + 1,
    )
    total = 0.0
    for d in range(depth + 1):
        total += model.level(float(edges[d]), int(widths[d]))
    return total
