"""Pseudo-peripheral start-node finding (Sec. III-0d).

RCM quality depends on the start node; the conventional choice is a
*pseudo-peripheral* node.  The paper deliberately uses a naive strategy so
the comparison against MATLAB/cuSolver (which bundle node finding) stays
honest: start from a node, BFS; take a minimum-valence node of the last
level as the next start; stop when the number of levels stops growing.

``peripheral_cycles`` models the cost of the rounds — serial BFS sweeps on
the CPU, and on the GPU "our complete RCM implementation … with sorting
disabled", i.e. a parallel batch BFS whose cost we approximate as the batch
pipeline minus its sort share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels

__all__ = ["PeripheralResult", "find_pseudo_peripheral", "peripheral_cycles_serial"]


@dataclass
class PeripheralResult:
    node: int
    rounds: int
    #: eccentricity lower bound found in each round
    depths: List[int]
    #: nodes reached (same every round; the component size)
    reached: int
    #: edges scanned per BFS round (component edge count)
    edges_per_round: int


def find_pseudo_peripheral(
    mat: CSRMatrix, seed_node: int, *, max_rounds: int = 12
) -> PeripheralResult:
    """The paper's naive pseudo-peripheral search.

    Repeated BFS: each round restarts from a minimum-valence node of the
    previous round's last level; stops when two successive rounds reach the
    same depth (or ``max_rounds``).
    """
    n = mat.n
    if not 0 <= seed_node < n:
        raise ValueError("seed node out of range")
    valence = np.diff(mat.indptr)
    current = int(seed_node)
    prev_depth = -1
    depths: List[int] = []
    reached = 0
    edges = 0
    for _ in range(max_rounds):
        levels = bfs_levels(mat, current)
        depth = int(levels.max())
        depths.append(depth)
        in_comp = levels >= 0
        reached = int(in_comp.sum())
        edges = int(valence[in_comp].sum())
        if depth <= prev_depth:
            break
        last = np.flatnonzero(levels == depth)
        # minimum valence on the last level; ties -> smallest id (determinism)
        current = int(last[np.argmin(valence[last])])
        prev_depth = depth
    return PeripheralResult(
        node=current,
        rounds=len(depths),
        depths=depths,
        reached=reached,
        edges_per_round=edges,
    )


def peripheral_cycles_serial(result: PeripheralResult, model) -> float:
    """Cycle cost of the rounds as plain serial BFS sweeps."""
    per_round = (
        result.reached * model.cycles_per_node
        + result.edges_per_round * model.cycles_per_edge
    )
    return result.rounds * per_round
