"""Parallel pseudo-peripheral node finding via batch BFS (Sec. VII).

The paper: "Similar strategies as we use for RCM are viable for pseudo-
peripheral node finding.  Directly applying our RCM approach as BFS
replacement already achieved good performance."  With per-parent sorting
disabled the batch framework computes exactly the FIFO BFS order, so each
round of the naive peripheral search runs as a parallel batch BFS on the
simulated device — this is how the GPU versions in Fig. 4 find their start
node.

``find_pseudo_peripheral_parallel`` mirrors the serial logic of
:mod:`repro.core.peripheral` but accumulates simulated parallel cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.graph import bfs_levels
from repro.core.batch import run_batch_rcm
from repro.core.batches import BatchConfig
from repro.core.peripheral import PeripheralResult

__all__ = ["ParallelPeripheralResult", "batch_bfs", "find_pseudo_peripheral_parallel"]


@dataclass
class ParallelPeripheralResult:
    """Peripheral search outcome plus the simulated parallel cost."""

    result: PeripheralResult
    cycles: float
    clock_ghz: float

    @property
    def node(self) -> int:
        return self.result.node

    @property
    def milliseconds(self) -> float:
        return self.cycles / (self.clock_ghz * 1e6)


def batch_bfs(
    mat: CSRMatrix,
    start: int,
    *,
    model,
    n_workers: int,
    total: Optional[int] = None,
    config: Optional[BatchConfig] = None,
):
    """One parallel BFS via the batch framework (sorting disabled).

    Returns the :class:`~repro.core.batch.BatchResult`; the permutation is
    the *reversed* FIFO BFS order of the component (children per parent in
    adjacency order — compare :func:`repro.sparse.graph.bfs_order`).
    """
    if config is None:
        config = BatchConfig(
            temp_limit=model.temp_limit,
            gpu_planning=not getattr(model, "supports_temp_overflow", True),
            sort_children=False,
        )
    elif config.sort_children:
        raise ValueError("batch_bfs requires a config with sort_children=False")
    return run_batch_rcm(
        mat, start, model=model, n_workers=n_workers, config=config, total=total
    )


def find_pseudo_peripheral_parallel(
    mat: CSRMatrix,
    seed_node: int,
    *,
    model,
    n_workers: int,
    max_rounds: int = 12,
) -> ParallelPeripheralResult:
    """The naive peripheral search with every BFS round run in parallel.

    The level decisions (depth, last level, minimum-valence candidate) are
    taken from an untimed level computation — structurally identical to what
    the batch BFS discovered — while the *cost* of each round is the
    simulated makespan of the batch BFS.
    """
    n = mat.n
    if not 0 <= seed_node < n:
        raise ValueError("seed node out of range")
    valence = np.diff(mat.indptr)
    total = int((bfs_levels(mat, seed_node) >= 0).sum())

    current = int(seed_node)
    prev_depth = -1
    depths: List[int] = []
    cycles = 0.0
    reached = 0
    edges = 0
    for _ in range(max_rounds):
        res = batch_bfs(mat, current, model=model, n_workers=n_workers, total=total)
        cycles += res.stats.makespan
        levels = bfs_levels(mat, current)
        depth = int(levels.max())
        depths.append(depth)
        in_comp = levels >= 0
        reached = int(in_comp.sum())
        edges = int(valence[in_comp].sum())
        if depth <= prev_depth:
            break
        last = np.flatnonzero(levels == depth)
        current = int(last[np.argmin(valence[last])])
        prev_depth = depth
    result = PeripheralResult(
        node=current,
        rounds=len(depths),
        depths=depths,
        reached=reached,
        edges_per_round=edges,
    )
    return ParallelPeripheralResult(
        result=result, cycles=cycles, clock_ghz=model.clock_ghz
    )
