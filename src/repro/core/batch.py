"""Batch-based parallel RCM (Alg. 4 "basic" and Alg. 5 "full").

Both variants run as coroutines on the simulated machine
(:mod:`repro.machine.engine`).  One :func:`batch_task` generator implements
the complete per-batch protocol; :class:`~repro.core.batches.BatchConfig`
selects between the basic version (signal only at the fixed points, no
overhangs, blocking waits) and the full version (early/late signaling, work
aggregation via overhangs, multi-batch execution).

The coroutine follows Alg. 5 line-by-line; comments reference the paper's
line numbers.  Every run produces the exact serial permutation — the
test-suite fuzzes this with randomized interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

import numpy as np

from repro.core.state import BatchRunState, make_state
from repro.core.discovery import DiscoveredChildren, discover, rediscover, sort_children
from repro.core.batches import (
    BatchConfig,
    BatchPlan,
    clamped_valences,
    estimate_batch_count,
    plan_ranges,
)
from repro.machine.engine import Engine, DeadlockError
from repro.machine.signals import SignalState, SignalPayload
from repro.machine.stats import RunStats, Stage
from repro.machine.workqueue import BatchSlot
from repro.sparse.csr import CSRMatrix
from repro import telemetry

__all__ = ["BatchResult", "batch_task", "worker_loop", "run_batch_rcm"]

DISCOVERED = SignalState.DISCOVERED
COUNTED = SignalState.COUNTED
COMPLETED = SignalState.COMPLETED


@dataclass
class BatchResult:
    """Permutation plus everything the simulator measured."""

    permutation: np.ndarray
    stats: RunStats
    config: BatchConfig
    n_workers: int
    clock_ghz: float

    @property
    def makespan_cycles(self) -> float:
        return self.stats.makespan

    @property
    def milliseconds(self) -> float:
        """Simulated wall time (makespan over parallel workers)."""
        return self.stats.milliseconds(self.clock_ghz)


# ----------------------------------------------------------------------
# per-batch protocol
# ----------------------------------------------------------------------
def _signal_count(
    state: BatchRunState,
    cfg: BatchConfig,
    slot: BatchSlot,
    children: DiscoveredChildren,
) -> Optional[BatchPlan]:
    """The paper's ``signalCount`` (Alg. 5 lines 32-40).

    Requires the incoming signal to be at least ``Counted`` (our exact output
    position is known) and our own discovery to be exact.  Decides overhang
    forwarding, reserves child-batch queue slots via the ``queue_next``
    arithmetic and raises the outgoing signal to ``Counted`` (overhang
    pending) or ``Completed`` (nothing pending).
    """
    i = slot.index
    if state.signals.incoming_state(i) < COUNTED:
        return None
    payload = state.signals.incoming_payload(i)

    count = children.n_alive
    val_sum = int(clamped_valences(children.alive_valences(), cfg.temp_limit).sum())
    m_total = count + payload.overhang_nodes
    v_total = val_sum + payload.overhang_valence
    out_start = payload.out_next
    out_end = out_start + count
    gen_start = payload.overhang_start if payload.has_overhang() else out_start

    successor_exists = payload.queue_next > i + 1
    forward = (
        cfg.overhang
        and successor_exists
        and m_total > 0
        and 2 * m_total < cfg.batch_size
        and 2 * v_total < cfg.temp_limit
    )
    k = 0 if (forward or m_total == 0) else estimate_batch_count(m_total, v_total, cfg)

    out_payload = SignalPayload(
        out_next=out_end,
        queue_next=payload.queue_next + k,
    )
    if forward:
        out_payload.overhang_start = gen_start
        out_payload.overhang_end = out_end
        out_payload.overhang_valence = v_total
        state.signals.send(i, COUNTED, out_payload)
        state.stats.overhangs_forwarded += 1
        state.stats.overhang_nodes += m_total
    else:
        # Completed subsumes Counted: no unwritten overhang reaches past us
        # for batch-building purposes (Alg. 5 line 39 "no need to wait")
        state.signals.send(i, COMPLETED, out_payload)
    return BatchPlan(
        count=count,
        out_start=out_start,
        gen_start=gen_start,
        valence_total=v_total,
        forward=forward,
        k=k,
        queue_start=payload.queue_next,
    )


def batch_task(
    state: BatchRunState,
    cfg: BatchConfig,
    model,
    engine: Engine,
    slot: BatchSlot,
    device: int = 0,
) -> Generator:
    """Process one batch: Alg. 5 (or Alg. 4 when early signaling is off).

    ``device`` identifies the executing device in the multi-device
    extension: signal reads from a predecessor on another device pay the
    topology's interconnect latency, and discovery atomics a remote-memory
    surcharge.
    """
    i = slot.index
    is_gpu = cfg.gpu_planning
    signals = state.signals
    if state.slot_device is not None:
        state.slot_device[i] = device

    def signal_read_cost() -> float:
        cost = model.signal_read()
        topo = state.topology
        if topo is not None and i > 0:
            pred_dev = state.slot_device.get(i - 1, device)
            if pred_dev != device:
                cost += topo.cross_signal_cycles
        return cost

    parents = state.out[slot.out_start : slot.out_end]
    state.log_phase(engine.now, i, "speculative discovery")
    yield ("cost", Stage.DISCOVER, model.batch_setup(parents.size))

    if not cfg.speculate:
        # ablation: non-speculative discovery — serialize on the chain
        yield ("wait", lambda: signals.incoming_state(i) >= DISCOVERED)

    # --- discovery (Alg. 5 lines 2-4) ---------------------------------
    s_early = signals.incoming_state(i)
    yield ("cost", Stage.SIGNAL, signal_read_cost())
    children = discover(state, i, parents)
    if is_gpu:
        cost = model.discover(
            parents.size,
            children.n_edges,
            children.n_found,
            engine.active,
            max_children=children.max_children,
        )
        cost += _gpu_chunk_cost(state, cfg, model, parents, children)
    else:
        cost = model.discover(
            parents.size, children.n_edges, children.n_found, engine.active
        )
    if state.topology is not None:
        cost *= state.topology.atomic_surcharge()
    yield ("cost", Stage.DISCOVER, cost)
    s_mid = signals.incoming_state(i)
    yield ("cost", Stage.SIGNAL, signal_read_cost())

    plan: Optional[BatchPlan] = None
    exact = False
    if cfg.early_signaling:
        if s_early >= DISCOVERED:
            # lines 5-7: predecessors were done before we started — our
            # discovery is exact, forward the chain immediately
            signals.send(i, DISCOVERED)
            yield ("cost", Stage.SIGNAL, model.signal_send())
            exact = True
            plan = _signal_count(state, cfg, slot, children)
            yield (
                "cost",
                Stage.SIGNAL,
                model.count_batches(children.n_found)
                if plan is not None
                else model.signal_read(),
            )
        elif s_mid >= DISCOVERED:
            # lines 8-12: predecessors finished during our discovery; our
            # marks are in place so the chain moves on, but we must
            # rediscover (densely, before sorting)
            s_early = s_mid
            signals.send(i, DISCOVERED)
            yield ("cost", Stage.SIGNAL, model.signal_send())
            checked = rediscover(state, i, children, compact=True)
            yield ("cost", Stage.REDISCOVER, model.rediscover(checked))
            exact = True
            plan = _signal_count(state, cfg, slot, children)
            yield (
                "cost",
                Stage.SIGNAL,
                model.count_batches(children.n_found)
                if plan is not None
                else model.signal_read(),
            )

    # --- speculative sorting (line 13) ---------------------------------
    if cfg.sort_children:
        k_sorted = sort_children(state, children)
        yield ("cost", Stage.SORT, model.sort(k_sorted))
    else:
        # BFS mode (parallel pseudo-peripheral finding): children stay in
        # per-parent adjacency order — the FIFO BFS visitation order
        yield ("cost", Stage.SORT, 10.0)

    # --- wait(Discovered), late rediscovery (lines 14-19) ---------------
    yield ("wait", lambda: signals.incoming_state(i) >= DISCOVERED)
    state.log_phase(engine.now, i, "discovery")
    if state.topology is not None:
        # cross-device signal pickup: busy-wait polling is covered by the
        # stall time, but the final read crossing an interconnect is not
        yield ("cost", Stage.SIGNAL, signal_read_cost())
    if not exact:
        if cfg.early_signaling:
            # Alg. 5 order: forward the chain first, rediscover lazily
            # (flag only, compact while writing output)
            if signals.outgoing_state(i) < DISCOVERED:
                signals.send(i, DISCOVERED)
                yield ("cost", Stage.SIGNAL, model.signal_send())
            checked = rediscover(state, i, children, compact=False)
            yield ("cost", Stage.REDISCOVER, model.rediscover(checked))
            plan = _signal_count(state, cfg, slot, children)
            yield (
                "cost",
                Stage.SIGNAL,
                model.count_batches(children.n_found)
                if plan is not None
                else model.signal_read(),
            )
        else:
            # Alg. 4 order: rediscover, then signal — successors wait longer
            checked = rediscover(state, i, children, compact=True)
            yield ("cost", Stage.REDISCOVER, model.rediscover(checked))
            signals.send(i, DISCOVERED)
            yield ("cost", Stage.SIGNAL, model.signal_send())
        exact = True

    # --- wait(Counted) (lines 20-23) -------------------------------------
    yield ("wait", lambda: signals.incoming_state(i) >= COUNTED)
    if state.topology is not None:
        # cross-device signal pickup: busy-wait polling is covered by the
        # stall time, but the final read crossing an interconnect is not
        yield ("cost", Stage.SIGNAL, signal_read_cost())
    if plan is None:
        plan = _signal_count(state, cfg, slot, children)
        yield ("cost", Stage.SIGNAL, model.count_batches(children.n_found))
        assert plan is not None, "incoming Counted but signalCount failed"

    # --- output (lines 24-27) ---------------------------------------------
    state.log_phase(engine.now, i, "output")
    confirmed = children.alive_nodes()
    state.write_output(plan.out_start, confirmed)
    yield ("cost", Stage.ADD_BATCHES, model.output_write(confirmed.size))

    # --- wait(Completed), overhang chaining (lines 28-30) -------------------
    yield ("wait", lambda: signals.incoming_state(i) >= COMPLETED)
    if state.topology is not None:
        # cross-device signal pickup: busy-wait polling is covered by the
        # stall time, but the final read crossing an interconnect is not
        yield ("cost", Stage.SIGNAL, signal_read_cost())
    if plan.forward:
        signals.send(i, COMPLETED)
        yield ("cost", Stage.SIGNAL, model.signal_send())

    # --- addNewBatches (line 31) ----------------------------------------------
    if not plan.forward and plan.k > 0:
        gen_nodes = state.out[plan.gen_start : plan.out_end]
        cvals = clamped_valences(state.valence[gen_nodes], cfg.temp_limit)
        ranges = plan_ranges(cvals, plan.k, cfg)
        for j, (a, b) in enumerate(ranges):
            state.queue.fill(
                plan.queue_start + j,
                plan.gen_start + a,
                plan.gen_start + b,
                empty=(a == b),
            )
        yield ("cost", Stage.ADD_BATCHES, model.add_batches(plan.k, engine.active))
    state.log_phase(engine.now, i, "completed")
    if not slot.empty:
        state.queue.mark_executed()


def _gpu_chunk_cost(
    state: BatchRunState,
    cfg: BatchConfig,
    model,
    parents: np.ndarray,
    children: DiscoveredChildren,
) -> float:
    """Extra cost of scratchpad-overflow chunking (Sec. V-B).

    Only single-parent batches can overflow (the planner isolates oversized
    nodes).  A counting pass plus valence histogram decides whether the
    found children fit; otherwise processing is chunked by valence range,
    with hierarchical histogram refinement when a bin overflows.
    """
    if parents.size != 1 or children.n_found <= cfg.temp_limit:
        return 0.0
    from repro.core.batch_gpu import chunk_plan  # local import: optional path

    plan = chunk_plan(children.valences, cfg.temp_limit, model.histogram_bins)
    state.stats.chunked_batches += 1
    state.stats.histogram_refinements += plan.refinements
    cost = model.histogram(children.n_found)
    for size in plan.chunk_sizes:
        cost += model.chunk_pass(size)
    return cost


# ----------------------------------------------------------------------
# worker loop (multi-batch execution, Sec. IV-D)
# ----------------------------------------------------------------------
@dataclass
class _Parked:
    slot_index: int
    gen: Generator
    pred: Callable[[], bool]


def _drive(gen: Generator, slot_index: int, preempt: Optional[Callable[[int], bool]] = None):
    """Run a batch coroutine until it finishes, blocks, or is preempted.

    Cost events are forwarded to the engine; a ``wait`` whose predicate is
    already true is consumed silently.  After every completed stage the
    ``preempt`` callback may hand control back to an *older* runnable batch
    (the paper: "we switch back to the previous batch when reaching a wait
    point") — older batches gate the signal chain, so they take priority.
    Returns a :class:`_Parked` when the task blocks or is preempted
    (``pred`` is always-true in the preempted case), ``None`` when finished.
    """
    while True:
        try:
            ev = next(gen)
        except StopIteration:
            return None
        if ev[0] == "wait":
            if not ev[1]():
                return _Parked(slot_index, gen, ev[1])
            continue
        yield ev
        if preempt is not None and preempt(slot_index):
            return _Parked(slot_index, gen, lambda: True)


def worker_loop(
    state: BatchRunState,
    cfg: BatchConfig,
    model,
    engine: Engine,
    device: int = 0,
) -> Generator:
    """One simulated worker: take batches in order, park blocked ones.

    With ``cfg.multibatch == 1`` a blocked batch simply keeps the worker
    (blocking waits, the basic version); larger values let the worker draw
    new batches while earlier ones wait for signals, resuming the earliest
    runnable batch first.
    """
    tasks: List[_Parked] = []
    queue = state.queue

    def preempt(current_index: int) -> bool:
        """Preempt in favour of an older (chain-critical) runnable batch."""
        return any(t.slot_index < current_index and t.pred() for t in tasks)

    while True:
        # 1) resume the earliest runnable parked batch
        runnable = None
        for t in tasks:
            if t.pred():
                runnable = t
                break
        if runnable is not None:
            tasks.remove(runnable)
            parked = yield from _drive(runnable.gen, runnable.slot_index, preempt)
            if parked is not None:
                tasks.append(parked)
                tasks.sort(key=lambda t: t.slot_index)
            continue
        # 2) draw a new batch when capacity allows
        if len(tasks) < cfg.multibatch and not queue.done:
            if queue.head_ready():
                yield ("cost", Stage.STALL, model.fetch(engine.active))
                slot = queue.take_next()
                if slot is None:
                    continue  # termination or lost the head meanwhile
                gen = batch_task(state, cfg, model, engine, slot, device)
                parked = yield from _drive(gen, slot.index, preempt)
                if parked is not None:
                    tasks.append(parked)
                    tasks.sort(key=lambda t: t.slot_index)
                continue
            if not tasks:
                # idle: wait for work or termination
                yield ("wait", lambda: queue.head_ready() or queue.done)
                if queue.done and not queue.head_ready():
                    return
                continue
        # 3) everything parked (or queue exhausted): exit or block
        if not tasks:
            if queue.done:
                return
            yield ("wait", lambda: queue.head_ready() or queue.done)
            continue
        preds = [t.pred for t in tasks]
        can_draw = len(tasks) < cfg.multibatch

        def blocked_pred(preds=preds, can_draw=can_draw):
            if any(p() for p in preds):
                return True
            if can_draw and not queue.done and queue.head_ready():
                return True
            if queue.done and can_draw:
                # no new work will ever arrive for this worker beyond fills
                # that would satisfy head_ready; parked preds drive progress
                return any(p() for p in preds)
            return False

        yield ("wait", blocked_pred)


# ----------------------------------------------------------------------
# public runner
# ----------------------------------------------------------------------
def run_batch_rcm(
    mat: CSRMatrix,
    start: int,
    *,
    model,
    n_workers: int,
    config: Optional[BatchConfig] = None,
    total: Optional[int] = None,
    jitter: float = 0.0,
    seed: int = 0,
    trace: bool = False,
    topology=None,
) -> BatchResult:
    """Run batch RCM on the simulated machine and return permutation+stats.

    ``model`` is a :class:`~repro.machine.costmodel.CPUCostModel` or
    :class:`~repro.machine.costmodel.GPUCostModel`; ``config`` defaults to
    the full algorithm with the model's scratchpad size.  A
    :class:`~repro.machine.multidevice.DeviceTopology` partitions the
    workers across devices (``n_workers`` must then equal its total) and
    charges interconnect costs on cross-device signals and atomics.
    """
    if topology is not None and topology.total_workers != n_workers:
        raise ValueError(
            f"topology provides {topology.total_workers} workers, "
            f"got n_workers={n_workers}"
        )
    if config is None:
        config = BatchConfig(
            temp_limit=model.temp_limit,
            gpu_planning=not getattr(model, "supports_temp_overflow", True),
        )
    state = make_state(
        mat, start, n_workers=n_workers, total=total, topology=topology
    )
    engine = Engine(
        n_workers, state.stats, jitter=jitter, seed=seed, trace=trace
    )
    workers = [
        worker_loop(
            state, config, model, engine,
            topology.device_of(w) if topology is not None else 0,
        )
        for w in range(n_workers)
    ]
    tel = telemetry.get()
    with tel.span(
        "run_batch_rcm", category="sim", n=mat.n, n_workers=n_workers
    ) as sp:
        engine.run(workers)
        sp.set(makespan_cycles=state.stats.makespan)
    state.sync_queue_stats()
    if tel.enabled:
        # unify simulated counters with the process-wide registry so real
        # and simulated runs report through one snapshot
        tel.metrics.absorb_run_stats(state.stats)
    return BatchResult(
        permutation=state.permutation(),
        stats=state.stats,
        config=config,
        n_workers=n_workers,
        clock_ghz=model.clock_ghz,
    )
