"""Linear-algebra-based RCM (Azad, Jacquelin, Buluç, Ng — IPDPS 2017).

The paper's Sec. VI-B compares against "the linear algebra-based RCM
version [14]" on nlpkkt240: that implementation needs 3.2 s on 54 cores and
1.2 s on 4056 cores where CPU-BATCH needs 0.9 s on 24 threads.  Reference
[14] formulates RCM as sparse matrix-vector products over a semiring — the
GraphBLAS style: each BFS level is one SpMV with a (min, select-parent)
semiring that simultaneously discovers children and assigns each to its
minimum-ordered parent, followed by a distributed sort of the level.

This module implements that formulation (vectorized NumPy standing in for
the semiring SpMV) with the exact serial tie-breaking, plus a
distributed-memory cost model: per level, every process handles ``1/P`` of
the frontier's edges but pays an all-to-all exchange and a collective sort
— the per-level latency floor that forces [14] onto thousands of cores to
compete, which is precisely the effect the paper's comparison highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["AlgebraicResult", "rcm_algebraic", "algebraic_cycles", "DistributedModel"]


@dataclass
class LevelOps:
    """Work of one semiring-SpMV iteration (cost-model input)."""

    frontier: int          # nnz of the frontier vector
    edges: int             # flops of the masked SpMV
    children: int          # nnz of the output vector
    sort_keys: int         # elements in the level sort


@dataclass
class AlgebraicResult:
    permutation: np.ndarray
    levels: List[LevelOps]

    @property
    def depth(self) -> int:
        return len(self.levels)


def rcm_algebraic(mat: CSRMatrix, start: int) -> AlgebraicResult:
    """RCM via semiring SpMV iterations; equals serial RCM exactly.

    Per iteration, with frontier vector ``f`` holding each frontier node's
    output position:

    * ``c = A ⊗ f`` over the (min, select-parent) semiring, masked by the
      complement of the visited set — each unvisited child receives the
      minimum (parent position, adjacency position) pair;
    * the level is sorted by (parent position, valence, adjacency position)
      — the serial FIFO emission order — and appended to the output.
    """
    n = mat.n
    if not 0 <= start < n:
        raise ValueError("start node out of range")
    indptr, indices = mat.indptr, mat.indices
    valence = np.diff(indptr)

    pos = np.full(n, -1, dtype=np.int64)  # output position (visited mask)
    pos[start] = 0
    frontier = np.array([start], dtype=np.int64)
    out_parts = [frontier.copy()]
    written = 1
    levels: List[LevelOps] = []

    while frontier.size:
        # ---- semiring SpMV: gather all (parent, adjpos, child) triples of
        # the frontier rows in one shot -----------------------------------
        starts = indptr[frontier]
        degs = indptr[frontier + 1] - starts
        total = int(degs.sum())
        if total == 0:
            levels.append(LevelOps(int(frontier.size), 0, 0, 0))
            break
        offsets = np.concatenate([[0], np.cumsum(degs)])
        flat = np.arange(total, dtype=np.int64)
        seg = np.searchsorted(offsets, flat, side="right") - 1
        adjpos = flat - offsets[seg]
        children = indices[starts[seg] + adjpos]
        parent_pos = pos[frontier[seg]]

        # mask: drop already-visited children (the complemented mask of [14])
        fresh = pos[children] < 0
        c_children = children[fresh]
        c_ppos = parent_pos[fresh]
        c_adjpos = adjpos[fresh]
        if c_children.size == 0:
            levels.append(LevelOps(int(frontier.size), total, 0, 0))
            break

        # (min, select-parent) reduction per child
        order = np.lexsort((c_adjpos, c_ppos, c_children))
        c_children = c_children[order]
        c_ppos = c_ppos[order]
        c_adjpos = c_adjpos[order]
        keep = np.ones(c_children.size, dtype=bool)
        keep[1:] = c_children[1:] != c_children[:-1]
        c_children = c_children[keep]
        c_ppos = c_ppos[keep]
        c_adjpos = c_adjpos[keep]

        # level sort = serial FIFO emission order
        emit = np.lexsort((c_adjpos, valence[c_children], c_ppos))
        level_nodes = c_children[emit]
        pos[level_nodes] = written + np.arange(level_nodes.size, dtype=np.int64)
        written += int(level_nodes.size)
        out_parts.append(level_nodes)
        levels.append(
            LevelOps(int(frontier.size), total, int(level_nodes.size),
                     int(level_nodes.size))
        )
        frontier = level_nodes

    cm = np.concatenate(out_parts)
    return AlgebraicResult(permutation=cm[::-1].copy(), levels=levels)


@dataclass(frozen=True)
class DistributedModel:
    """Distributed-memory cost parameters (MPI-flavoured, cycles @4 GHz).

    Each semiring SpMV is a 2-D SpMV: local flops divide by P, but the
    frontier must be exchanged (alltoall across ``sqrt(P)`` process
    columns) and the level sort is a collective.  Latency terms carry the
    ``log P`` of tree collectives; the constants approximate a commodity
    interconnect (~1.5 µs MPI latency, ~10 GB/s per link).
    """

    clock_ghz: float = 4.0
    flop_cycles: float = 10.0           # per masked-SpMV edge, local
    latency_cycles: float = 6_000.0     # per collective hop (~1.5 µs)
    word_cycles: float = 1.6            # per 8-byte word through the network
    sort_cycles: float = 60.0           # per key in the distributed sort
    collectives_per_level: float = 4.0  # frontier exchange, mask, sort, scan

    def level_cost(self, ops: LevelOps, p: int) -> float:
        """Cycles of one semiring-SpMV level on ``p`` processes."""
        root_p = max(math.sqrt(p), 1.0)
        local = ops.edges * self.flop_cycles / p
        comm_volume = (ops.frontier + ops.children) * self.word_cycles / root_p
        latency = self.collectives_per_level * self.latency_cycles * math.log2(max(p, 2))
        sort = (
            ops.sort_keys * self.sort_cycles / p
            + self.latency_cycles * math.log2(max(p, 2))
        )
        return local + comm_volume + latency + sort


def algebraic_cycles(
    result: AlgebraicResult,
    n_processes: int,
    model: DistributedModel = DistributedModel(),
) -> float:
    """Total cycles of the distributed algebraic RCM on ``n_processes``."""
    if n_processes < 1:
        raise ValueError("need at least one process")
    return float(
        sum(model.level_cost(ops, n_processes) for ops in result.levels)
    )
