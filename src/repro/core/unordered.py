"""Unordered RCM (Alg. 3) — the producer/consumer baseline (Reorderlib).

Karantasis et al. first run a *speculative unordered BFS* to label every node
with its level, then assign one thread per level: thread ``l`` consumes the
nodes of level ``l`` in output order as thread ``l-1`` produces them, sorts
each node's children and forwards them.  Output offsets per level are known
from the BFS, so levels write independently.

The produced ordering is serial RCM (per-parent processing in arrival order
is exactly the FIFO).  We compute the permutation via the serial kernel and
model the *timing* as a two-phase pipeline:

* phase 1 — speculative BFS: several relaxation sweeps over all edges,
  parallel over ``W`` workers, plus one synchronization per round;
* phase 2 — pipeline: thread ``l`` cannot finish before thread ``l-1``
  finished feeding it, nor before it has processed its own level's work.

The paper observes Reorderlib "always falls short of CPU-RCM" — the BFS
pre-pass costs a full extra traversal and the pipeline's concurrency is
bounded by the number of simultaneously active levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.core.serial import cuthill_mckee
from repro.machine.costmodel import CPUCostModel

__all__ = ["UnorderedResult", "rcm_unordered", "unordered_cycles"]


@dataclass
class UnorderedResult:
    permutation: np.ndarray
    #: per-level (parents, edges, children) work triples
    level_parents: np.ndarray
    level_edges: np.ndarray
    level_children: np.ndarray
    bfs_rounds: int


def rcm_unordered(mat: CSRMatrix, start: int, *, bfs_rounds: int = 3) -> UnorderedResult:
    """Run unordered RCM; permutation equals serial RCM by construction.

    ``bfs_rounds`` models how many relaxation sweeps the speculative BFS
    needs before levels stabilize (structure dependent; 2-4 is typical).
    """
    order = cuthill_mckee(mat, start)
    indptr = mat.indptr
    # reconstruct level structure along the CM order
    n = mat.n
    levels = np.full(n, -1, dtype=np.int64)
    levels[start] = 0
    indices = mat.indices
    for p in order:
        lp = levels[p]
        ch = indices[indptr[p] : indptr[p + 1]]
        unl = ch[levels[ch] < 0]
        levels[unl] = lp + 1
    reached = levels[order]
    depth = int(reached.max()) + 1
    level_parents = np.bincount(reached, minlength=depth)
    degs = np.diff(indptr)[order]
    level_edges = np.bincount(reached, weights=degs.astype(np.float64), minlength=depth).astype(np.int64)
    level_children = np.zeros(depth, dtype=np.int64)
    level_children[: depth - 1] = level_parents[1:]
    return UnorderedResult(
        permutation=order[::-1].copy(),
        level_parents=level_parents,
        level_edges=level_edges,
        level_children=level_children,
        bfs_rounds=bfs_rounds,
    )


#: per-node producer→consumer handover (enqueue + wake + dequeue); the
#: dominant overhead of the scheme per the paper's Reorderlib measurements
HANDOVER_CYCLES = 290.0
#: speculative BFS scales poorly (relaxation conflicts); effective workers cap
BFS_EFFECTIVE_WORKERS = 6


def unordered_cycles(
    result: UnorderedResult,
    model: CPUCostModel,
    n_workers: int,
) -> float:
    """Analytic cycle cost: speculative BFS + per-level pipeline makespan.

    Calibration anchors (Table I): Reorderlib "always falls short of
    CPU-RCM", typically 2-8× behind, with the gap narrowing on the largest
    matrices where the BFS pre-pass amortizes.
    """
    edges_total = float(result.level_edges.sum())
    depth = result.level_parents.size

    # ---- phase 1: speculative parallel BFS ----------------------------
    eff_bfs = float(min(n_workers, BFS_EFFECTIVE_WORKERS))
    bfs = (
        result.bfs_rounds
        * edges_total
        * (model.discover_edge_cycles + model.atomic_cycles * model.contention(n_workers))
        / eff_bfs
        + depth * 400.0
    )

    # ---- phase 2: producer/consumer pipeline ---------------------------
    # thread l's work: scan its level's edges, sort children per parent,
    # write output and hand every node over to the next level's thread
    work = np.zeros(depth)
    for l in range(depth):
        e = float(result.level_edges[l])
        k = float(result.level_children[l])
        p = float(result.level_parents[l])
        per_parent = k / p if p else 0.0
        sort = k * model.sort_element_cycles * np.log2(max(per_parent, 2.0))
        work[l] = (
            p * model.discover_parent_cycles
            + e * model.discover_edge_cycles
            + sort
            + k * model.output_node_cycles
            + (k + p) * HANDOVER_CYCLES
        )
    # pipeline recurrence: level l starts once its first input arrived and
    # finishes no earlier than its producer's finish plus its dependent tail
    finish = 0.0
    start_t = 0.0
    for l in range(depth):
        p = float(result.level_parents[l])
        tail = work[l] / max(p, 1.0)
        start_t = start_t + tail  # first node of level l available
        finish = max(start_t + work[l], finish + tail)
    # concurrency never exceeds the worker count
    serial_sum = float(work.sum())
    finish = max(finish, serial_sum / max(n_workers, 1))
    return bfs + finish
