"""Sequential Reverse Cuthill-McKee (Alg. 1) — the ground truth.

Every parallel variant in this package must produce *exactly* this ordering
(the paper: "the resulting RCM permutation is identical to the ground-truth
single-threaded algorithm").  The deterministic tie-break rule is therefore
part of the specification:

* children of each dequeued parent are gathered in adjacency-list order
  (rows store sorted column indices, so that is ascending node id);
* they are sorted by valence with a **stable** sort, so equal-valence
  children keep adjacency order;
* a node adjacent to several already-ordered parents belongs to the parent
  that appears *earliest* in the output.

``valence`` is the paper's ``r[n+1] - r[n]``: the full stored row length
(including any explicit diagonal), not the visited-only degree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.machine.costmodel import SerialCostModel, SERIAL_CPU

__all__ = ["cuthill_mckee", "rcm_serial", "serial_cycles"]


def cuthill_mckee(mat: CSRMatrix, start: int) -> np.ndarray:
    """Cuthill-McKee order of the component reachable from ``start``.

    Returns the visited nodes in CM order (start node first).  Reverse the
    result for RCM — see :func:`rcm_serial`.
    """
    n = mat.n
    if not 0 <= start < n:
        raise ValueError(f"start node {start} out of range [0, {n})")
    indptr, indices = mat.indptr, mat.indices
    valence = np.diff(indptr)

    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    order[0] = start
    visited[start] = True
    head, tail = 0, 1
    while head < tail:
        p = order[head]
        head += 1
        children = indices[indptr[p] : indptr[p + 1]]
        fresh = children[~visited[children]]
        if fresh.size == 0:
            continue
        visited[fresh] = True
        # stable sort on valence keeps adjacency order among ties
        sorted_children = fresh[np.argsort(valence[fresh], kind="stable")]
        order[tail : tail + sorted_children.size] = sorted_children
        tail += sorted_children.size
    return order[:tail].copy()


def rcm_serial(mat: CSRMatrix, start: int) -> np.ndarray:
    """Reverse Cuthill-McKee order of the component reachable from ``start``."""
    return cuthill_mckee(mat, start)[::-1].copy()


def serial_cycles(
    mat: CSRMatrix,
    order: Optional[np.ndarray] = None,
    *,
    start: Optional[int] = None,
    model: SerialCostModel = SERIAL_CPU,
) -> float:
    """Simulated cycle cost of the serial algorithm on this matrix.

    Either pass the CM/RCM ``order`` already computed, or a ``start`` node.
    The model charges per dequeued node, per probed edge and per sorted
    child, mirroring where the serial implementation spends its time.
    """
    if order is None:
        if start is None:
            raise ValueError("need either order or start")
        order = cuthill_mckee(mat, start)
    degs = np.diff(mat.indptr)[order]
    # every node is dequeued once, its adjacency scanned once, and sorted
    # within its parent's child group (approximated by its own degree)
    per_node = (
        model.cycles_per_node
        + degs * model.cycles_per_edge
        + degs * model.cycles_per_sorted_element * np.log2(np.maximum(degs, 2))
    )
    return float(per_node.sum())
