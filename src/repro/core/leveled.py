"""Leveled RCM (Alg. 2) — the level-synchronous baseline.

Each BFS level is expanded in parallel; discovered children record the
lowest-output-position parent (``atomicMin`` on the source tracker ``s``),
the whole level is sorted, written, and the next level starts after a
barrier.  On the GPU this is the paper's **GPU-RCM** baseline: it maps
naturally to kernels but draws parallelism from a single level only and pays
per-level synchronization — disastrous on deep, narrow graphs
(hugebubbles: 8490 ms vs 248 ms for GPU-BATCH).

The ordering produced equals serial RCM: a level is sorted by
``(source position, valence, adjacency position within the source)``, which
is exactly the order in which Alg. 1's FIFO emits the level.

This module provides the exact permutation plus analytic cycle costs for
both cost models.  (An event-level simulation is unnecessary here — the
algorithm is bulk-synchronous, so per-level arithmetic is faithful.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.machine.costmodel import CPUCostModel, GPUCostModel

__all__ = ["LeveledResult", "rcm_leveled", "leveled_cycles"]


@dataclass
class LevelWork:
    """Work counted while expanding one level (cost-model input)."""

    parents: int
    edges: int
    children: int
    #: largest single-parent adjacency in the level (load imbalance driver)
    max_degree: int = 0


@dataclass
class LeveledResult:
    permutation: np.ndarray
    levels: List[LevelWork]

    @property
    def depth(self) -> int:
        return len(self.levels)


def rcm_leveled(mat: CSRMatrix, start: int) -> LeveledResult:
    """Run leveled RCM; returns the (serial-identical) permutation and the
    per-level work counts used by :func:`leveled_cycles`."""
    n = mat.n
    if not 0 <= start < n:
        raise ValueError("start node out of range")
    indptr, indices = mat.indptr, mat.indices
    valence = np.diff(indptr)

    pos = np.full(n, -1, dtype=np.int64)  # output position (the paper's o)
    pos[start] = 0
    order_parts: List[np.ndarray] = [np.array([start], dtype=np.int64)]
    written = 1
    level = order_parts[0]
    levels: List[LevelWork] = []

    while level.size:
        # gather every (parent, adjacency position, child) edge of the level
        starts = indptr[level]
        degs = indptr[level + 1] - starts
        total = int(degs.sum())
        if total == 0:
            break
        offsets = np.concatenate([[0], np.cumsum(degs)])
        flat = np.arange(total, dtype=np.int64)
        seg = np.searchsorted(offsets, flat, side="right") - 1
        adjpos = flat - offsets[seg]
        children = indices[starts[seg] + adjpos]
        parent_pos = pos[level[seg]]

        max_deg = int(degs.max()) if degs.size else 0
        fresh_mask = pos[children] < 0
        c_children = children[fresh_mask]
        c_ppos = parent_pos[fresh_mask]
        c_adjpos = adjpos[fresh_mask]
        if c_children.size == 0:
            levels.append(LevelWork(int(level.size), total, 0, max_deg))
            break
        # first discovery per child: lexicographically smallest
        # (parent position, adjacency position) — the serial claim rule
        first = np.lexsort((c_adjpos, c_ppos, c_children))
        c_children = c_children[first]
        c_ppos = c_ppos[first]
        c_adjpos = c_adjpos[first]
        keep = np.ones(c_children.size, dtype=bool)
        keep[1:] = c_children[1:] != c_children[:-1]
        c_children = c_children[keep]
        c_ppos = c_ppos[keep]
        c_adjpos = c_adjpos[keep]

        # level-wide sort: (source position, valence, adjacency position)
        order = np.lexsort((c_adjpos, valence[c_children], c_ppos))
        c_sorted = c_children[order]
        pos[c_sorted] = written + np.arange(c_sorted.size, dtype=np.int64)
        written += int(c_sorted.size)
        order_parts.append(c_sorted)
        levels.append(LevelWork(int(level.size), total, int(c_sorted.size), max_deg))
        level = c_sorted

    cm = np.concatenate(order_parts)
    return LeveledResult(permutation=cm[::-1].copy(), levels=levels)


def leveled_cycles(
    result: LeveledResult,
    model,
    n_workers: int,
) -> float:
    """Analytic cycle cost of leveled RCM under a cost model.

    Per level: parallel discovery over the level's edges (atomics on marks
    and the source tracker), a parallel sort of the level, a parallel write,
    and a synchronization point.  Parallelism is capped by the level width —
    the algorithm's fundamental limit the paper calls out.
    """
    total = 0.0
    gpu = isinstance(model, GPUCostModel)
    if gpu:
        threads = n_workers * model.block_threads
        # per level, a leveled GPU implementation launches a discovery
        # kernel, a device-wide radix sort (multiple internal passes) and a
        # write/compaction kernel; each launch+drain costs microseconds of
        # device idle time — the overhead that buries GPU-RCM on deep graphs
        launch = 9_000.0
        discovery_launches = 2.0
        write_launches = 2.0
        sort_pass_launches = 6.0  # CUB device radix passes over the level
    else:
        threads = n_workers
        launch = 600.0 * n_workers  # software barrier
        discovery_launches = 1.0
        write_launches = 1.0
        sort_pass_launches = 1.0
    for lw in result.levels:
        width = max(lw.parents, 1)
        eff = float(min(threads, max(lw.edges, 1)))
        # two atomics per probed edge (mark + source tracker)
        discover = lw.edges * (
            model.discover_edge_cycles + 2.0 * model.atomic_cycles
        ) / eff * (16.0 if gpu else 1.0)
        discover += lw.parents * model.discover_parent_cycles / max(
            min(threads, width), 1
        )
        if gpu:
            # load imbalance: one parent's adjacency is handled by one
            # block's worth of threads, so a hub row serializes the level
            discover += (
                lw.max_degree
                / model.block_threads
                * (model.discover_edge_cycles + 2.0 * model.atomic_cycles)
                * 16.0
            )
        k = lw.children
        if k > 1:
            sort_eff = float(min(threads, k))
            sort = k * np.log2(k) * model.sort_element_cycles / sort_eff * (
                48.0 if gpu else 1.0
            )
        else:
            sort = 0.0
        write = k * model.output_node_cycles / max(min(threads, max(k, 1)), 1) * (
            30.0 if gpu else 1.0
        )
        overhead = launch * (
            discovery_launches + write_launches + (sort_pass_launches if k > 1 else 0.0)
        )
        total += discover + sort + write + overhead
    return total
