"""Speculative discovery and rediscovery primitives (Sec. IV-A).

``discover`` implements the paper's atomicMin-based child discovery: a batch
claims every adjacent node whose current mark is *larger* than its own batch
index, overwriting marks of later batches and ignoring earlier ones.  The
claim may be wrong in one direction only — an *earlier* batch may claim the
node afterwards — which ``rediscover`` repairs by dropping every stored node
whose mark has meanwhile dropped below the batch index.

Within a batch, parents are processed in order, so a node adjacent to two
parents of the same batch is credited to the first, matching the serial
algorithm's FIFO semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.core.state import BatchRunState

__all__ = ["DiscoveredChildren", "discover", "rediscover", "sort_children"]


@dataclass
class DiscoveredChildren:
    """Speculatively claimed children of one batch.

    Arrays are parallel; ``parent_pos`` is the parent's index *within the
    batch* (0-based), which doubles as the primary radix-sort key so the
    per-parent grouping of the serial algorithm survives parallel sorting.
    ``alive`` supports the full algorithm's lazy rediscovery: nodes are only
    flagged dead after sorting and compacted while writing output.
    """

    nodes: np.ndarray
    valences: np.ndarray
    parent_pos: np.ndarray
    alive: np.ndarray
    #: total adjacency entries probed (cost accounting)
    n_edges: int
    #: largest single-parent child count (GPU thread-assignment cost input)
    max_children: int
    sorted: bool = False

    @property
    def n_found(self) -> int:
        return int(self.nodes.size)

    @property
    def n_alive(self) -> int:
        return int(self.alive.sum())

    def alive_nodes(self) -> np.ndarray:
        """Nodes still claimed by this batch (in current storage order)."""
        return self.nodes[self.alive]

    def alive_valences(self) -> np.ndarray:
        """Valences of the still-claimed nodes, parallel to alive_nodes."""
        return self.valences[self.alive]

    def compact(self) -> None:
        """Drop dead entries, keeping order."""
        if not bool(self.alive.all()):
            self.nodes = self.nodes[self.alive]
            self.valences = self.valences[self.alive]
            self.parent_pos = self.parent_pos[self.alive]
            self.alive = np.ones(self.nodes.size, dtype=bool)


def discover(state: BatchRunState, slot_index: int, parents: np.ndarray) -> DiscoveredChildren:
    """Speculative child discovery for one batch (atomicMin marking).

    Parents are iterated in batch order; per parent the adjacency list is
    probed in one vectorized shot.  The engine serializes whole stages, so
    this models a batch whose discovery executes atomically at its start
    time — ownership is unaffected because atomicMin ownership depends only
    on batch indices, never on timing.
    """
    indptr, indices = state.mat.indptr, state.mat.indices
    marks = state.marks
    found: List[np.ndarray] = []
    found_parent: List[np.ndarray] = []
    n_edges = 0
    max_children = 0
    for local_i in range(parents.size):
        p = parents[local_i]
        children = indices[indptr[p] : indptr[p + 1]]
        n_edges += int(children.size)
        if children.size == 0:
            continue
        claim = marks[children] > slot_index
        fresh = children[claim]
        if fresh.size:
            marks[fresh] = slot_index
            found.append(fresh)
            found_parent.append(np.full(fresh.size, local_i, dtype=np.int64))
            max_children = max(max_children, int(fresh.size))
    if found:
        nodes = np.concatenate(found)
        parent_pos = np.concatenate(found_parent)
    else:
        nodes = np.zeros(0, dtype=np.int64)
        parent_pos = np.zeros(0, dtype=np.int64)
    state.stats.nodes_discovered_speculatively += int(nodes.size)
    return DiscoveredChildren(
        nodes=nodes,
        valences=state.valence[nodes],
        parent_pos=parent_pos,
        alive=np.ones(nodes.size, dtype=bool),
        n_edges=n_edges,
        max_children=max_children,
    )


def rediscover(
    state: BatchRunState,
    slot_index: int,
    children: DiscoveredChildren,
    *,
    compact: bool,
) -> int:
    """Drop nodes meanwhile claimed by an earlier batch (mark < slot index).

    With ``compact`` the arrays are rebuilt densely (early rediscovery,
    before sorting); otherwise dead entries are only flagged and compaction
    is deferred to output writing (late rediscovery) — the paper's
    memory-saving distinction in Sec. IV-B.

    Returns the number of entries checked (cost accounting).
    """
    checked = int(children.nodes.size)
    if checked:
        children.alive &= state.marks[children.nodes] >= slot_index
        dropped = checked - int(children.alive.sum())
        state.stats.nodes_dropped_by_rediscovery += dropped
        if compact:
            children.compact()
    state.stats.rediscovery_passes += 1
    return checked


def sort_children(state: BatchRunState, children: DiscoveredChildren) -> int:
    """Sort by (parent position, valence), stable — the serial tie-break.

    Nodes enter in per-parent adjacency order; ``np.lexsort`` is stable, so
    equal-valence children keep that order, reproducing Alg. 1 exactly.
    Returns the number of sorted elements (cost accounting — speculative
    entries later dropped still cost sorting time, which is the price of
    speculation the paper discusses around Fig. 6).
    """
    k = int(children.nodes.size)
    if k > 1:
        order = np.lexsort((children.valences, children.parent_pos))
        children.nodes = children.nodes[order]
        children.valences = children.valences[order]
        children.parent_pos = children.parent_pos[order]
        children.alive = children.alive[order]
    children.sorted = True
    state.stats.sorted_elements += k
    return k
