"""Degree-aware power-law transformation in front of the BFS kernels.

RCM's level-synchronous execution assumes BFS level sets of roughly even
width — true on meshes, catastrophically false on power-law patterns,
where a min-valence start buries the hubs deep in the level structure and
the traversal alternates between needle-thin and enormous fronts.  Jiang
et al. (*Fast and Efficient Parallel BFS with Power-law Graph
Transformation*, PAPERS.md) show that extracting the hub vertices and
relabeling them to the front restores parallel BFS efficiency on exactly
these shapes: a hub-first traversal reaches the bulk of the pattern in
two or three hops, so the level structure is shallow and every level is
wide enough to feed the parallel kernels.

This module implements that pass for the reorder pipeline:

* :func:`plan_powerlaw` — pick the hub set (valence at least
  ``max(4 x mean, 16)``, capped at ``sqrt(n)`` nodes) and build the
  hub-first relabeling;
* :func:`resolve_transform` — resolve the facade's
  ``transform="auto" | "powerlaw" | None`` argument, using the scenario
  classifier's probe-free heavy-tail test
  (:func:`repro.matrices.scenarios.heavy_tailed`) for ``"auto"``;
* the pipeline (:func:`repro.core.api._reorder_rcm`) applies the plan as
  its ``transform`` phase: it reorders the *relabeled* pattern from a
  hub start and composes the relabeling back into the final permutation,
  so the returned permutation always indexes the caller's original
  matrix.

The transformed path trades a little bandwidth for parallel shape — the
ordering is no longer byte-identical to the untransformed serial
permutation (only ``transform=None``, the default, carries that
invariant).  What the transform buys is measured structurally: fewer BFS
levels and wider fronts on power-law/hub patterns
(``tests/test_scenarios.py`` and ``benchmarks/bench_scenarios.py`` gate
the level-count reduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.validation import check_choice

__all__ = [
    "HUB_DEGREE_FACTOR",
    "HUB_MIN_DEGREE",
    "TRANSFORMS",
    "TransformPlan",
    "check_transform",
    "plan_powerlaw",
    "resolve_transform",
]

#: the named transform choices (``None`` — no transform — is also valid)
TRANSFORMS = ("auto", "powerlaw")

#: a node is a hub when its valence is at least this multiple of the mean …
HUB_DEGREE_FACTOR = 4.0
#: … and at least this absolute valence (tiny patterns have no hubs)
HUB_MIN_DEGREE = 16


@dataclass(frozen=True)
class TransformPlan:
    """A resolved, applicable transformation: the hub-first relabeling.

    ``relabel[k]`` is the original node placed at transformed position
    ``k`` (the first ``n_hubs`` entries are the hubs, highest valence
    first) — apply with :meth:`CSRMatrix.permute_symmetric`, compose back
    with ``perm_original = relabel[perm_transformed]``.
    """

    kind: str
    relabel: np.ndarray
    n_hubs: int


def check_transform(transform: Optional[str]) -> None:
    """Validate a ``transform`` argument (``None`` is always accepted)."""
    if transform is not None:
        check_choice("transform", transform, TRANSFORMS)


def resolve_transform(
    transform: Optional[str], mat: CSRMatrix
) -> Optional[str]:
    """The concrete transform a request resolves to: ``"powerlaw"`` or
    ``None``.

    ``"auto"`` applies the power-law pass exactly when the scenario
    classifier's degree rules call the pattern heavy-tailed
    (hub-dominated or power-law) — a probe-free test, so resolution is
    cheap enough to run during cache-key derivation.
    """
    check_transform(transform)
    if transform is None:
        return None
    if transform == "powerlaw":
        return "powerlaw"
    from repro.matrices.scenarios import heavy_tailed

    return "powerlaw" if heavy_tailed(mat) else None


def plan_powerlaw(mat: CSRMatrix) -> Optional[TransformPlan]:
    """The hub-extraction relabeling for a pattern, or ``None``.

    Hubs are the nodes with valence at least ``max(4 x mean, 16)``,
    highest first (node id breaks ties, for determinism), capped at
    ``sqrt(n)`` — on a genuinely heavy-tailed pattern that is enough to
    cover the core, and on anything else the threshold selects nothing
    and the pass is a no-op (``None``): ``transform="powerlaw"`` on a
    mesh degrades to the untransformed pipeline instead of scrambling a
    pattern with no hubs to extract.
    """
    degrees = mat.degrees()
    active = degrees[degrees > 0]
    if active.size == 0:
        return None
    threshold = max(HUB_DEGREE_FACTOR * float(active.mean()), HUB_MIN_DEGREE)
    candidates = np.flatnonzero(degrees >= threshold)
    if candidates.size == 0:
        return None
    # highest valence first; node id breaks ties so the plan is stable
    order = candidates[np.lexsort((candidates, -degrees[candidates]))]
    hubs = order[: max(int(math.isqrt(mat.n)), 1)]
    is_hub = np.zeros(mat.n, dtype=bool)
    is_hub[hubs] = True
    relabel = np.concatenate([hubs, np.flatnonzero(~is_hub)]).astype(np.int64)
    return TransformPlan(kind="powerlaw", relabel=relabel, n_hubs=len(hubs))
