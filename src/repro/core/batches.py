"""Batch generation, combination and overhang planning (Sec. IV-C).

Two planning regimes:

* **CPU (balanced / exact count)** — the number of child batches is computed
  from the node count and the (scratch-clamped) valence sum, assuming
  optimal packing; the later range-building pass *balances* surplus across
  exactly that many contiguous ranges, accepting occasional scratchpad
  overflow (the CPU can extend its temporary array).

* **GPU (over-estimated / greedy)** — scratchpad cannot grow, so ranges are
  built greedily (close a batch when the next node would overflow the node
  or valence budget) and the batch count signalled ahead of time is a safe
  over-estimate; unused slots are filled with *empty batches* that workers
  dequeue and discard (Fig. 3's Dequeued-vs-Executed gap).  The paper uses
  a 2× estimate with per-matrix tuning; we use the provable bound
  ``2·(⌈m/B⌉ + ⌈V/T⌉) + 1`` so the reservation can never be exceeded.

*Overhang* (work aggregation): when a batch's confirmed output would fill
less than half a batch, the nodes are forwarded to the successor's first
generated batch instead of forming a runt batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "BatchConfig",
    "BatchPlan",
    "clamped_valences",
    "estimate_batch_count",
    "plan_ranges",
]


@dataclass(frozen=True)
class BatchConfig:
    """Tunable knobs of the batch algorithm.

    ``early_signaling`` and ``overhang`` distinguish CPU-BATCH (Alg. 5) from
    CPU-BATCH-BASIC (Alg. 4); ``multibatch`` is the number of batches one
    worker may hold concurrently (Sec. IV-D; 1 = blocking waits).
    ``gpu_planning`` selects the greedy/over-estimated planner.
    """

    batch_size: int = 64
    temp_limit: int = 4096
    early_signaling: bool = True
    overhang: bool = True
    multibatch: int = 2
    gpu_planning: bool = False
    #: ablation knob: with speculation off, a batch blocks until all
    #: predecessors have discovered before its own discovery — no wasted
    #: sorting, but discovery fully serializes across the chain
    speculate: bool = True
    #: with sorting disabled the framework degenerates to a parallel BFS —
    #: the paper's approach to pseudo-peripheral node finding (Sec. VII:
    #: "directly applying our RCM approach as BFS replacement")
    sort_children: bool = True

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.temp_limit < 1:
            raise ValueError("temp_limit must be >= 1")
        if self.multibatch < 1:
            raise ValueError("multibatch must be >= 1")


@dataclass
class BatchPlan:
    """Outcome of ``signalCount`` for one batch (the paper's ``f``).

    ``k`` child-batch slots were reserved starting at ``queue_start``; when
    ``forward`` is set the batch generates nothing and its output range
    travels to the successor as an overhang instead.
    """

    count: int                 # confirmed output nodes of this batch
    out_start: int             # where this batch's output goes
    gen_start: int             # start of the range its child batches cover
    valence_total: int         # clamped valence sum over [gen_start, out_end)
    forward: bool
    k: int
    queue_start: int

    @property
    def out_end(self) -> int:
        return self.out_start + self.count


def clamped_valences(valences: np.ndarray, temp_limit: int) -> np.ndarray:
    """Clamp per-node valences to the scratchpad size.

    A node whose adjacency alone overflows scratch gets its own batch
    (and, on the GPU, histogram chunking), so its planning contribution is
    exactly one full scratchpad (Sec. V-B).
    """
    return np.minimum(valences, temp_limit)


def estimate_batch_count(
    n_nodes: int,
    clamped_valence_sum: int,
    cfg: BatchConfig,
) -> int:
    """Number of child-batch queue slots to reserve.

    Must be computable from (count, valence sum) alone — the node *order* is
    unknown when ``Counted`` is signalled early — and must upper-bound what
    ``plan_ranges`` later produces so the queue-offset arithmetic holds.
    """
    if n_nodes <= 0:
        return 0
    by_nodes = math.ceil(n_nodes / cfg.batch_size)
    by_valence = math.ceil(clamped_valence_sum / cfg.temp_limit)
    if cfg.gpu_planning:
        # greedy packing can waste up to half of each budget per closed batch
        return 2 * (by_nodes + by_valence) + 1
    return max(by_nodes, by_valence)


def _plan_balanced(
    cvals: np.ndarray, k: int, batch_size: int
) -> List[Tuple[int, int]]:
    """Split ``m`` ordered nodes into exactly ``k`` contiguous ranges.

    Balances both node counts and valence mass (the paper: "while the sum of
    valences of remaining nodes divided by the to-be-generated batches is
    above the valence sum of the current batch, we add further nodes"), with
    a hard cap of ``batch_size`` nodes per range.  Valence overflow is
    accepted — the CPU extends its scratch.
    """
    m = int(cvals.size)
    ranges: List[Tuple[int, int]] = []
    pos = 0
    remaining_val = int(cvals.sum())
    for j in range(k):
        left = k - j
        remaining = m - pos
        if remaining <= 0:
            ranges.append((pos, pos))  # rare: valence-driven k, pad empty
            continue
        target_nodes = math.ceil(remaining / left)
        target_val = remaining_val / left
        end = pos
        val = 0
        while end < m and (end - pos) < batch_size:
            # feasibility: the remaining ranges can absorb at most
            # (left-1)*batch_size nodes, so keep taking until what would be
            # left behind fits
            need_more = (m - end) > (left - 1) * batch_size
            satisfied = (end - pos) >= target_nodes and val >= target_val
            if satisfied and not need_more:
                break
            val += int(cvals[end])
            end += 1
        ranges.append((pos, end))
        remaining_val -= val
        pos = end
    if pos != m:  # pragma: no cover - guarded by estimate >= ceil(m/B)
        raise RuntimeError(f"balanced planning left {m - pos} nodes unassigned")
    return ranges


def _plan_greedy(
    cvals: np.ndarray, batch_size: int, temp_limit: int
) -> List[Tuple[int, int]]:
    """Greedy GPU packing: close a range when the next node would overflow
    the node budget or the scratchpad; an oversized node sits alone."""
    m = int(cvals.size)
    ranges: List[Tuple[int, int]] = []
    pos = 0
    while pos < m:
        end = pos
        val = 0
        while end < m and (end - pos) < batch_size:
            v = int(cvals[end])
            if end > pos and val + v > temp_limit:
                break
            val += v
            end += 1
        ranges.append((pos, end))
        pos = end
    return ranges


def plan_ranges(
    cvals: np.ndarray,
    k: int,
    cfg: BatchConfig,
) -> List[Tuple[int, int]]:
    """Build exactly ``k`` contiguous (possibly empty) ranges over the
    ordered nodes whose clamped valences are ``cvals``.

    The ranges are relative offsets; the caller shifts them by the output
    position.  Empty ranges become empty queue slots.
    """
    if k == 0:
        if cvals.size:
            raise ValueError("cannot plan nodes into zero batches")
        return []
    if cfg.gpu_planning:
        ranges = _plan_greedy(cvals, cfg.batch_size, cfg.temp_limit)
        if len(ranges) > k:  # pragma: no cover - estimate is a proven bound
            raise RuntimeError(
                f"greedy planning produced {len(ranges)} > reserved {k} batches"
            )
        tail = ranges[-1][1] if ranges else 0
        ranges.extend((tail, tail) for _ in range(k - len(ranges)))
        return ranges
    return _plan_balanced(cvals, k, cfg.batch_size)
