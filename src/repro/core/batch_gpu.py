"""GPU (many-core) batch RCM: thread-block workers and scratchpad limits.

The GPU variant runs the identical batch protocol (:mod:`repro.core.batch`)
with three architecture-specific twists (Sec. V):

1. a *worker* is a cooperative thread-block whose per-stage costs divide
   across ``block_threads`` (see :class:`~repro.machine.costmodel.GPUCostModel`);
2. batch planning over-estimates child-batch counts and pads with *empty
   batches* because scratchpad cannot grow (``BatchConfig.gpu_planning``);
3. a single-parent batch whose children overflow scratchpad is processed in
   *valence-histogram chunks*: a 128-bin histogram (mean-centred linear
   remap against skew) splits the children into scratch-sized, valence-
   ascending chunks; a bin that alone overflows is hierarchically refined,
   and a refined bin holding one single valence is streamed directly from
   the matrix to the permutation without staging in scratchpad.

Chunking by ascending valence ranges preserves the sort order (children of a
single parent are ordered by valence; equal valences never straddle a bin),
so the permutation is unchanged — only cost and statistics differ, which is
what :func:`chunk_plan` computes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.batch import BatchResult, run_batch_rcm
from repro.core.batches import BatchConfig
from repro.machine.costmodel import GPUCostModel
from repro.sparse.csr import CSRMatrix

__all__ = ["ChunkPlan", "chunk_plan", "run_batch_rcm_gpu"]


@dataclass
class ChunkPlan:
    """How one oversized single-parent batch is split (Sec. V-B)."""

    chunk_sizes: List[int] = field(default_factory=list)
    refinements: int = 0
    direct_copies: int = 0

    @property
    def n_chunks(self) -> int:
        return len(self.chunk_sizes)


def _remapped_histogram(
    valences: np.ndarray, bins: int
) -> tuple:
    """Histogram with the paper's mean-centred linear remap.

    Valence distributions are skewed; remapping so the mean lands mid-range
    spreads the mass across the 128 bins.  Returns (counts, bin-of-value
    assignment) where bins are ordered by ascending valence.
    """
    vmin = int(valences.min())
    vmax = int(valences.max())
    if vmin == vmax:
        counts = np.zeros(1, dtype=np.int64)
        counts[0] = valences.size
        return counts, np.zeros(valences.size, dtype=np.int64)
    mean = float(valences.mean())
    # piecewise-linear remap: [vmin, mean] -> first half, [mean, vmax] -> rest
    half = bins // 2
    v = valences.astype(np.float64)
    low = (v - vmin) / max(mean - vmin, 1e-9) * half
    high = half + (v - mean) / max(vmax - mean, 1e-9) * (bins - half - 1)
    binned = np.where(v <= mean, low, high).astype(np.int64)
    binned = np.clip(binned, 0, bins - 1)
    counts = np.bincount(binned, minlength=bins).astype(np.int64)
    return counts, binned


def chunk_plan(
    valences: np.ndarray, temp_limit: int, bins: int = 128, *, _depth: int = 0
) -> ChunkPlan:
    """Plan scratch-sized chunks over children sorted by valence.

    Greedily accumulates ascending histogram bins until the next bin would
    overflow ``temp_limit``.  A single bin larger than scratch triggers a
    hierarchical refinement (a fresh histogram over just that bin); at the
    recursion floor a single-valence bin is marked for direct copy.
    """
    plan = ChunkPlan()
    if valences.size == 0:
        return plan
    counts, binned = _remapped_histogram(valences, bins)
    current = 0
    order = np.argsort(binned, kind="stable")
    sorted_vals = valences[order]
    offset = 0
    for b in range(counts.size):
        c = int(counts[b])
        if c == 0:
            continue
        if c > temp_limit:
            # flush what we have, then refine the oversized bin
            if current:
                plan.chunk_sizes.append(current)
                current = 0
            bin_vals = sorted_vals[offset : offset + c]
            if np.all(bin_vals == bin_vals[0]) or _depth >= 8:
                # recursion floor: one valence — copy directly, no scratch
                plan.direct_copies += 1
                plan.chunk_sizes.append(c)
            else:
                plan.refinements += 1
                sub = chunk_plan(bin_vals, temp_limit, bins, _depth=_depth + 1)
                plan.chunk_sizes.extend(sub.chunk_sizes)
                plan.refinements += sub.refinements
                plan.direct_copies += sub.direct_copies
        elif current + c > temp_limit:
            plan.chunk_sizes.append(current)
            current = c
        else:
            current += c
        offset += c
    if current:
        plan.chunk_sizes.append(current)
    return plan


def run_batch_rcm_gpu(
    mat: CSRMatrix,
    start: int,
    *,
    model: Optional[GPUCostModel] = None,
    n_workers: Optional[int] = None,
    batch_size: int = 64,
    multibatch: int = 2,
    total: Optional[int] = None,
    jitter: float = 0.0,
    seed: int = 0,
) -> BatchResult:
    """GPU-BATCH: the full batch algorithm on the many-core model.

    ``n_workers`` defaults to the number of resident thread-blocks the
    device sustains (SMs × blocks/SM), the paper's saturation point.
    """
    model = model or GPUCostModel()
    if n_workers is None:
        n_workers = model.max_workers
    config = BatchConfig(
        batch_size=batch_size,
        temp_limit=model.temp_limit,
        early_signaling=True,
        overhang=True,
        multibatch=multibatch,
        gpu_planning=True,
    )
    return run_batch_rcm(
        mat,
        start,
        model=model,
        n_workers=n_workers,
        config=config,
        total=total,
        jitter=jitter,
        seed=seed,
    )
