"""Asyncio front door over the (sharded) reordering service.

:class:`AsyncReorderService` lets one event-loop process hold thousands
of in-flight reorder requests while the shards' thread pools (and the
fork-pool workers under them) do the computing.  The bridge is thin by
design:

* ``submit`` may *block* — backpressure (``submit_timeout > 0``) waits on
  a semaphore — so admission runs in the loop's default executor via
  ``loop.run_in_executor``; the event loop never stalls on a full shard.
* The shard's ``concurrent.futures.Future`` is adapted with
  :func:`asyncio.wrap_future`, so awaiting a result costs no polling and
  no extra thread: the pool thread that resolves the future wakes the
  loop directly.
* Results, errors and semantics are exactly the synchronous service's —
  same cache keys, same coalescing, same degradation chains, byte-
  identical permutations — because the same shard machinery runs them.

The wrapper owns its backing service only when it created one (the
``shards=N`` constructor path); wrapping an existing
:class:`~repro.service.core.ReorderService` or
:class:`~repro.service.router.ShardedService` leaves lifecycle with the
caller unless ``aclose`` is asked to take it.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence, Union

from repro.core.api import ReorderResult
from repro.errors import ServiceTimeoutError
from repro.service.core import ReorderService, ServiceConfig, Shard
from repro.service.router import ShardedService
from repro.sparse.csr import CSRMatrix

__all__ = ["AsyncReorderService"]


class AsyncReorderService:
    """Awaitable ``reorder``/``reorder_many`` over shard executors.

    ::

        async with AsyncReorderService(shards=4) as svc:
            res = await svc.reorder(mat)
            many = await svc.reorder_many(mats)
            depths = svc.queue_depths()   # per-shard in-flight gauge

    Constructed with ``shards=1`` the backing service is a plain
    :class:`ReorderService`; with ``shards>1`` a consistent-hash
    :class:`ShardedService`.  An existing service instance can be passed
    as ``service=`` instead (it is not closed by ``aclose`` by default).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        shards: int = 1,
        service: Optional[Union[Shard, ShardedService]] = None,
    ) -> None:
        if service is not None:
            if config is not None:
                raise ValueError("pass config or service, not both")
            self.service = service
            self._owns_service = False
        else:
            if shards < 1:
                raise ValueError("shards must be >= 1")
            self.service = (
                ReorderService(config)
                if shards == 1
                else ShardedService(config, shards=shards)
            )
            self._owns_service = True

    # ------------------------------------------------------------------
    # awaitable surface
    # ------------------------------------------------------------------
    async def submit(self, mat: CSRMatrix, **options) -> ReorderResult:
        """Admit (off-loop) and await the result future.

        Admission — keying, cache probe, backpressure wait — runs in the
        default executor because it may block; the returned coroutine
        then awaits the shard future without burning a thread.
        """
        loop = asyncio.get_running_loop()
        fut = await loop.run_in_executor(
            None, lambda: self.service.submit(mat, **options)
        )
        return await asyncio.wrap_future(fut, loop=loop)

    async def reorder(
        self,
        mat: CSRMatrix,
        *,
        timeout: Optional[float] = None,
        **options,
    ) -> ReorderResult:
        """Awaitable analogue of :meth:`ReorderService.reorder`.

        ``timeout`` (seconds; default the config's ``request_timeout``)
        bounds the wait and raises :class:`ServiceTimeoutError` on
        expiry — the computation is not cancelled and still lands in the
        cache for the retry, matching the synchronous semantics.
        """
        if timeout is None:
            timeout = self.service.config.request_timeout
        try:
            return await asyncio.wait_for(
                self.submit(mat, **options), timeout
            )
        except asyncio.TimeoutError:
            raise ServiceTimeoutError(
                f"request did not complete within {timeout}s"
            ) from None

    async def reorder_many(
        self, mats: Sequence[CSRMatrix], **options
    ) -> List[ReorderResult]:
        """Submit a batch concurrently; gather results in input order."""
        return list(
            await asyncio.gather(
                *(self.submit(m, **options) for m in mats)
            )
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queue_depths(self) -> List[int]:
        """Pending computations per shard (one entry for an unsharded
        backing service) — the front end's queue-depth gauges."""
        if isinstance(self.service, ShardedService):
            return self.service.queue_depths()
        return [self.service.pending]

    @property
    def pending(self) -> int:
        """Total queued-plus-running computations on the backing service."""
        return self.service.pending

    def stats(self) -> dict:
        """The backing service's :meth:`stats` snapshot, unchanged."""
        return self.service.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def aclose(self, *, force: bool = False) -> None:
        """Close the backing service off-loop.

        Owned services (constructor-created) always close; a wrapped
        caller-provided service closes only with ``force=True``.
        """
        if not (self._owns_service or force):
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.close(wait=True)
        )

    async def __aenter__(self) -> "AsyncReorderService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()
