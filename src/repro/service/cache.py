"""Two-tier permutation cache: in-memory LRU over an optional disk tier.

The memory tier is a bounded LRU of reconstructed-on-hit
:class:`~repro.core.api.ReorderResult` payloads; the disk tier (one
``<digest>.npz`` per entry under ``disk_dir``) survives process restarts and
keeps entries the LRU evicted.  Everything a result needs except wall-clock
timings and simulated stats is cached, so a hit is a dictionary lookup plus
one array copy — no BFS, no sorting, no bandwidth recomputation.

Consistency rule: an entry is only ever written *whole* (atomic
``os.replace`` on the disk tier) under the content-hash key of the exact
pattern + options that produced it, so eviction and invalidation can never
surface a stale permutation — a key either maps to the right answer or to a
miss.

Telemetry (when enabled): counters ``service.cache.hits`` /
``service.cache.misses`` / ``service.cache.evictions`` /
``service.cache.disk_hits``; gauge ``service.cache.size``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.api import ReorderResult
from repro.service.keys import CacheKey
from repro import telemetry

__all__ = ["CacheStats", "PermutationCache"]


@dataclass
class CacheStats:
    """Monotonic per-cache counters (telemetry-independent)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    disk_hits: int = 0
    invalidations: int = 0

    def to_dict(self) -> dict:
        """All counters as one JSON-serializable dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "disk_hits": self.disk_hits,
            "invalidations": self.invalidations,
        }


def _entry_from_result(key: CacheKey, result: ReorderResult) -> dict:
    """The cached payload: permutation + everything cheap to freeze."""
    return {
        "permutation": np.ascontiguousarray(
            result.permutation, dtype=np.int64
        ).copy(),
        "algorithm": result.algorithm,
        "method": result.method,
        "start_nodes": [int(s) for s in result.start_nodes],
        "component_sizes": [int(s) for s in result.component_sizes],
        "initial_bandwidth": int(result.initial_bandwidth),
        "reordered_bandwidth": int(result.reordered_bandwidth),
        "key": key.describe(),
        "created": time.time(),
    }


def _result_from_entry(entry: dict) -> ReorderResult:
    """Reconstruct a fresh result (caller owns the permutation copy)."""
    return ReorderResult(
        permutation=entry["permutation"].copy(),
        method=entry["method"],
        start_nodes=list(entry["start_nodes"]),
        component_sizes=list(entry["component_sizes"]),
        initial_bandwidth=entry["initial_bandwidth"],
        reordered_bandwidth=entry["reordered_bandwidth"],
        stats=[],
        phase_ns={},
        algorithm=entry["algorithm"],
    )


class PermutationCache:
    """Thread-safe LRU permutation cache with an optional disk tier.

    Parameters
    ----------
    capacity:
        max entries held in memory; the least-recently-used entry is
        evicted first (evicted entries remain on disk when a tier is
        configured).
    disk_dir:
        optional directory for the persistent tier; created on first use.
    fallback_dirs:
        read-only sibling disk tiers probed after a ``disk_dir`` miss.
        A hit from a fallback directory is promoted — installed in memory
        and rewritten under ``disk_dir`` — but the foreign file is never
        touched.  :class:`repro.service.ShardedService` points each shard
        at its siblings' directories so entries that a resharding remapped
        to a different shard still warm-hit from disk.
    """

    def __init__(
        self,
        capacity: int = 128,
        *,
        disk_dir: Optional[Union[str, Path]] = None,
        fallback_dirs: Sequence[Union[str, Path]] = (),
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.fallback_dirs = tuple(Path(d) for d in fallback_dirs)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    # ------------------------------------------------------------------
    # tier plumbing
    # ------------------------------------------------------------------
    def _tel_count(self, name: str) -> None:
        tel = telemetry.get()
        if tel.enabled:
            tel.counter(name).add(1)
            tel.gauge("service.cache.size").set(len(self._entries))

    def _disk_path(self, digest: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{digest}.npz"

    def _disk_write(self, digest: str, entry: dict) -> None:
        path = self._disk_path(digest)
        if path is None:
            return
        self.disk_dir.mkdir(parents=True, exist_ok=True)
        meta = {k: v for k, v in entry.items() if k != "permutation"}
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                permutation=entry["permutation"],
                meta=np.frombuffer(
                    json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
                ),
            )
        os.replace(tmp, path)

    @staticmethod
    def _read_npz(path: Path) -> Optional[dict]:
        if not path.exists():
            return None
        try:
            with np.load(path) as npz:
                entry = json.loads(bytes(npz["meta"].tobytes()).decode())
                entry["permutation"] = np.ascontiguousarray(
                    npz["permutation"], dtype=np.int64
                )
            return entry
        except (OSError, KeyError, ValueError, json.JSONDecodeError):
            # a torn/foreign file is a miss, never an error
            return None

    def _disk_read(self, digest: str) -> Optional[dict]:
        path = self._disk_path(digest)
        if path is None:
            return None
        return self._read_npz(path)

    def _fallback_read(self, digest: str) -> Optional[dict]:
        """Probe sibling tiers read-only (resharded keys land here)."""
        for directory in self.fallback_dirs:
            entry = self._read_npz(directory / f"{digest}.npz")
            if entry is not None:
                return entry
        return None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Optional[ReorderResult]:
        """The cached result for ``key``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key.digest)
            if entry is not None:
                self._entries.move_to_end(key.digest)
                self.stats.hits += 1
                self._tel_count("service.cache.hits")
                return _result_from_entry(entry)
        # slow tier outside the lock: the read is idempotent
        entry = self._disk_read(key.digest)
        promoted = False
        if entry is None and self.fallback_dirs:
            entry = self._fallback_read(key.digest)
            promoted = entry is not None
        if entry is not None:
            with self._lock:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._install(key.digest, entry)
                self._tel_count("service.cache.hits")
                self._tel_count("service.cache.disk_hits")
            if promoted:
                # adopt the resharded entry: one write, into our own tier
                self._disk_write(key.digest, entry)
            return _result_from_entry(entry)
        with self._lock:
            self.stats.misses += 1
            self._tel_count("service.cache.misses")
        return None

    def put(self, key: CacheKey, result: ReorderResult) -> None:
        """Insert (or refresh) the entry for ``key``."""
        entry = _entry_from_result(key, result)
        with self._lock:
            self.stats.puts += 1
            self._install(key.digest, entry)
        self._disk_write(key.digest, entry)

    def _install(self, digest: str, entry: dict) -> None:
        """Insert under the held lock, evicting LRU entries over capacity."""
        self._entries[digest] = entry
        self._entries.move_to_end(digest)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._tel_count("service.cache.evictions")

    def invalidate(self, key_or_digest: Union[CacheKey, str]) -> int:
        """Drop one entry from both tiers.

        Returns how many tiers actually held (and dropped) the key — 0
        when it was cached nowhere, 1 for memory *or* disk, 2 for both —
        so callers (``repro cache --invalidate``, the sharded service) can
        report exactly what an invalidation removed.  The count is truthy
        exactly when anything was removed, preserving the historical
        boolean reading.
        """
        digest = (
            key_or_digest.digest
            if isinstance(key_or_digest, CacheKey)
            else str(key_or_digest)
        )
        tiers = 0
        with self._lock:
            if self._entries.pop(digest, None) is not None:
                tiers += 1
        path = self._disk_path(digest)
        if path is not None and path.exists():
            path.unlink()
            tiers += 1
        if tiers:
            with self._lock:
                self.stats.invalidations += 1
        return tiers

    def clear(self, *, purge_disk: bool = False) -> None:
        """Drop every in-memory entry (and the disk tier when asked)."""
        with self._lock:
            self._entries.clear()
        if purge_disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in self.disk_dir.glob("*.npz"):
                path.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key.digest in self._entries

    def entries(self) -> List[dict]:
        """Inspection snapshot: key metadata of every in-memory entry,
        most-recently-used last (what ``repro cache`` lists)."""
        with self._lock:
            return [
                {
                    **entry["key"],
                    "created": entry["created"],
                    "perm_bytes": int(entry["permutation"].nbytes),
                }
                for entry in self._entries.values()
            ]

    @staticmethod
    def disk_entries(disk_dir: Union[str, Path]) -> List[dict]:
        """Inspection snapshot of a disk tier directory (no cache needed)."""
        out: List[dict] = []
        for path in sorted(Path(disk_dir).glob("*.npz")):
            try:
                with np.load(path) as npz:
                    meta = json.loads(bytes(npz["meta"].tobytes()).decode())
                    nbytes = int(npz["permutation"].nbytes)
            except (OSError, KeyError, ValueError, json.JSONDecodeError):
                out.append({"digest": path.stem, "error": "unreadable"})
                continue
            out.append(
                {
                    **meta.get("key", {}),
                    "created": meta.get("created"),
                    "perm_bytes": nbytes,
                    "file": path.name,
                }
            )
        return out

    def stats_dict(self) -> dict:
        """Counters + occupancy as one JSON-serializable dict."""
        with self._lock:
            size = len(self._entries)
        return {"size": size, "capacity": self.capacity, **self.stats.to_dict()}
