"""Content-addressed cache keys for reordering requests.

An RCM permutation is a pure function of the matrix *pattern* —
``indptr``/``indices`` plus the shape, never ``data`` — and of the request
options that can change the answer: ``algorithm``, the resolved execution
``method``, the ``start`` choice and ``symmetrize``.  Options that provably
do **not** alter the permutation stay out of the key on purpose:

* ``n_workers`` and ``seed`` — the paper's headline invariant is that every
  execution schedule returns the serial permutation, so worker count and
  interleaving jitter cannot change the cached answer;
* batch ``config`` — same invariant; configs only move simulated cycles.

``method`` *is* part of the key even though all RCM methods agree on the
permutation: a cached :class:`~repro.core.api.ReorderResult` records which
method produced it, and serving a ``"serial"`` result for a ``"parallel"``
request would misreport that.  ``"auto"`` is canonicalized through the
backend registry's cost-model selector
(:func:`repro.backends.resolve_auto_method`, with the connected-pattern
estimate ``n_components=1`` — the key must be computable without a BFS) so
``"auto"`` and its resolution share one entry, and non-RCM algorithms
always key as ``"direct"``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro import backends
from repro.sparse.csr import CSRMatrix
from repro.validation import check_choice, check_start

__all__ = ["CacheKey", "cache_key", "pattern_digest", "canonical_method"]


def pattern_digest(mat: CSRMatrix) -> str:
    """SHA-256 over the CSR *pattern*: shape + ``indptr`` + ``indices``.

    ``data`` is deliberately excluded — two matrices with the same sparsity
    pattern but different values share a permutation, so they must share a
    digest.  Arrays are hashed as little-endian int64 so the digest is
    stable across platforms.
    """
    h = hashlib.sha256()
    h.update(f"csr:{mat.n}:{mat.nnz}:".encode())
    h.update(np.ascontiguousarray(mat.indptr, dtype="<i8").tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(mat.indices, dtype="<i8").tobytes())
    return h.hexdigest()


def canonical_method(
    algorithm: str, method: str, n: int, nnz: Optional[int] = None
) -> str:
    """The concrete method a request resolves to (what the key records).

    ``"auto"`` runs the registry's cost-model selector with a
    ``n_components=1`` connected-pattern estimate: the key must be
    derivable from the CSR arrays alone, without paying for component
    discovery.  (The pipeline itself re-resolves with the real component
    count, so on a heavily disconnected pattern the executed method can
    differ from the keyed one — both still return the identical
    permutation.)
    """
    if algorithm != "rcm":
        return "direct"
    if method == "auto":
        return backends.resolve_auto_method(n, nnz)
    return method


@dataclass(frozen=True)
class CacheKey:
    """One content-addressed cache slot.

    ``digest`` combines the pattern digest with every permutation-relevant
    option; it is the cache's dictionary key and the disk tier's file stem.
    The remaining fields are kept readable for inspection (``repro cache``).
    """

    digest: str
    pattern: str
    n: int
    nnz: int
    algorithm: str
    method: str
    start: str
    symmetrize: bool
    transform: Optional[str] = None

    def describe(self) -> dict:
        """JSON-serializable summary (what ``repro cache`` prints)."""
        return {
            "digest": self.digest,
            "pattern": self.pattern,
            "n": self.n,
            "nnz": self.nnz,
            "algorithm": self.algorithm,
            "method": self.method,
            "start": self.start,
            "symmetrize": self.symmetrize,
            "transform": self.transform,
        }


def cache_key(
    mat: CSRMatrix,
    *,
    algorithm: str = "rcm",
    method: str = "auto",
    start: Union[int, str] = "min-valence",
    symmetrize: bool = False,
    transform: Optional[str] = None,
) -> CacheKey:
    """Derive the :class:`CacheKey` for one reordering request.

    Validates the options with the same checks (and error messages) as
    :func:`repro.reorder`, so a request that would fail never produces a
    key.  ``transform`` is canonicalized the same way ``method`` is:
    ``"auto"`` resolves through the scenario classifier's probe-free
    heavy-tail test (:func:`repro.core.transform.resolve_transform` — a
    degree-distribution check, never a BFS), so ``transform="auto"`` on a
    mesh shares its entry with ``transform=None``, and the token is only
    mixed into the digest when a pass actually applies — keys for the
    classical path are unchanged.
    """
    from repro.core.transform import resolve_transform
    from repro.facade import ALGORITHMS, _DIRECT_METHODS

    check_choice("algorithm", algorithm, ALGORITHMS)
    if algorithm == "rcm":
        check_choice("method", method, backends.method_choices())
    else:
        check_choice("method", method, _DIRECT_METHODS)
    check_start(start, max(mat.n, 1))
    if transform is not None:
        from repro.errors import ValidationError

        if algorithm != "rcm":
            raise ValidationError(
                "transform is an RCM-only option; "
                f"algorithm {algorithm!r} does not support it"
            )
        if isinstance(start, (int, np.integer)):
            raise ValidationError(
                "explicit start node cannot be combined with transform="
                f"{transform!r}: the transformation relabels the pattern, "
                "so node ids no longer mean what the caller intended; use "
                "a start strategy or transform=None"
            )
    resolved_tf = resolve_transform(transform, mat)

    pattern = pattern_digest(mat)
    resolved = canonical_method(algorithm, method, mat.n, mat.nnz)
    start_token = f"node:{int(start)}" if isinstance(
        start, (int, np.integer)
    ) else f"strategy:{start}"
    h = hashlib.sha256()
    h.update(pattern.encode())
    h.update(
        f"|alg:{algorithm}|method:{resolved}|start:{start_token}"
        f"|sym:{int(bool(symmetrize))}".encode()
    )
    if resolved_tf is not None:
        h.update(f"|tf:{resolved_tf}".encode())
    return CacheKey(
        digest=h.hexdigest(),
        pattern=pattern,
        n=mat.n,
        nnz=mat.nnz,
        algorithm=algorithm,
        method=resolved,
        start=start_token,
        symmetrize=bool(symmetrize),
        transform=resolved_tf,
    )
