"""The in-process reordering service: cache, coalescing, bounded queue.

The unit of serving here is the :class:`Shard`: one cache + coalescing map
+ bounded admission queue + (optional) batched-admission thread.
:class:`ReorderService` — the historical public API, unchanged — *is* a
single anonymous shard; :class:`repro.service.router.ShardedService`
composes N of them behind a consistent-hash router and
:class:`repro.service.aio.AsyncReorderService` puts an asyncio front door
on either.  A shard constructed with a ``shard_id`` mirrors its counters
to ``service.shard.<i>.*`` and stamps the id into every request's
:class:`~repro.telemetry.context.TraceContext`.

:class:`ReorderService` fronts :func:`repro.reorder` with the three things
a traffic-serving deployment needs:

* **content-hash caching** — requests key on the CSR pattern digest plus
  the permutation-relevant options (:mod:`repro.service.keys`); a repeated
  pattern is served from :class:`~repro.service.cache.PermutationCache`
  without recomputation;
* **request coalescing** — concurrent submissions of the same key share
  the one in-flight computation instead of stampeding the pool (counter
  ``service.coalesced``);
* **bounded admission** — at most ``max_pending`` computations are queued
  or running; beyond that :meth:`submit` blocks up to ``submit_timeout``
  seconds and then raises :class:`ServiceOverloadedError` (backpressure,
  counter ``service.rejected``).  Each blocking :meth:`reorder` call takes
  a per-request timeout and raises :class:`ServiceTimeoutError` when the
  answer is not ready in time (the computation keeps running and still
  populates the cache);
* **batched admission** (``batch_window_ms > 0``) — admitted misses land
  on a batch queue instead of going straight to a pool thread; an
  admission thread drains up to ``max_batch`` requests per tick (waiting
  at most ``batch_window_ms`` after the first), groups them by requested
  execution options, and runs each group as **one** amortized dispatch
  through :func:`repro.facade.reorder_many` (shared-memory transport,
  persistent pool, batch-aware ``auto``).  Cache, coalescing and
  backpressure semantics are exactly those of the unbatched path — only
  the dispatch is shared.  Per-batch telemetry: histogram
  ``service.batch.size`` and span ``service.batch``.

Failures degrade gracefully: when an execution method dies with an
environmental error (broken pool, OS failure, memory pressure) the request
falls back along the registry's declarative degradation chain
(:func:`repro.backends.degradation_order`, e.g.
``parallel -> vectorized -> serial``) — the same counter convention as
``parallel.fallbacks.*``, recorded as ``service.fallbacks.<method>``.  A
requested method that is not registered at all (an optional backend absent
from this install) degrades the same way at admission time instead of
erroring.  Validation errors (``ValueError`` / ``TypeError``) always
propagate: a bad request must not burn the chain.

Telemetry: span ``service.request`` per computation, counters
``service.requests`` / ``service.computed`` / ``service.coalesced`` /
``service.rejected`` / ``service.timeouts`` / ``service.fallbacks.*`` and
the ``service.queue.depth`` gauge.  See ``docs/service.md``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import backends
from repro.errors import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.sparse.csr import CSRMatrix
from repro.core.api import ReorderResult
from repro.service.keys import CacheKey, cache_key
from repro.service.cache import PermutationCache
from repro.parallel.executor import record_fallback
from repro import telemetry
from repro.telemetry import context as tctx

__all__ = [
    "ServiceConfig",
    "Shard",
    "ReorderService",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "fallback_chain",
]

_UNSET = object()

#: environmental failures that trigger the method fallback chain;
#: ``ValueError``/``TypeError`` (bad requests) always propagate
_FALLBACK_EXCEPTIONS = (RuntimeError, OSError, MemoryError)

#: warm-hit latency buckets (sub-millisecond fidelity; hits are lookups,
#: not computations, so the default ms-flavoured buckets are far too coarse)
_HIT_LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
)

#: batch-size histogram buckets (small powers of two; the +Inf tail
#: catches anything beyond max_batch)
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

# ServiceError / ServiceOverloadedError / ServiceTimeoutError are defined
# in repro.errors (the unified hierarchy under ReproError) and re-exported
# from here — their historical import home — unchanged: all three remain
# RuntimeError subclasses.


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of :class:`ReorderService`.

    ``n_workers`` serving threads drain the queue; ``max_pending`` bounds
    queued-plus-running computations (admission control, not a result
    limit — cache hits and coalesced requests are always admitted);
    ``submit_timeout`` is how long :meth:`ReorderService.submit` may block
    for a free slot before rejecting; ``request_timeout`` is the default
    deadline of blocking :meth:`ReorderService.reorder` calls (``None`` =
    wait forever).  ``fallback=False`` disables the method degradation
    chain (the first error propagates).

    ``batch_window_ms > 0`` turns on batched admission: after the first
    queued miss the admission thread waits up to that many milliseconds
    (or until ``max_batch`` requests are queued) and dispatches the drained
    group as one amortized executor call.  ``0.0`` (default) keeps the
    classic one-request-per-dispatch behavior exactly.
    """

    n_workers: int = 2
    max_pending: int = 64
    submit_timeout: float = 0.0
    request_timeout: Optional[float] = None
    cache_capacity: int = 128
    disk_dir: Optional[Union[str, Path]] = None
    fallback: bool = True
    batch_window_ms: float = 0.0
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


def fallback_chain(algorithm: str, method: str) -> Tuple[str, ...]:
    """Methods tried in order for one request.

    RCM degrades along the registry's declarative chain — the requested
    method, then every backend with a ``fallback_rank``, ascending (today
    ``vectorized`` then ``serial``).  Every method returns the identical
    permutation, so falling back changes latency, never the answer.
    Non-RCM algorithms have one strategy.
    """
    if algorithm != "rcm":
        return (method,)
    return backends.degradation_order(method)


def admit_method(
    algorithm: str,
    method: str,
    *,
    fallback: bool = True,
    on_fallback=None,
) -> str:
    """The method a request is actually admitted on.

    A client may ask for an optional backend that never registered here
    (GPU build, distributed build...).  With ``fallback`` enabled such a
    request is admitted on the method's first registered degradation
    target instead of bouncing with a validation error; ``on_fallback``
    (called with the *requested* method) lets the caller count the
    degradation.  Shared by :class:`Shard` and the sharded router — the
    router must admit *before* hashing the cache key, because the admitted
    method is part of the key.
    """
    if (
        not fallback
        or algorithm != "rcm"
        or method == "auto"
        or backends.is_registered(method)
    ):
        return method
    for m in backends.degradation_order(method)[1:]:
        if backends.is_registered(m):
            if on_fallback is not None:
                on_fallback(method)
            return m
    return method


def _call_reorder(mat: CSRMatrix, kwargs: dict) -> ReorderResult:
    """The one seam between the service and the facade (tests patch it)."""
    from repro.facade import reorder

    return reorder(mat, **kwargs)


def _call_reorder_many(
    mats: Sequence[CSRMatrix], kwargs: dict
) -> List[ReorderResult]:
    """Batch seam: one grouped dispatch through the facade batch API.

    Routing through :func:`repro.facade.reorder_many` (not a loop over
    :func:`_call_reorder`) is what makes batched admission amortize — and
    what keeps batched results byte-identical to the facade, because both
    run the same ``_compute_many`` path.
    """
    from repro.facade import reorder_many

    return reorder_many(mats, **kwargs)


class Shard:
    """One self-contained serving unit: cache + coalescing + admission.

    Everything a single-process service needs lives here — the LRU/disk
    :class:`~repro.service.cache.PermutationCache`, the in-flight
    coalescing map, the backpressure semaphore and the optional
    batched-admission thread.  Constructed bare it *is* the classic
    service (see :class:`ReorderService`); constructed with a ``shard_id``
    by :class:`repro.service.router.ShardedService` it additionally
    mirrors counters to ``service.shard.<i>.*``, maintains the
    ``service.shard.<i>.queue.depth`` gauge, and stamps the shard id into
    each request's trace context.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        cache: Optional[PermutationCache] = None,
        shard_id: Optional[int] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.shard_id = shard_id
        # explicit None check: an empty PermutationCache is falsy (__len__)
        self.cache = cache if cache is not None else PermutationCache(
            self.config.cache_capacity, disk_dir=self.config.disk_dir
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.n_workers,
            thread_name_prefix="repro-service",
        )
        self._lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._slots = threading.BoundedSemaphore(self.config.max_pending)
        self._pending = 0
        self._closed = False
        # batched admission: queued misses drain through one admission
        # thread that groups them into amortized dispatches
        self._batch_queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._admission_thread: Optional[threading.Thread] = None
        if self.config.batch_window_ms > 0:
            self._admission_thread = threading.Thread(
                target=self._admission_loop,
                name="repro-service-admission",
                daemon=True,
            )
            self._admission_thread.start()
        # telemetry-independent mirror of the service counters
        self.counters = {
            "requests": 0,
            "computed": 0,
            "coalesced": 0,
            "rejected": 0,
            "timeouts": 0,
            "fallbacks": 0,
        }

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        mat: CSRMatrix,
        *,
        algorithm: str = "rcm",
        method: str = "auto",
        start: Union[int, str] = "min-valence",
        n_workers: int = 4,
        symmetrize: bool = False,
        _key: Optional[CacheKey] = None,
    ) -> "Future[ReorderResult]":
        """Enqueue one request; returns a future of its ReorderResult.

        The future is already resolved on a cache hit, shared with the
        in-flight leader on a coalesced duplicate, and backed by a fresh
        pool task otherwise.  ``_key`` is the router's private fast path:
        the sharded service admits and hashes exactly once, routes on the
        digest, then hands the finished key to the owning shard (``method``
        must already be the admitted method the key was built from).
        """
        if self._closed:
            raise ServiceError("service is closed")
        if _key is not None:
            key = _key
        else:
            method = self._admit_method(algorithm, method)
            key = cache_key(
                mat, algorithm=algorithm, method=method, start=start,
                symmetrize=symmetrize,
            )
        self._count("requests")

        t_lookup = time.perf_counter_ns()
        hit = self.cache.get(key)
        if hit is not None:
            tel = telemetry.get()
            if tel.enabled:
                # warm-hit latency: the cache lookup *is* the request
                tel.histogram(
                    "service.hit_latency_ms", buckets=_HIT_LATENCY_BUCKETS
                ).observe((time.perf_counter_ns() - t_lookup) / 1e6)
            fut: "Future[ReorderResult]" = Future()
            fut.set_result(hit)
            return fut

        kwargs = dict(
            algorithm=algorithm, method=method, start=start,
            n_workers=n_workers, symmetrize=symmetrize,
        )
        with self._lock:
            existing = self._inflight.get(key.digest)
            if existing is not None:
                self._count("coalesced")
                return existing
        if not self._slots.acquire(
            blocking=self.config.submit_timeout > 0,
            timeout=self.config.submit_timeout or None,
        ):
            self._count("rejected")
            raise ServiceOverloadedError(
                f"submission queue full ({self.config.max_pending} pending); "
                "retry later or raise ServiceConfig.max_pending"
            )
        with self._lock:
            # a duplicate may have raced past the first check while we
            # waited for a slot — coalesce onto it and give the slot back
            existing = self._inflight.get(key.digest)
            if existing is not None:
                self._slots.release()
                self._count("coalesced")
                return existing
            # the twin may instead have finished entirely between our cache
            # miss and here (put -> resolve -> settle); without this
            # re-check we would recompute a key that is already cached
            hit = self.cache.get(key)
            if hit is not None:
                self._slots.release()
                fut = Future()
                fut.set_result(hit)
                return fut
            # request identity for cross-thread/process tracing: created
            # at admission so the pool thread, the parallel workers and
            # any facade re-entry all stamp the same trace_id
            ctx = (
                tctx.new_trace_context(
                    request_id=key.digest[:12], shard_id=self.shard_id
                )
                if telemetry.get().enabled else None
            )
            if self._admission_thread is not None:
                # batched admission: park the request on the batch queue
                # behind a plain future; the admission thread groups and
                # dispatches, then resolves it
                fut = Future()
                self._batch_queue.put((key, mat, kwargs, ctx, fut))
            else:
                fut = self._pool.submit(self._run, key, mat, kwargs, ctx)
            self._inflight[key.digest] = fut
            self._pending += 1
            self._set_depth()
        fut.add_done_callback(lambda _f, d=key.digest: self._settle(d))
        return fut

    def reorder(
        self,
        mat: CSRMatrix,
        *,
        timeout=_UNSET,
        **options,
    ) -> ReorderResult:
        """Blocking convenience: :meth:`submit` + wait.

        ``timeout`` (seconds) defaults to ``ServiceConfig.request_timeout``;
        on expiry raises :class:`ServiceTimeoutError` — the computation is
        not cancelled and still lands in the cache for the retry.
        """
        fut = self.submit(mat, **options)
        if timeout is _UNSET:
            timeout = self.config.request_timeout
        try:
            return fut.result(timeout)
        except FuturesTimeoutError:
            self._count("timeouts")
            raise ServiceTimeoutError(
                f"request did not complete within {timeout}s"
            ) from None

    def reorder_many(
        self, mats: Sequence[CSRMatrix], **options
    ) -> List[ReorderResult]:
        """Submit a batch and gather results in input order.

        Every matrix goes through the full admission pipeline (cache,
        coalescing, backpressure).  With batched admission on
        (``batch_window_ms > 0``) the misses coalesce into grouped
        dispatches automatically — a whole list submitted at once
        typically lands in one batch.  Results are byte-identical to
        per-matrix :meth:`reorder` calls.
        """
        futures = [self.submit(m, **options) for m in mats]
        timeout = self.config.request_timeout
        out = []
        for fut in futures:
            try:
                out.append(fut.result(timeout))
            except FuturesTimeoutError:
                self._count("timeouts")
                raise ServiceTimeoutError(
                    f"batch request did not complete within {timeout}s"
                ) from None
        return out

    def map(
        self, mats: Sequence[CSRMatrix], **options
    ) -> List[ReorderResult]:
        """Alias of :meth:`reorder_many` (the PR 3 name, kept working)."""
        return self.reorder_many(mats, **options)

    def _admit_method(self, algorithm: str, method: str) -> str:
        """Degrade a request for a method this install does not have.

        Delegates to :func:`admit_method`; the degradation is counted as
        ``service.fallbacks.<method>``, like any other degradation,
        instead of bouncing with a validation error.
        """

        def _degraded(requested: str) -> None:
            self._count("fallbacks")
            record_fallback(requested, prefix="service")

        return admit_method(
            algorithm, method,
            fallback=self.config.fallback, on_fallback=_degraded,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run(self, key: CacheKey, mat: CSRMatrix, kwargs: dict,
             ctx=None) -> ReorderResult:
        tel = telemetry.get()
        with tctx.activate(ctx):
            with tel.span(
                "service.request", category="service",
                algorithm=kwargs["algorithm"], method=kwargs["method"],
                n=mat.n,
                request_id=ctx.request_id if ctx is not None else None,
            ):
                self._count("computed")
                result = self._execute(mat, kwargs)
                # cache before the future resolves so a waiter that
                # arrives after coalescing cleanup finds the entry, never
                # a stale gap
                self.cache.put(key, result)
                return result

    def _execute(self, mat: CSRMatrix, kwargs: dict) -> ReorderResult:
        if not self.config.fallback:
            return _call_reorder(mat, kwargs)
        chain = fallback_chain(kwargs["algorithm"], kwargs["method"])
        last_exc: Optional[BaseException] = None
        for i, m in enumerate(chain):
            try:
                return _call_reorder(mat, {**kwargs, "method": m})
            except _FALLBACK_EXCEPTIONS as exc:
                last_exc = exc
                if i + 1 < len(chain):
                    self._count("fallbacks")
                    record_fallback(m, prefix="service")
        assert last_exc is not None
        raise last_exc

    # ------------------------------------------------------------------
    # batched admission
    # ------------------------------------------------------------------
    def _admission_loop(self) -> None:
        """Drain the batch queue: collect one admission tick, dispatch.

        The first request of a tick is awaited blocking; once it lands the
        loop keeps draining until ``batch_window_ms`` elapses or
        ``max_batch`` requests are in hand, groups the drained requests by
        their execution options, and hands every group to the worker pool
        as one :meth:`_run_group` dispatch.
        """
        window_s = self.config.batch_window_ms / 1000.0
        while True:
            try:
                item = self._batch_queue.get(timeout=0.1)
            except queue.Empty:
                if self._closed:
                    return
                continue
            if item is None:  # close() sentinel
                self._drain_remaining()
                return
            batch = [item]
            deadline = time.monotonic() + window_s
            stop = False
            while len(batch) < self.config.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    extra = self._batch_queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            self._dispatch_groups(batch)
            if stop:
                self._drain_remaining()
                return

    def _drain_remaining(self) -> None:
        """Flush requests still queued at shutdown so no future hangs."""
        leftovers = []
        while True:
            try:
                item = self._batch_queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                leftovers.append(item)
        if leftovers:
            self._dispatch_groups(leftovers)

    def _dispatch_groups(self, batch: list) -> None:
        """Group a drained tick by execution options; one dispatch each.

        The group key is every option that changes what the executor runs
        (algorithm, method, start, symmetrize, n_workers) — matrices under
        the same key share one :func:`repro.facade.reorder_many` call.
        """
        groups: Dict[tuple, list] = {}
        for item in batch:
            kwargs = item[2]
            gkey = (
                kwargs["algorithm"], kwargs["method"], kwargs["start"],
                kwargs["symmetrize"], kwargs["n_workers"],
            )
            groups.setdefault(gkey, []).append(item)
        for items in groups.values():
            self._pool.submit(self._run_group, items)

    def _run_group(self, items: list) -> None:
        """Execute one admission group as a single amortized dispatch.

        Each item's future is resolved individually (result or exception),
        and each result is cached under its own key before its future
        resolves — the same ordering guarantee as the unbatched
        :meth:`_run`.
        """
        tel = telemetry.get()
        if tel.enabled:
            tel.histogram(
                "service.batch.size", buckets=_BATCH_SIZE_BUCKETS
            ).observe(float(len(items)))
        if len(items) == 1:
            key, mat, kwargs, ctx, fut = items[0]
            if not fut.set_running_or_notify_cancel():
                return  # pragma: no cover - cancelled before dispatch
            try:
                fut.set_result(self._run(key, mat, kwargs, ctx))
            except BaseException as exc:
                fut.set_exception(exc)
            return

        keys = [it[0] for it in items]
        mats = [it[1] for it in items]
        kwargs = dict(items[0][2])
        futures = [it[4] for it in items]
        live = [f.set_running_or_notify_cancel() for f in futures]
        try:
            with tel.span(
                "service.batch", category="service",
                n_requests=len(items), algorithm=kwargs["algorithm"],
                method=kwargs["method"],
            ):
                for _ in items:
                    self._count("computed")
                results = self._execute_many(mats, kwargs)
                for key, result, fut, ok in zip(
                    keys, results, futures, live
                ):
                    self.cache.put(key, result)
                    if ok:
                        fut.set_result(result)
        except BaseException as exc:
            for fut, ok in zip(futures, live):
                if ok and not fut.done():
                    fut.set_exception(exc)

    def _execute_many(
        self, mats: List[CSRMatrix], kwargs: dict
    ) -> List[ReorderResult]:
        """Batch analogue of :meth:`_execute`: one grouped dispatch, same
        degradation chain (the whole group falls back together)."""
        if not self.config.fallback:
            return _call_reorder_many(mats, kwargs)
        chain = fallback_chain(kwargs["algorithm"], kwargs["method"])
        last_exc: Optional[BaseException] = None
        for i, m in enumerate(chain):
            try:
                return _call_reorder_many(mats, {**kwargs, "method": m})
            except _FALLBACK_EXCEPTIONS as exc:
                last_exc = exc
                if i + 1 < len(chain):
                    self._count("fallbacks")
                    record_fallback(m, prefix="service")
        assert last_exc is not None
        raise last_exc

    def _settle(self, digest: str) -> None:
        with self._lock:
            self._inflight.pop(digest, None)
            self._pending -= 1
            self._set_depth()
        self._slots.release()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        # separate lock: _count is called both inside and outside
        # self._lock regions, and threading.Lock is not reentrant
        with self._counter_lock:
            self.counters[name] += 1
        tel = telemetry.get()
        if tel.enabled:
            # aggregate counters sum correctly across shards; a shard
            # additionally mirrors into its own labeled family
            tel.counter(f"service.{name}").add(1)
            if self.shard_id is not None:
                tel.counter(f"service.shard.{self.shard_id}.{name}").add(1)

    def _set_depth(self) -> None:
        tel = telemetry.get()
        if tel.enabled:
            if self.shard_id is None:
                tel.gauge("service.queue.depth").set(self._pending)
            else:
                # per-shard gauge only: N shards last-writer-winning one
                # global gauge would be noise, and the router sums
                # ``pending`` for the aggregate anyway
                tel.gauge(
                    f"service.shard.{self.shard_id}.queue.depth"
                ).set(self._pending)

    @property
    def pending(self) -> int:
        """Computations currently queued or running."""
        with self._lock:
            return self._pending

    @property
    def healthy(self) -> bool:
        """Able to serve: open, with a live admission thread when batched.

        What ``/statusz`` reports per shard — a shard whose batched
        admission thread died would otherwise park every miss forever.
        """
        if self._closed:
            return False
        if self.config.batch_window_ms > 0:
            return (
                self._admission_thread is not None
                and self._admission_thread.is_alive()
            )
        return True

    def stats(self) -> dict:
        """JSON-serializable snapshot: service counters + cache state."""
        with self._counter_lock:
            counters = dict(self.counters)
        with self._lock:
            pending = self._pending
        out = {
            "pending": pending,
            "max_pending": self.config.max_pending,
            "n_workers": self.config.n_workers,
            "healthy": self.healthy,
            **{f"service.{k}": v for k, v in counters.items()},
            "cache": self.cache.stats_dict(),
        }
        if self.shard_id is not None:
            out["shard_id"] = self.shard_id
            from repro.telemetry import profiler as _profiler

            prof = _profiler.get_profiler()
            if prof is not None:
                out["profile_samples"] = prof.samples_by_shard().get(
                    self.shard_id, 0
                )
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests and shut the worker pool down."""
        self._closed = True
        if self._admission_thread is not None:
            self._batch_queue.put(None)  # wake the admission loop
            if wait:
                self._admission_thread.join(timeout=5.0)
            self._admission_thread = None
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "Shard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReorderService(Shard):
    """In-process reordering service over :func:`repro.reorder`.

    ::

        with ReorderService() as svc:
            res = svc.reorder(mat)                  # cold: computes + caches
            res = svc.reorder(mat)                  # warm: cache hit
            futs = [svc.submit(m) for m in mats]    # async fan-out

    Permutations are bit-identical to ``repro.reorder(mat, ...)`` — cold
    and warm — because cache keys are content hashes of the exact pattern
    plus options.

    Structurally this is one anonymous :class:`Shard` (``shard_id=None``):
    the historical single-service API, byte-for-byte unchanged.  For N > 1
    shards behind a consistent-hash router see
    :class:`repro.service.ShardedService`; for an awaitable front end see
    :class:`repro.service.AsyncReorderService`.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        cache: Optional[PermutationCache] = None,
    ) -> None:
        super().__init__(config, cache=cache)
