"""Reordering-as-a-service: caching, coalescing, bounded admission.

The layer that turns :func:`repro.reorder` into something that can absorb
traffic: a content-hash permutation cache (one reordering amortized over
many downstream uses — the paper's whole premise), request coalescing so
identical concurrent requests share one computation, and a bounded queue
with backpressure and a graceful method-degradation chain.

::

    from repro.service import ReorderService

    with ReorderService() as svc:
        first = svc.reorder(mat)     # computes and caches
        again = svc.reorder(mat)     # served from the cache, bit-identical

See ``docs/service.md`` for cache semantics, coalescing guarantees and the
telemetry taxonomy.
"""

from repro.service.keys import CacheKey, cache_key, pattern_digest
from repro.service.cache import CacheStats, PermutationCache
from repro.service.core import (
    ReorderService,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    fallback_chain,
)

__all__ = [
    "CacheKey",
    "cache_key",
    "pattern_digest",
    "CacheStats",
    "PermutationCache",
    "ReorderService",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "fallback_chain",
]
