"""Reordering-as-a-service: caching, coalescing, bounded admission.

The layer that turns :func:`repro.reorder` into something that can absorb
traffic: a content-hash permutation cache (one reordering amortized over
many downstream uses — the paper's whole premise), request coalescing so
identical concurrent requests share one computation, and a bounded queue
with backpressure and a graceful method-degradation chain.

::

    from repro.service import ReorderService

    with ReorderService() as svc:
        first = svc.reorder(mat)     # computes and caches
        again = svc.reorder(mat)     # served from the cache, bit-identical

Scaling out, the same machinery shards: :class:`ShardedService` routes
content-hash keys onto N independent :class:`Shard` units via a
consistent-hash :class:`HashRing` (per-shard LRU + disk tiers that
survive resharding), and :class:`AsyncReorderService` puts an awaitable
front door on either flavor::

    from repro.service import ShardedService

    with ShardedService(shards=4) as svc:
        res = svc.reorder(mat)       # routed by content hash, bit-identical

See ``docs/service.md`` for cache semantics, coalescing guarantees and the
telemetry taxonomy.
"""

from repro.service.keys import CacheKey, cache_key, pattern_digest
from repro.service.cache import CacheStats, PermutationCache
from repro.service.core import (
    ReorderService,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    Shard,
    fallback_chain,
)
from repro.service.router import HashRing, ShardedCache, ShardedService
from repro.service.aio import AsyncReorderService

__all__ = [
    "CacheKey",
    "cache_key",
    "pattern_digest",
    "CacheStats",
    "PermutationCache",
    "Shard",
    "ReorderService",
    "ShardedCache",
    "ShardedService",
    "AsyncReorderService",
    "HashRing",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceTimeoutError",
    "fallback_chain",
]
