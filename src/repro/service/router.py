"""Sharded reordering service: a consistent-hash router over N shards.

The scaling unit is the :class:`~repro.service.core.Shard` — one cache +
coalescing map + bounded queue + admission thread.  This module composes
N of them:

* :class:`HashRing` — consistent hashing of the content-hash ``CacheKey``
  digest onto shard slots.  Each shard owns ~``replicas`` pseudo-random
  points on a 64-bit ring; a key routes to the first point at or after
  its own position (wrapping).  Adding or removing one shard therefore
  remaps only ~1/N of the key population, and every remapped key moves
  *to the new shard* (on add) or *off the dead shard* (on remove) — no
  key ever shuffles between two surviving shards, which is what lets
  per-shard disk tiers survive resharding.
* :class:`ShardedCache` — N :class:`~repro.service.cache.PermutationCache`
  tiers, one per slot, each with a private disk directory
  ``<disk_dir>/shard-<i>`` and read-only fallback probes into its
  siblings' directories (so a key remapped by a resharding still
  warm-hits from disk and is promoted into its new owner's tier).  It
  duck-types ``get``/``put``, so :func:`repro.reorder(cache=..., shards=N)
  <repro.facade.reorder>` uses it exactly like a plain cache.
* :class:`ShardedService` — the router.  ``submit`` admits the method,
  hashes the key **once**, routes on the digest, and hands the finished
  key to the owning shard; everything after routing (hit fast path,
  coalescing, backpressure, batched admission, degradation) is the
  shard's unchanged machinery.  The hot path crosses zero shared state:
  shards never take each other's locks and never write each other's disk
  tiers.

Telemetry: each shard mirrors its counters to ``service.shard.<i>.*``
and maintains ``service.shard.<i>.queue.depth``; aggregate ``service.*``
counters keep summing across shards.  ``stats()`` nests per-shard
snapshots (with ``healthy`` flags) for ``/statusz``.  See
``docs/service.md`` ("Sharded deployment").
"""

from __future__ import annotations

import bisect
import hashlib
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.api import ReorderResult
from repro.errors import ServiceError, ServiceTimeoutError
from repro.parallel.executor import record_fallback
from repro.service.cache import PermutationCache
from repro.service.core import (
    _UNSET,
    ServiceConfig,
    Shard,
    admit_method,
)
from repro.service.keys import CacheKey, cache_key
from repro.sparse.csr import CSRMatrix
from repro import telemetry

__all__ = ["HashRing", "ShardedCache", "ShardedService"]

#: virtual nodes per shard — enough that the largest/mean point-arc ratio
#: (and hence ``shard_balance``) stays close to 1 for small N
DEFAULT_REPLICAS = 128


class HashRing:
    """Consistent-hash ring mapping hex digests onto integer shard ids.

    Each shard id owns ``replicas`` points at
    ``sha256("<id>:<r>")[:8]`` on a 64-bit ring; :meth:`route` walks a
    key (the leading 64 bits of its hex digest) clockwise to the next
    point.  Membership changes move only the arcs adjacent to the added
    or removed shard's points: ~1/N of keys on a change, each moved key
    involving the changed shard.
    """

    def __init__(
        self,
        shard_ids: Iterable[int] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        # parallel sorted arrays: _points for bisect, _owners for lookup
        self._points: List[int] = []
        self._owners: List[int] = []
        self._shards: set = set()
        for sid in shard_ids:
            self.add(sid)

    @staticmethod
    def _point(sid: int, replica: int) -> int:
        digest = hashlib.sha256(f"{sid}:{replica}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def add(self, sid: int) -> None:
        """Insert a shard's virtual nodes (idempotent add is an error)."""
        sid = int(sid)
        if sid in self._shards:
            raise ValueError(f"shard {sid} already on the ring")
        self._shards.add(sid)
        for r in range(self.replicas):
            point = self._point(sid, r)
            i = bisect.bisect_left(self._points, point)
            # ties (astronomically unlikely) resolve to the lower sid so
            # routing stays deterministic regardless of insertion order
            while (
                i < len(self._points)
                and self._points[i] == point
                and self._owners[i] < sid
            ):  # pragma: no cover - needs a sha256 point collision
                i += 1
            self._points.insert(i, point)
            self._owners.insert(i, sid)

    def remove(self, sid: int) -> None:
        """Drop a shard's virtual nodes; its arcs fall to the successors."""
        sid = int(sid)
        if sid not in self._shards:
            raise ValueError(f"shard {sid} not on the ring")
        self._shards.discard(sid)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != sid
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def route(self, digest: str) -> int:
        """The shard id owning ``digest`` (a hex string, >= 16 chars)."""
        if not self._points:
            raise ValueError("empty hash ring")
        point = int(digest[:16], 16)
        i = bisect.bisect_right(self._points, point)
        if i == len(self._points):
            i = 0  # wrap: keys past the last point belong to the first
        return self._owners[i]

    @property
    def shard_ids(self) -> Tuple[int, ...]:
        """Current members, ascending."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)


def shard_dir(root: Union[str, Path], index: int) -> Path:
    """The private disk-tier directory of shard ``index`` under ``root``."""
    return Path(root) / f"shard-{index}"


def discover_shard_dirs(root: Union[str, Path]) -> List[Tuple[int, Path]]:
    """Existing ``shard-<i>`` tiers under ``root``, ascending by index.

    What the shard-aware ``repro cache`` CLI iterates; a root without any
    ``shard-*`` subdirectory is an unsharded (single-tier) layout and
    returns ``[]``.
    """
    out: List[Tuple[int, Path]] = []
    root = Path(root)
    if not root.is_dir():
        return out
    for path in root.glob("shard-*"):
        if not path.is_dir():
            continue
        try:
            index = int(path.name.split("-", 1)[1])
        except ValueError:
            continue
        out.append((index, path))
    out.sort()
    return out


class ShardedCache:
    """N per-shard :class:`PermutationCache` tiers behind one hash ring.

    Shard ``i`` persists under ``<disk_dir>/shard-<i>`` and probes its
    siblings' directories read-only on a disk miss (promotion writes land
    only in its own directory) — so resharding never loses warm disk
    entries and never lets one shard write another's tier.  With
    ``disk_dir=None`` the tiers are memory-only.

    Duck-types the single-cache protocol (``get``/``put``/``invalidate``/
    ``clear``/``stats_dict``/``__len__``), routing each key to its owning
    tier, so both the facade's keyed path and :class:`ShardedService`
    use it unchanged.
    """

    def __init__(
        self,
        disk_dir: Optional[Union[str, Path]] = None,
        n_shards: int = 1,
        *,
        capacity: int = 128,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.ring = HashRing(range(self.n_shards), replicas=replicas)
        dirs = (
            [shard_dir(self.disk_dir, i) for i in range(self.n_shards)]
            if self.disk_dir is not None
            else [None] * self.n_shards
        )
        self.caches: List[PermutationCache] = [
            PermutationCache(
                capacity,
                disk_dir=dirs[i],
                fallback_dirs=(
                    [d for j, d in enumerate(dirs) if j != i]
                    if self.disk_dir is not None
                    else ()
                ),
            )
            for i in range(self.n_shards)
        ]

    def shard_index(self, key_or_digest: Union[CacheKey, str]) -> int:
        """The owning shard slot of a key (what the router consults)."""
        digest = (
            key_or_digest.digest
            if isinstance(key_or_digest, CacheKey)
            else str(key_or_digest)
        )
        return self.ring.route(digest)

    def get(self, key: CacheKey) -> Optional[ReorderResult]:
        """Look up the key on its owning shard's cache."""
        return self.caches[self.shard_index(key)].get(key)

    def put(self, key: CacheKey, result: ReorderResult) -> None:
        """Store the result on the key's owning shard's cache."""
        self.caches[self.shard_index(key)].put(key, result)

    def invalidate(self, key_or_digest: Union[CacheKey, str]) -> int:
        """Drop a key from *every* shard tier; total tiers that held it.

        Swept across all shards (not just the current owner) because a
        resharded key may have stale copies under previous owners' disk
        directories.
        """
        return sum(c.invalidate(key_or_digest) for c in self.caches)

    def clear(self, *, purge_disk: bool = False) -> None:
        """Empty every shard's memory tier (and disk with ``purge_disk``)."""
        for c in self.caches:
            c.clear(purge_disk=purge_disk)

    def stats_dict(self) -> dict:
        """Aggregate counters plus the per-shard breakdown."""
        per_shard = [c.stats_dict() for c in self.caches]
        total: Dict[str, int] = {}
        for snap in per_shard:
            for k, v in snap.items():
                total[k] = total.get(k, 0) + int(v)
        total["n_shards"] = self.n_shards
        total["shards"] = per_shard
        return total

    def __len__(self) -> int:
        return sum(len(c) for c in self.caches)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self.caches[self.shard_index(key)]


class ShardedService:
    """N independent :class:`Shard` units behind a consistent-hash router.

    ::

        with ShardedService(shards=4) as svc:
            res = svc.reorder(mat)                 # routed by content hash
            futs = [svc.submit(m) for m in mats]   # fan-out across shards

    The router admits the method and hashes the cache key exactly once
    per request, routes on the digest, and delegates to the owning
    shard's unchanged machinery — so results are byte-identical to
    :class:`~repro.service.core.ReorderService` (``shards=1`` *is* that
    service plus a one-entry ring).  Shards share nothing on the hot
    path; the only cross-shard traffic is the read-only disk-tier
    fallback probe after a resharding.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        shards: int = 2,
        cache: Optional[ShardedCache] = None,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.config = config if config is not None else ServiceConfig()
        if cache is None:
            cache = ShardedCache(
                self.config.disk_dir,
                shards,
                capacity=self.config.cache_capacity,
                replicas=replicas,
            )
        elif cache.n_shards != shards:
            raise ValueError(
                f"cache has {cache.n_shards} shards, service wants {shards}"
            )
        self.cache = cache
        self.ring = cache.ring
        self.shards: List[Shard] = [
            Shard(self.config, cache=cache.caches[i], shard_id=i)
            for i in range(shards)
        ]
        self._closed = False
        self._counter_lock = threading.Lock()
        # router-level counters (admission happens before routing, so
        # these cannot live on any one shard)
        self.counters = {"fallbacks": 0, "timeouts": 0}

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, key_or_digest: Union[CacheKey, str]) -> int:
        """The shard index a key lands on (stable content-hash routing)."""
        return self.cache.shard_index(key_or_digest)

    def _admit(self, algorithm: str, method: str) -> str:
        def _degraded(requested: str) -> None:
            with self._counter_lock:
                self.counters["fallbacks"] += 1
            tel = telemetry.get()
            if tel.enabled:
                tel.counter("service.fallbacks").add(1)
            record_fallback(requested, prefix="service")

        return admit_method(
            algorithm, method,
            fallback=self.config.fallback, on_fallback=_degraded,
        )

    # ------------------------------------------------------------------
    # submission (the ReorderService surface, routed)
    # ------------------------------------------------------------------
    def submit(
        self,
        mat: CSRMatrix,
        *,
        algorithm: str = "rcm",
        method: str = "auto",
        start: Union[int, str] = "min-valence",
        n_workers: int = 4,
        symmetrize: bool = False,
    ) -> "Future[ReorderResult]":
        """Admit, hash once, route, delegate to the owning shard."""
        if self._closed:
            raise ServiceError("service is closed")
        method = self._admit(algorithm, method)
        key = cache_key(
            mat, algorithm=algorithm, method=method, start=start,
            symmetrize=symmetrize,
        )
        shard = self.shards[self.ring.route(key.digest)]
        return shard.submit(
            mat, algorithm=algorithm, method=method, start=start,
            n_workers=n_workers, symmetrize=symmetrize, _key=key,
        )

    def reorder(
        self, mat: CSRMatrix, *, timeout=_UNSET, **options
    ) -> ReorderResult:
        """Blocking convenience: :meth:`submit` + wait (same semantics as
        :meth:`ReorderService.reorder <repro.service.core.Shard.reorder>`)."""
        fut = self.submit(mat, **options)
        if timeout is _UNSET:
            timeout = self.config.request_timeout
        try:
            return fut.result(timeout)
        except FuturesTimeoutError:
            self._count_timeout()
            raise ServiceTimeoutError(
                f"request did not complete within {timeout}s"
            ) from None

    def reorder_many(
        self, mats: Sequence[CSRMatrix], **options
    ) -> List[ReorderResult]:
        """Submit a batch across shards; gather in input order."""
        futures = [self.submit(m, **options) for m in mats]
        timeout = self.config.request_timeout
        out = []
        for fut in futures:
            try:
                out.append(fut.result(timeout))
            except FuturesTimeoutError:
                self._count_timeout()
                raise ServiceTimeoutError(
                    f"batch request did not complete within {timeout}s"
                ) from None
        return out

    def map(
        self, mats: Sequence[CSRMatrix], **options
    ) -> List[ReorderResult]:
        """Alias of :meth:`reorder_many` (mirrors the single service)."""
        return self.reorder_many(mats, **options)

    def invalidate(self, key_or_digest: Union[CacheKey, str]) -> int:
        """Sweep a key out of every shard tier; tiers that dropped it."""
        return self.cache.invalidate(key_or_digest)

    def _count_timeout(self) -> None:
        with self._counter_lock:
            self.counters["timeouts"] += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("service.timeouts").add(1)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Computations queued or running, summed across shards."""
        return sum(s.pending for s in self.shards)

    def queue_depths(self) -> List[int]:
        """Per-shard pending depth, by shard index (the asyncio front
        end's gauge source)."""
        return [s.pending for s in self.shards]

    @property
    def healthy(self) -> bool:
        """Every shard healthy and the router open."""
        return not self._closed and all(s.healthy for s in self.shards)

    def stats(self) -> dict:
        """Aggregate + per-shard snapshot (what ``/statusz`` serves).

        ``service.*`` counters are summed across shards (plus the
        router-level admission fallbacks and timeout observations);
        ``shards`` nests each shard's own :meth:`Shard.stats` with its
        ``healthy`` flag.
        """
        shard_stats = [s.stats() for s in self.shards]
        agg: Dict[str, int] = {}
        for snap in shard_stats:
            for k, v in snap.items():
                if k.startswith("service."):
                    agg[k] = agg.get(k, 0) + int(v)
        with self._counter_lock:
            agg["service.fallbacks"] = (
                agg.get("service.fallbacks", 0) + self.counters["fallbacks"]
            )
            agg["service.timeouts"] = (
                agg.get("service.timeouts", 0) + self.counters["timeouts"]
            )
        out = {
            "n_shards": self.n_shards,
            "healthy_shards": sum(1 for s in shard_stats if s["healthy"]),
            "pending": sum(s["pending"] for s in shard_stats),
            "max_pending": self.config.max_pending * self.n_shards,
            "n_workers": self.config.n_workers * self.n_shards,
            **agg,
            "cache": self.cache.stats_dict(),
            "shards": shard_stats,
        }
        from repro.telemetry import profiler as _profiler

        prof = _profiler.get_profiler()
        if prof is not None:
            by_shard = prof.samples_by_shard()
            out["profiler"] = {
                "samples": prof.sample_count,
                "overhead_pct": round(prof.overhead_pct, 4),
                "by_shard": {
                    int(s.shard_id): by_shard.get(int(s.shard_id), 0)
                    for s in self.shards
                },
            }
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, wait: bool = True) -> None:
        """Stop accepting requests; shut every shard down."""
        self._closed = True
        for s in self.shards:
            s.close(wait=wait)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
