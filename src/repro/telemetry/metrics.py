"""Process-wide metrics registry: counters, gauges, histograms.

Generalizes the simulator's :class:`~repro.machine.stats.RunStats` to *real*
runs: any code path can bump a named counter, set a gauge or observe a
histogram sample, from any thread, and a snapshot of everything is one
:meth:`MetricsRegistry.to_dict` call away.  Counter names mirror
``RunStats.to_dict()`` semantics (``batches.generated``,
``speculation.discovered``, ...) so simulated and real runs are directly
comparable; :meth:`MetricsRegistry.absorb_run_stats` performs exactly that
mapping.
"""

from __future__ import annotations

import threading
from typing import Dict, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: Union[int, float] = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        """Current total."""
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        """Record the current level."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> Union[int, float]:
        """Most recently set level."""
        return self._value


class Histogram:
    """Streaming summary (count / sum / min / max) of observed samples."""

    __slots__ = ("name", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        """Fold one sample into the summary."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    def to_dict(self) -> dict:
        """Summary snapshot (``mean`` included when non-empty)."""
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if missing."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if missing."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created if missing."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name)
            return inst

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of all instruments."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }

    # ------------------------------------------------------------------
    def absorb_run_stats(self, stats, prefix: str = "sim.") -> None:
        """Fold a simulated :class:`RunStats` into the registry.

        Queue/speculation/overhang/GPU counters become counters under
        ``prefix`` with the same nesting as ``RunStats.to_dict()``
        (``sim.batches.generated``, ``sim.speculation.dropped``, ...);
        makespan and worker count become gauges, stage cycles counters.
        """
        d = stats.to_dict()
        self.gauge(prefix + "n_workers").set(d["n_workers"])
        self.gauge(prefix + "makespan_cycles").set(d["makespan"])
        for stage, cycles in d["stage_cycles"].items():
            self.counter(f"{prefix}stage_cycles.{stage}").add(cycles)
        for group in ("batches", "speculation", "overhangs", "gpu"):
            for key, val in d[group].items():
                self.counter(f"{prefix}{group}.{key}").add(val)
