"""Process-wide metrics registry: counters, gauges, histograms.

Generalizes the simulator's :class:`~repro.machine.stats.RunStats` to *real*
runs: any code path can bump a named counter, set a gauge or observe a
histogram sample, from any thread, and a snapshot of everything is one
:meth:`MetricsRegistry.to_dict` call away.  Counter names mirror
``RunStats.to_dict()`` semantics (``batches.generated``,
``speculation.discovered``, ...) so simulated and real runs are directly
comparable; :meth:`MetricsRegistry.absorb_run_stats` performs exactly that
mapping.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: default histogram bucket upper bounds (milliseconds-flavoured, but
#: unit-agnostic); the implicit ``+Inf`` bucket is always appended
DEFAULT_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """Monotonic thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: Union[int, float] = 1) -> None:
        """Increment by ``n`` (must be >= 0)."""
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> Union[int, float]:
        """Current total."""
        return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        """Record the current level."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> Union[int, float]:
        """Most recently set level."""
        return self._value


class Histogram:
    """Streaming summary (count / sum / min / max) plus fixed buckets.

    Buckets are Prometheus-style upper bounds (an implicit ``+Inf`` bucket
    always catches the tail), stored non-cumulative internally; the
    Prometheus renderer cumulates on export.  :meth:`quantile` estimates
    percentiles from the bucket counts and is total: an empty histogram
    answers ``0.0`` and a single sample answers itself for every ``q``
    (no raised edge cases — regression-fenced in ``test_telemetry.py``).
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets",
                 "bucket_counts", "_lock")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = tuple(sorted(buckets if buckets is not None
                                    else DEFAULT_BUCKETS))
        # one slot per finite bound + the +Inf tail
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        """Fold one sample into the summary."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self.bucket_counts[bisect.bisect_left(self.buckets, v)] += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Defined for every state: ``0.0`` when empty, the exact sample when
        only one was observed, and a bucket-midpoint estimate clamped to
        the observed ``[min, max]`` otherwise.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]; got {q!r}")
        with self._lock:
            if self.count == 0:
                return 0.0
            if self.count == 1:
                return self.min
            rank = q * (self.count - 1)
            seen = 0
            for i, n in enumerate(self.bucket_counts):
                seen += n
                if seen > rank:
                    lo = self.buckets[i - 1] if i > 0 else self.min
                    hi = self.buckets[i] if i < len(self.buckets) else self.max
                    est = (lo + hi) / 2.0
                    return min(max(est, self.min), self.max)
            return self.max

    def merge_dict(self, other: dict) -> None:
        """Fold another histogram's :meth:`to_dict` snapshot into this one
        (cross-process metric merging; bucket layouts must match)."""
        if not other.get("count"):
            return
        with self._lock:
            self.count += other["count"]
            self.sum += other["sum"]
            self.min = min(self.min, other["min"])
            self.max = max(self.max, other["max"])
            for le, n in (other.get("buckets") or {}).items():
                bound = float(le)
                idx = (len(self.buckets) if bound == float("inf")
                       else bisect.bisect_left(self.buckets, bound))
                self.bucket_counts[idx] += n

    def to_dict(self) -> dict:
        """Summary snapshot (``mean``/``buckets`` included when non-empty)."""
        if not self.count:
            return {"count": 0, "sum": 0.0}
        bounds = [str(b) for b in self.buckets] + ["inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
            "buckets": {
                le: n for le, n in zip(bounds, self.bucket_counts) if n
            },
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if missing."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if missing."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram called ``name``, created if missing.

        ``buckets`` only takes effect at creation; later callers get the
        existing instrument unchanged.
        """
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of all instruments."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.to_dict() for n, h in sorted(self._histograms.items())
                },
            }

    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` snapshot from another registry into this
        one: counters add, gauges last-write-win, histograms merge.

        This is the parent side of cross-process telemetry: worker
        processes ship their registry snapshot back with each result and
        the parent accumulates them (see :mod:`repro.telemetry.context`).
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).add(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, summary in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge_dict(summary)

    # ------------------------------------------------------------------
    def absorb_run_stats(self, stats, prefix: str = "sim.") -> None:
        """Fold a simulated :class:`RunStats` into the registry.

        Queue/speculation/overhang/GPU counters become counters under
        ``prefix`` with the same nesting as ``RunStats.to_dict()``
        (``sim.batches.generated``, ``sim.speculation.dropped``, ...);
        makespan and worker count become gauges, stage cycles counters.
        """
        d = stats.to_dict()
        self.gauge(prefix + "n_workers").set(d["n_workers"])
        self.gauge(prefix + "makespan_cycles").set(d["makespan"])
        for stage, cycles in d["stage_cycles"].items():
            self.counter(f"{prefix}stage_cycles.{stage}").add(cycles)
        for group in ("batches", "speculation", "overhangs", "gpu"):
            for key, val in d[group].items():
                self.counter(f"{prefix}{group}.{key}").add(val)
