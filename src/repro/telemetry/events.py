"""Structured JSONL event sink and reader.

One event per line, ``type``-discriminated: a ``meta`` header (schema
version, host info, free-form context), ``span`` events (see
:meth:`~repro.telemetry.spans.SpanRecord.to_event`) and a final ``metrics``
snapshot.  The format round-trips losslessly through :func:`read_jsonl` and
is what ``repro profile --telemetry`` and ``BENCH_*.json`` builders consume.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Iterable, List, Optional, Union

__all__ = ["JsonlSink", "host_info", "write_events", "read_jsonl", "SCHEMA"]

#: schema tag stamped into every ``meta`` event
SCHEMA = "repro-telemetry/v1"


def host_info() -> dict:
    """Machine identification attached to every exported artifact."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count() or 1,
    }


class JsonlSink:
    """Append-only, thread-safe JSON-lines writer."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None

    def emit(self, record: dict) -> None:
        """Write one event as a single JSON line."""
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("w")
            self._fh.write(line + "\n")

    def emit_many(self, records: Iterable[dict]) -> int:
        """Write a batch of events; returns how many were written."""
        n = 0
        for rec in records:
            self.emit(rec)
            n += 1
        return n

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def write_events(
    path: Union[str, Path],
    tracer=None,
    metrics=None,
    meta: Optional[dict] = None,
) -> int:
    """Dump a full telemetry session to ``path`` as JSONL.

    Emits a ``meta`` header (schema + host + caller context), every finished
    span of ``tracer``, and a closing ``metrics`` snapshot.  Returns the
    number of lines written.
    """
    with JsonlSink(path) as sink:
        header = {
            "type": "meta",
            "schema": SCHEMA,
            "unix_time": time.time(),
            "host": host_info(),
        }
        if meta:
            header["context"] = meta
        sink.emit(header)
        n = 1
        if tracer is not None:
            n += sink.emit_many(rec.to_event() for rec in tracer.records())
        if metrics is not None:
            sink.emit({"type": "metrics", **metrics.to_dict()})
            n += 1
    return n


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL file back into a list of event dicts."""
    out: List[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
