"""Structured JSONL event sink and reader.

One event per line, ``type``-discriminated: a ``meta`` header (schema
version, host info, free-form context), ``span`` events (see
:meth:`~repro.telemetry.spans.SpanRecord.to_event`) and a final ``metrics``
snapshot.  The format round-trips losslessly through :func:`read_jsonl` and
is what ``repro profile --telemetry`` and ``BENCH_*.json`` builders consume.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import threading
import time
from pathlib import Path
from typing import Iterable, List, Optional, Union

__all__ = ["JsonlSink", "host_info", "git_sha", "write_events",
           "read_jsonl", "SCHEMA"]

#: schema tag stamped into every ``meta`` event
SCHEMA = "repro-telemetry/v1"


def host_info() -> dict:
    """Machine identification attached to every exported artifact."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpus": os.cpu_count() or 1,
    }


def git_sha(default: str = "unknown") -> str:
    """The repository HEAD commit, for stamping benchmark artifacts.

    Falls back to ``default`` outside a work tree (installed wheels, CI
    tarballs) rather than raising — artifact writers must never fail on
    provenance metadata.
    """
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


class JsonlSink:
    """Append-only, thread-safe JSON-lines writer."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None

    def emit(self, record: dict) -> None:
        """Write one event as a single JSON line."""
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("w")
            self._fh.write(line + "\n")

    def emit_many(self, records: Iterable[dict]) -> int:
        """Write a batch of events; returns how many were written."""
        n = 0
        for rec in records:
            self.emit(rec)
            n += 1
        return n

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def write_events(
    path: Union[str, Path],
    tracer=None,
    metrics=None,
    meta: Optional[dict] = None,
) -> int:
    """Dump a full telemetry session to ``path`` as JSONL.

    Emits a ``meta`` header (schema + host + caller context), every finished
    span of ``tracer``, and a closing ``metrics`` snapshot.  Returns the
    number of lines written.
    """
    with JsonlSink(path) as sink:
        header = {
            "type": "meta",
            "schema": SCHEMA,
            "unix_time": time.time(),
            "host": host_info(),
        }
        if meta:
            header["context"] = meta
        sink.emit(header)
        n = 1
        if tracer is not None:
            n += sink.emit_many(rec.to_event() for rec in tracer.records())
        if metrics is not None:
            sink.emit({"type": "metrics", **metrics.to_dict()})
            n += 1
    return n


def read_jsonl(path: Union[str, Path], *, strict: bool = False) -> List[dict]:
    """Parse a JSONL file back into a list of event dicts.

    Corrupt or truncated lines — the tail a crashed writer leaves behind —
    are skipped and counted on the ``telemetry.jsonl.skipped`` counter so
    one bad run cannot poison later analysis; pass ``strict=True`` to get
    the old raising behaviour.
    """
    out: List[dict] = []
    skipped = 0
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                if strict:
                    raise
                skipped += 1
    if skipped:
        # analysis path, not a hot loop: count even while telemetry is
        # disabled so the skip is never silent
        from repro import telemetry

        telemetry.get().counter("telemetry.jsonl.skipped").add(skipped)
    return out
