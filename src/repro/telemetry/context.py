"""Cross-boundary request tracing: trace contexts and worker-span merging.

PR-1 telemetry sees one process and stops at its edge.  This module gives
every request an identity that survives the two boundaries the system now
crosses:

* **threads** — a :class:`TraceContext` is activated on whatever thread
  serves the request (the facade caller, a :class:`ReorderService` worker)
  and every span closed while it is active is stamped with its
  ``trace_id`` (see :class:`~repro.telemetry.spans.SpanRecord.trace_id`);
* **processes** — the process-pool executor ships the context *into* each
  worker task, the worker records spans and counters on a private capture
  of its (forked) global telemetry, and pickles a :class:`WorkerReport`
  back alongside the result; :func:`merge_worker_report` folds it into the
  parent tracer with fresh span ids, correct parent links (worker roots
  hang off the dispatching ``parallel.*`` span), a stable lane per worker
  pid and additive counter deltas.

The result is one coherent trace per request: a Chrome-trace export of a
``method="parallel"`` run shows the service span, the pipeline phases and
the per-process worker spans on one timeline under one ``trace_id``
(worker tracers are re-based on the parent's epoch — ``perf_counter_ns``
is CLOCK_MONOTONIC on the platforms that have ``fork``, so timestamps from
forked children are directly comparable).

Context activation is thread-local and costs one attribute write; nothing
here runs unless telemetry is enabled.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import spans as _spans
from repro.telemetry.spans import SpanRecord, _CONTEXT, current_trace

__all__ = [
    "TraceContext",
    "WorkerReport",
    "new_trace_context",
    "current_trace",
    "activate",
    "ensure_context",
    "collect_worker_report",
    "begin_worker_capture",
    "merge_worker_report",
]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one request, propagated across threads and processes.

    Picklable by construction (plain strings/ints) so the process-pool
    executor can ship it to workers with the task payload.
    """

    trace_id: str
    request_id: str
    #: span the remote/worker sub-trace should hang off (merge target)
    parent_span_id: Optional[int] = None
    #: service shard that admitted the request (``None`` outside a
    #: :class:`repro.service.ShardedService` — plain fields keep the
    #: context picklable for the process-pool transport)
    shard_id: Optional[int] = None

    def child(self, parent_span_id: Optional[int]) -> "TraceContext":
        """The same trace, re-anchored under a new parent span."""
        return TraceContext(
            self.trace_id, self.request_id, parent_span_id, self.shard_id
        )


def new_trace_context(
    request_id: Optional[str] = None, shard_id: Optional[int] = None
) -> TraceContext:
    """A fresh context: random 16-hex trace id, caller-chosen request id."""
    trace_id = uuid.uuid4().hex[:16]
    return TraceContext(
        trace_id=trace_id,
        request_id=request_id if request_id is not None else trace_id,
        shard_id=shard_id,
    )


class _Activation:
    """Context manager installing a :class:`TraceContext` on this thread.

    ``activate(None)`` is a no-op scope, so callers never branch.  The
    previous context is restored on exit (nesting = re-anchoring).
    """

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: Optional[TraceContext]) -> None:
        self._ctx = ctx

    def __enter__(self) -> Optional[TraceContext]:
        if self._ctx is not None:
            self._prev = getattr(_CONTEXT, "value", None)
            _CONTEXT.value = self._ctx
            if _spans._MIRROR_ON:  # sampling-profiler attribution
                _spans._CTX_MIRROR[threading.get_ident()] = self._ctx
        return self._ctx

    def __exit__(self, *exc) -> bool:
        if self._ctx is not None:
            _CONTEXT.value = self._prev
            if _spans._MIRROR_ON:
                if self._prev is None:
                    _spans._CTX_MIRROR.pop(threading.get_ident(), None)
                else:
                    _spans._CTX_MIRROR[threading.get_ident()] = self._prev
        return False


def activate(ctx: Optional[TraceContext]) -> _Activation:
    """Scope ``ctx`` as the current trace context of this thread."""
    return _Activation(ctx)


def ensure_context(request_id: Optional[str] = None) -> _Activation:
    """Activate a fresh context unless one is already current.

    The facade uses this at its entry so a bare ``repro.reorder()`` call
    gets a trace id, while a call made *inside* a service request inherits
    the request's context instead of forking a new one.
    """
    if current_trace() is not None:
        return _Activation(None)
    return _Activation(new_trace_context(request_id))


# ----------------------------------------------------------------------
# cross-process capture and merge
# ----------------------------------------------------------------------
@dataclass
class WorkerReport:
    """What one worker task ships back beside its result.

    ``spans`` are :meth:`SpanRecord.to_event` dicts (already JSON-plain,
    so the payload pickles small and survives schema drift), ``metrics``
    is the worker registry's ``to_dict()`` snapshot — a *delta*, because
    the capture is reset at task start.
    """

    pid: int
    spans: List[dict] = field(default_factory=list)
    metrics: Dict[str, dict] = field(default_factory=dict)
    #: folded-stack sample counts from the worker's own sampling profiler
    #: (empty unless the parent ran one — see ``repro.telemetry.profiler``)
    profile: Dict[str, int] = field(default_factory=dict)


def begin_worker_capture(
    epoch_ns: int, profile_hz: Optional[float] = None
) -> None:
    """Reset the (forked) global telemetry into per-task capture mode.

    Called at the top of every traced worker task: drops whatever spans
    and counters the fork inherited from the parent, re-bases the tracer
    on the parent's epoch so timestamps line up on one timeline, and
    enables recording.  When the parent runs a sampling profiler it
    forwards its rate as ``profile_hz`` and the worker starts its own
    ``role="worker"`` sampler for the task's duration.
    """
    from repro import telemetry
    from repro.telemetry import profiler as _profiler

    tel = telemetry.get()
    tel.reset()
    tel.tracer.epoch_ns = epoch_ns
    tel.enable()
    _profiler.begin_worker_profile(profile_hz)


def collect_worker_report() -> WorkerReport:
    """Snapshot the worker-side capture into a picklable report."""
    from repro import telemetry
    from repro.telemetry import profiler as _profiler

    tel = telemetry.get()
    return WorkerReport(
        pid=os.getpid(),
        spans=[rec.to_event() for rec in tel.tracer.records()],
        metrics=tel.metrics.to_dict(),
        profile=_profiler.take_worker_profile(),
    )


def merge_worker_report(
    tel,
    report: WorkerReport,
    *,
    parent_span_id: Optional[int],
    lane: Optional[int] = None,
    trace_id: Optional[str] = None,
) -> int:
    """Fold one :class:`WorkerReport` into the parent telemetry.

    Span ids are reallocated from the parent tracer's counter (worker-local
    ids collide across workers), intra-report parent links are remapped,
    and report roots are attached under ``parent_span_id`` — so the merged
    spans form one tree with the dispatch span.  Every span gets the
    worker's ``lane`` (stable per pid, assigned by the caller), keeps its
    recording ``pid``, and is stamped with ``trace_id`` when the worker ran
    without one.  Counter deltas add, and the report's folded profile (if
    any) is absorbed into the parent's active sampling profiler — the
    cross-process flamegraph path.  Returns the number of merged spans.
    """
    id_map: Dict[int, int] = {}
    records: List[SpanRecord] = []
    for event in report.spans:
        rec = SpanRecord.from_event(event)
        id_map[rec.span_id] = next(tel.tracer._ids)
        records.append(rec)
    for rec in records:
        rec.span_id = id_map[rec.span_id]
        rec.parent_id = (
            id_map[rec.parent_id] if rec.parent_id in id_map
            else parent_span_id
        )
        if lane is not None:
            rec.worker = lane
        if rec.pid is None:
            rec.pid = report.pid
        if rec.trace_id is None:
            rec.trace_id = trace_id
    with tel.tracer._lock:
        tel.tracer._records.extend(records)
    tel.metrics.merge_snapshot(report.metrics)
    if report.profile:
        from repro.telemetry import profiler as _profiler

        prof = _profiler.get_profiler()
        if prof is not None:
            prof.merge_folded(report.profile)
    return len(records)
