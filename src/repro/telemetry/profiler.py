"""Continuous sampling profiler with span/phase/shard attribution.

A daemon thread walks :func:`sys._current_frames` at a configurable rate
(default ~67 Hz) and aggregates every thread's stack into folded-stack
counts — the collapsed format flamegraph tools eat directly::

    shard:2;phase:ordering;process:main;cli.py:main;api.py:reorder;... 41

The first segments are *attribution*, not frames: which shard and
pipeline phase the sampled thread was serving when the tick landed.
Attribution comes from sampler-readable mirrors maintained by
``telemetry.spans`` / ``telemetry.context`` (the thread-local span stack
and :class:`~repro.telemetry.context.TraceContext` are invisible from
another thread, so while a profiler runs, span enter/exit and context
activation also update plain ``{thread_id: ...}`` dicts; CPython's GIL
makes the individual dict/list ops atomic, so the sampler reads them
without locks). The mirrors only tick while a profiler is running —
when off, a span costs one extra module-global bool check.

Fork workers run their own short-lived ``role="worker"`` sampler per
task (started by ``begin_worker_capture``) and ship their folded counts
home inside :class:`~repro.telemetry.context.WorkerReport`, where
``merge_worker_report`` absorbs them into the parent's active profiler —
one ``method="parallel"`` request therefore yields one cross-process
flamegraph.

The profiler measures its own cost (time inside sample ticks vs wall
time) and exports it as the ``telemetry.profiler.overhead_pct`` gauge;
benchmarks/bench_service.py gates the *observed* warm-path degradation
at <= 3%.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.telemetry import spans as _spans

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "start_profiler",
    "stop_profiler",
    "get_profiler",
    "active_hz",
    "sample_now",
    "profiler_stats",
    "reset_profiler",
]

DEFAULT_HZ = 67.0
MAX_STACK_DEPTH = 64

_THIS_FILE = os.path.abspath(__file__)


class SamplingProfiler:
    """Background stack sampler aggregating folded-stack counts.

    ``role`` tags every sample (``process:main`` vs ``process:worker``)
    so a merged cross-process profile stays legible. The sampler thread
    takes one sample immediately on start and the loop samples before it
    waits, so even a profiler stopped within its first period holds at
    least one sample — endpoint and merge tests rely on that.
    """

    def __init__(self, hz: float = DEFAULT_HZ, *, role: str = "main") -> None:
        if hz <= 0:
            raise ValueError(f"hz must be positive, got {hz}")
        self.hz = float(hz)
        self.role = role
        self._interval = 1.0 / self.hz
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._labels: Dict[object, str] = {}  # code object -> "file.py:func"
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._samples = 0  # per-thread stacks captured locally
        self._merged = 0  # samples absorbed from worker reports
        self._sample_ns = 0  # time spent inside sample ticks
        self._started_ns = 0
        self._elapsed_ns = 0  # frozen at stop()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the sampler thread is currently alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Turn on span/context mirroring and launch the sampler thread."""
        if self._thread is not None:
            return self
        self._started_ns = time.perf_counter_ns()
        _spans._set_mirror(True)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-profiler-{self.role}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Join the sampler, freeze elapsed time, export final gauges."""
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._elapsed_ns = time.perf_counter_ns() - self._started_ns
        _spans._set_mirror(False)
        if self.role == "main":
            self._export_gauges()
        return self

    def discard(self) -> None:
        """Drop a profiler inherited across ``fork`` without joining.

        The sampler thread does not survive the fork; joining its stale
        :class:`threading.Thread` object in the child is undefined, so a
        forked worker just forgets the parent's profiler.
        """
        self._stop.set()
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            try:
                t0 = time.perf_counter_ns()
                self._take_sample()
                self._sample_ns += time.perf_counter_ns() - t0
                if self.role == "main":
                    self._export_gauges()
            except Exception:  # never let a bad tick kill the sampler
                pass
            if self._stop.wait(self._interval):
                return

    def sample_now(self) -> None:
        """Take one synchronous sample from the calling thread.

        Used by fork workers to guarantee at least one sample attributed
        to their open ``parallel.worker`` span regardless of how a task's
        duration compares to the sampling period (the determinism the
        cross-process merge tests need). Profiler-internal frames are
        filtered, so the folded stack reads as the caller's own.
        """
        t0 = time.perf_counter_ns()
        self._take_sample()
        self._sample_ns += time.perf_counter_ns() - t0

    def _take_sample(self) -> None:
        own = self._thread.ident if self._thread is not None else None
        new: Dict[str, int] = {}
        n = 0
        for tid, frame in sys._current_frames().items():
            if tid == own:
                continue
            key = self._fold(tid, frame)
            new[key] = new.get(key, 0) + 1
            n += 1
        with self._lock:
            for key, count in new.items():
                self._counts[key] = self._counts.get(key, 0) + count
            self._samples += n

    def _fold(self, tid: int, frame) -> str:
        segs: List[str] = []
        ctx = _spans._CTX_MIRROR.get(tid)
        shard = getattr(ctx, "shard_id", None)
        if shard is not None:
            segs.append(f"shard:{shard}")
        stack = _spans._SPAN_MIRROR.get(tid)
        if stack:
            phase = None
            for name, category in reversed(stack):
                if category == "api":  # innermost pipeline phase
                    phase = name
                    break
            if phase is None:
                phase = stack[-1][0]  # innermost span of any category
            segs.append(f"phase:{phase}")
        segs.append(f"process:{self.role}")
        labels: List[str] = []
        depth = 0
        while frame is not None and depth < MAX_STACK_DEPTH:
            code = frame.f_code
            if code.co_filename != _THIS_FILE:
                label = self._labels.get(code)
                if label is None:
                    base = os.path.basename(code.co_filename) or "?"
                    label = f"{base}:{code.co_name}"
                    self._labels[code] = label
                labels.append(label)
                depth += 1
            frame = frame.f_back
        labels.reverse()  # folded stacks are root-first
        return ";".join(segs + labels)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def folded(self) -> Dict[str, int]:
        """Snapshot of folded-stack counts (merged workers included)."""
        with self._lock:
            return dict(self._counts)

    def merge_folded(self, profile: Dict[str, int]) -> int:
        """Absorb a worker's folded counts; returns samples absorbed."""
        if not profile:
            return 0
        n = 0
        with self._lock:
            for key, count in profile.items():
                self._counts[key] = self._counts.get(key, 0) + int(count)
                n += int(count)
            self._merged += n
        return n

    @property
    def sample_count(self) -> int:
        """Total samples held: locally captured plus merged-in."""
        with self._lock:
            return self._samples + self._merged

    @property
    def overhead_pct(self) -> float:
        """Self-measured cost: % of wall time spent inside sample ticks."""
        elapsed = self._elapsed_ns
        if elapsed <= 0 and self._started_ns:
            elapsed = time.perf_counter_ns() - self._started_ns
        if elapsed <= 0:
            return 0.0
        return self._sample_ns / elapsed * 100.0

    def stats(self) -> dict:
        """JSON-serializable snapshot (what /statusz embeds)."""
        return {
            "enabled": self.running,
            "role": self.role,
            "hz": self.hz,
            "samples": self.sample_count,
            "overhead_pct": round(self.overhead_pct, 4),
        }

    def samples_by_shard(self) -> Dict[int, int]:
        """Sample counts per shard id (keys the ``shard:<i>;`` prefix)."""
        out: Dict[int, int] = {}
        with self._lock:
            for key, count in self._counts.items():
                if key.startswith("shard:"):
                    head = key.split(";", 1)[0]
                    try:
                        sid = int(head[len("shard:"):])
                    except ValueError:
                        continue
                    out[sid] = out.get(sid, 0) + count
        return out

    def _export_gauges(self) -> None:
        try:
            from repro import telemetry

            metrics = telemetry.get().metrics
            metrics.gauge("telemetry.profiler.samples").set(self.sample_count)
            metrics.gauge("telemetry.profiler.overhead_pct").set(
                round(self.overhead_pct, 4)
            )
        except Exception:
            pass


# ----------------------------------------------------------------------
# process-wide singleton (one active profiler per process)
# ----------------------------------------------------------------------

_ACTIVE: Optional[SamplingProfiler] = None
_ACTIVE_LOCK = threading.Lock()


def start_profiler(hz: Optional[float] = None) -> SamplingProfiler:
    """Start (or return) the process-wide ``role="main"`` profiler."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None and _ACTIVE.running and _ACTIVE.role == "main":
            return _ACTIVE
        prof = SamplingProfiler(hz=hz if hz is not None else DEFAULT_HZ)
        _ACTIVE = prof
    prof.start()
    return prof


def stop_profiler() -> Optional[SamplingProfiler]:
    """Stop and unregister the active profiler; returns it (or None)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        prof = _ACTIVE
        _ACTIVE = None
    if prof is not None:
        prof.stop()
    return prof


def reset_profiler() -> None:
    """Test hook: stop whatever is active and clear the mirrors."""
    stop_profiler()
    _spans._set_mirror(False)


def get_profiler() -> Optional[SamplingProfiler]:
    """The process-wide profiler last started, or None when off."""
    return _ACTIVE


def active_hz() -> Optional[float]:
    """Sampling rate of the running profiler, or None when off.

    The parallel executor forwards this to fork workers so each task can
    run its own worker-role sampler at the parent's rate.
    """
    prof = _ACTIVE
    return prof.hz if prof is not None and prof.running else None


def sample_now() -> None:
    """Synchronously sample via the active profiler (no-op when off)."""
    prof = _ACTIVE
    if prof is not None:
        prof.sample_now()


def profiler_stats() -> dict:
    """Stats for /statusz: active profiler's, or a disabled stub."""
    prof = _ACTIVE
    if prof is not None:
        return prof.stats()
    return {
        "enabled": False,
        "role": "main",
        "hz": 0.0,
        "samples": 0,
        "overhead_pct": 0.0,
    }


# ----------------------------------------------------------------------
# fork-worker side (called from repro.telemetry.context)
# ----------------------------------------------------------------------

def begin_worker_profile(hz: Optional[float]) -> None:
    """Start a fresh ``role="worker"`` sampler for one fork-pool task.

    Any profiler object inherited across the fork is discarded (its
    thread died with the fork), and the attribution mirrors are reset so
    stale parent-process entries cannot leak into worker samples.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        old = _ACTIVE
        _ACTIVE = None
    if old is not None:
        old.discard()
    _spans._set_mirror(False)
    if not hz:
        return
    prof = SamplingProfiler(hz=hz, role="worker")
    with _ACTIVE_LOCK:
        _ACTIVE = prof
    prof.start()


def take_worker_profile() -> Dict[str, int]:
    """Stop the worker sampler and hand back its folded counts."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        prof = _ACTIVE
        if prof is None or prof.role != "worker":
            return {}
        _ACTIVE = None
    prof.stop()
    return prof.folded()
